"""Benchmark regenerating Figure 11 (Hubei 2020 by half-year)."""

from conftest import save_and_print

from repro.experiments.fig11_hubei import format_fig11, run_fig11


def test_fig11_hubei_halves(benchmark, main_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_fig11(main_context), rounds=1, iterations=1
    )
    rendered = format_fig11(scores)
    save_and_print(results_dir, "fig11_hubei", rendered)

    by_name = {s.method: s for s in scores}
    erm = by_name["ERM"]
    light = by_name["LightMIRM"]
    meta = by_name["meta-IRM"]

    # Paper shape 1: ERM suffers in the COVID-shocked H1 and recovers in H2
    # when the patterns roll back.
    assert erm.ks_first_half < erm.ks_second_half

    # Paper shape 2: the invariant methods are more stable across the two
    # halves than ERM ("our method could obtain a similar result in two
    # periods").
    assert light.stability_gap < erm.stability_gap

    # Paper shape 3: in the shocked H1, the IRM family clearly beats ERM.
    assert max(light.ks_first_half, meta.ks_first_half) > erm.ks_first_half
