"""``python -m benchmarks.perf`` — alias for ``python -m repro bench``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
