"""Runnable entry point for the tracked GBDT perf microbenchmarks.

The benchmark implementations live in :mod:`repro.perfbench` (so they are
importable wherever the package is installed); this thin wrapper exists so
the suite can be launched from a repo checkout as::

    PYTHONPATH=src python -m benchmarks.perf [--quick] [--out BENCH_gbdt.json]

which is equivalent to ``python -m repro bench``.  See
``docs/performance.md`` for what is measured and how to read the output.
"""

from repro.perfbench import (  # noqa: F401  (re-exported convenience API)
    BenchConfig,
    run_suite,
    summarize,
    write_bench_json,
)
