"""Benchmark regenerating Table IV (MRQ decay weight gamma ablation)."""

from conftest import save_and_print

from repro.experiments.table4_gamma import format_table4, run_table4


def test_table4_gamma_ablation(benchmark, main_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_table4(main_context), rounds=1, iterations=1
    )
    rendered = format_table4(scores)
    save_and_print(results_dir, "table4_gamma", rendered)

    by_gamma = {s.method: s for s in scores}
    no_decay = by_gamma["gamma=1.0"]
    decayed = [s for s in scores if s is not no_decay]

    metrics = ("mean_ks", "worst_ks", "mean_auc", "worst_auc")

    # Paper shape 1: gamma = 1 (equal weight on stale losses) does not
    # dominate — some decayed gamma matches or beats it on every metric
    # (the paper's Table IV effect sizes are ~0.002, hence the tolerance),
    # and gamma = 1 wins at most half the metrics outright.
    for metric in metrics:
        assert any(
            getattr(s, metric) >= getattr(no_decay, metric) - 0.003
            for s in decayed
        ), metric
    outright_wins = sum(
        1
        for metric in metrics
        if all(
            getattr(no_decay, metric) > getattr(s, metric) for s in decayed
        )
    )
    assert outright_wins <= 2

    # Paper shape 2: no single gamma dominates every metric (the paper:
    # "none of the weights achieve the best performance constantly").
    winners = {
        metric: max(scores, key=lambda s: getattr(s, metric)).method
        for metric in metrics
    }
    assert len(set(winners.values())) >= 2, winners

    # Paper shape 3: the spread across gammas is small — the method is not
    # hypersensitive to the decay weight.
    mean_ks_values = [s.mean_ks for s in scores]
    assert max(mean_ks_values) - min(mean_ks_values) < 0.05
