"""Benchmark regenerating Figure 9 (MRQ length ablation)."""

from conftest import save_and_print

from repro.experiments.fig9_mrq_length import format_fig9, run_fig9


def test_fig9_mrq_length_ablation(benchmark, main_context, results_dir):
    results = benchmark.pedantic(
        lambda: run_fig9(main_context), rounds=1, iterations=1
    )
    rendered = format_fig9(results)
    save_and_print(results_dir, "fig9_mrq_length", rendered)

    by_length = {r.length: r for r in results}

    # Paper shape 1: moderate queue lengths match or beat L = 1 (no replay)
    # on the mean KS.  The paper's own effect sizes here are small (its
    # Fig 9a spans ~0.006 mKS), so we assert the ordering with a tolerance
    # of that magnitude rather than a strict win.
    moderate = [by_length[l] for l in (3, 4, 5, 6, 7)]
    assert max(r.mean_ks for r in moderate) >= by_length[1].mean_ks - 0.002
    assert max(r.worst_ks for r in moderate) >= by_length[1].worst_ks - 0.01

    # Paper shape 2: the mKS optimum is an interior length (paper: L = 7).
    best_mean_l = max(results, key=lambda r: r.mean_ks).length
    assert best_mean_l > 1

    # Paper shape 3: performance is stable across lengths ("generally, the
    # performance of the proposed MRQ is stable around the optimal length").
    mean_values = [r.mean_ks for r in results]
    assert max(mean_values) - min(mean_values) < 0.02
    worst_values = [r.worst_ks for r in results]
    assert max(worst_values) - min(worst_values) < 0.05
