"""Benchmark regenerating Table I (main performance comparison)."""

from conftest import save_and_print

from repro.experiments.table1_main import format_table1, run_table1


def test_table1_main_comparison(benchmark, main_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_table1(main_context), rounds=1, iterations=1
    )
    rendered = format_table1(scores)
    save_and_print(results_dir, "table1_main", rendered)

    by_name = {s.method: s for s in scores}
    erm = by_name["ERM"]
    light = by_name["LightMIRM"]
    meta = by_name["meta-IRM"]
    dro = by_name["Group DRO"]

    # Paper shape 1: LightMIRM clearly beats ERM on minimax fairness.
    assert light.worst_ks > erm.worst_ks
    assert light.worst_auc > erm.worst_auc

    # Paper shape 2: the fairness gain does not cost overall accuracy —
    # LightMIRM's mean metrics stay at or above ERM's.
    assert light.mean_ks >= erm.mean_ks - 0.005
    assert light.mean_auc >= erm.mean_auc - 0.005

    # Paper shape 3: Group DRO trails on the mean metrics (Table I shows it
    # worst across the board).
    assert dro.mean_ks == min(s.mean_ks for s in scores)

    # Paper shape 4: the IRM family (meta-IRM, LightMIRM) occupies the top
    # of the worst-province ranking.
    worst_ranking = sorted(scores, key=lambda s: -s.worst_ks)
    top3 = {s.method for s in worst_ranking[:3]}
    assert {"LightMIRM", "meta-IRM"} & top3

    # Paper shape 5: the worst province is an underrepresented one.
    assert light.worst_environment in {"Xinjiang", "Qinghai", "Gansu"}

    # LightMIRM vs meta-IRM: comparable quality (Table I shows +0.011 in
    # LightMIRM's favour; we require the gap to stay within that magnitude
    # either way) at a fraction of the training cost (Table III).
    assert light.worst_ks >= meta.worst_ks - 0.02
    assert light.mean_ks >= meta.mean_ks - 0.02
