"""Benchmark regenerating Table VI (i.i.d. random split)."""

from conftest import save_and_print

from repro.experiments.table6_iid import format_table6, run_table6


def test_table6_iid_split(benchmark, iid_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_table6(iid_context), rounds=1, iterations=1
    )
    rendered = format_table6(scores)
    save_and_print(results_dir, "table6_iid", rendered)

    by_name = {s.method: s for s in scores}
    complete = by_name["meta-IRM(complete)"]
    light = by_name["LightMIRM"]
    sampled = next(s for s in scores if s.method.startswith("meta-IRM ("))

    # Paper shape 1: without temporal drift every method scores higher than
    # under the temporal split; metrics are in a tight band.
    assert all(s.mean_ks > 0.5 for s in scores)

    # Paper shape 2: complete meta-IRM is the strongest mean performer
    # (paper: best mKS/mAUC), and LightMIRM lands within a whisker.
    assert complete.mean_ks >= light.mean_ks - 0.01
    assert light.mean_ks >= complete.mean_ks - 0.015

    # Paper shape 3: LightMIRM wins the worst-province KS over the
    # similarly-cheap sampled variant (paper: 0.5235 vs 0.5216, and above
    # complete meta-IRM too).
    assert light.worst_ks >= sampled.worst_ks - 0.005
