"""Benchmark regenerating Table V (Guangdong 2020 as OOD data)."""

from conftest import save_and_print

from repro.experiments.table5_guangdong import format_table5, run_table5


def test_table5_guangdong_ood(benchmark, main_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_table5(main_context), rounds=1, iterations=1
    )
    rendered = format_table5(scores)
    save_and_print(results_dir, "table5_guangdong", rendered)

    by_name = {s.method: s for s in scores}
    light = by_name["LightMIRM"]
    meta = by_name["meta-IRM"]
    erm = by_name["ERM"]
    dro = by_name["Group DRO"]

    # Paper shape 1: the IRM family resists the Guangdong shift — the best
    # meta-trained head matches or beats ERM (paper: LightMIRM 0.6539 vs
    # ERM 0.6409; the two meta variants are within noise of each other on a
    # single synthetic seed, so we assert on their better half).
    assert max(light.ks, meta.ks) >= erm.ks - 0.01
    assert light.ks >= erm.ks - 0.03
    assert light.ks > dro.ks

    # Paper shape 2: every method retains strong absolute discrimination on
    # this large coastal province (paper KS values are all > 0.63).
    assert all(s.ks > 0.45 for s in scores)

    # Paper shape 3: ERM stays competitive on AUC (paper: 0.8818, within a
    # whisker of the best).
    best_auc = max(s.auc for s in scores)
    assert erm.auc > best_auc - 0.03
