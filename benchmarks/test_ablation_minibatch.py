"""Ablation: does mini-batch variance restore Table II's S-degradation?

EXPERIMENTS.md notes that with full-batch environment losses the sampled
meta-IRM variants sit within noise of complete meta-IRM.  The paper trains
"in a mini-batch manner" (footnote 6) on 1.4M records, where per-batch loss
estimates are noisy; this ablation re-runs the Table II comparison with
mini-batch training to probe whether sampling variance then separates the
variants, and whether LightMIRM's replay smoothing pays off.
"""

from conftest import save_and_print

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.eval.reports import format_table

BATCH = 256
EPOCHS = 150


def test_ablation_minibatch_sampling(benchmark, extended_context, results_dir):
    variants = {
        "meta-IRM (mb)": lambda seed: MetaIRMTrainer(
            MetaIRMConfig(seed=seed, batch_size=BATCH, n_epochs=EPOCHS)
        ),
        "meta-IRM(5) (mb)": lambda seed: MetaIRMTrainer(
            MetaIRMConfig(seed=seed, batch_size=BATCH, n_epochs=EPOCHS,
                          n_sampled_envs=5)
        ),
        "LightMIRM (mb)": lambda seed: LightMIRMTrainer(
            LightMIRMConfig(seed=seed, batch_size=BATCH, n_epochs=EPOCHS)
        ),
    }

    def run():
        return [
            extended_context.score_method(name, factory)
            for name, factory in variants.items()
        ]

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        [s.as_row() for s in scores],
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title=f"Ablation: mini-batch (b={BATCH}) meta variants, 26 provinces",
    )
    save_and_print(results_dir, "ablation_minibatch", rendered)

    by_name = {s.method: s for s in scores}
    light = by_name["LightMIRM (mb)"]
    s5 = by_name["meta-IRM(5) (mb)"]
    complete = by_name["meta-IRM (mb)"]

    # All variants must remain functional under batch noise.
    for s in scores:
        assert s.mean_ks > 0.5

    # LightMIRM's replay smoothing keeps it competitive with complete
    # meta-IRM under batch noise and at least on par with the noisy
    # one-shot sampler.
    assert light.mean_ks >= complete.mean_ks - 0.02
    assert light.worst_ks >= s5.worst_ks - 0.02
