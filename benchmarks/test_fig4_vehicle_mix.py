"""Benchmark regenerating Figure 4 (vehicle-type mix by year)."""

from conftest import save_and_print

from repro.experiments.fig4_vehicle_mix import (
    format_fig4,
    mix_shift_l1,
    run_fig4,
)


def test_fig4_vehicle_type_distribution(benchmark, main_context, results_dir):
    mixes = benchmark.pedantic(
        lambda: run_fig4(main_context.dataset,
                         years=(2016, 2017, 2018, 2019, 2020)),
        rounds=1,
        iterations=1,
    )
    rendered = format_fig4(mixes)
    save_and_print(results_dir, "fig4_vehicle_mix", rendered)

    # Paper shape: the mix "changes from year to year" — material drift
    # between the first and last year.
    assert mix_shift_l1(mixes) > 0.05

    # Directional shapes: used cars shrink, trucks/SUVs grow over time.
    assert mixes[2020]["used_car"] < mixes[2016]["used_car"]
    assert mixes[2020]["trailer_truck"] > mixes[2016]["trailer_truck"]
    assert mixes[2020]["new_suv"] > mixes[2016]["new_suv"]

    # Each year's shares form a distribution.
    for year_mix in mixes.values():
        assert abs(sum(year_mix.values()) - 1.0) < 1e-9
