"""Benchmark: the headline shapes across independent platform seeds.

Backs the EXPERIMENTS.md robustness notes — close orderings flip with
seeds, but the core qualitative claims should hold on (nearly) every
independently-generated platform.
"""

from conftest import save_and_print

from repro.experiments.stability import format_stability, run_stability


def test_stability_across_platform_seeds(benchmark, results_dir):
    study = benchmark.pedantic(
        lambda: run_stability(data_seeds=(7, 11, 23)),
        rounds=1,
        iterations=1,
    )
    rendered = format_stability(study)
    save_and_print(results_dir, "stability", rendered)

    # The two load-bearing claims must hold on every seed.
    assert study.claim_rates["light_beats_erm_wks"] == 1.0
    assert study.claim_rates["irm_family_top3_wks"] == 1.0

    # ERM bottoms the worst-province ranking on most platforms, and
    # LightMIRM's mean holds up on most platforms.
    assert study.claim_rates["erm_worst_wks"] >= 2 / 3
    assert study.claim_rates["light_mean_holds"] >= 2 / 3
