"""Benchmark regenerating Figure 5 / the online comparison."""

import numpy as np
from conftest import save_and_print

from repro.experiments.fig5_online import format_fig5, run_fig5


def test_fig5_online_replay(benchmark, main_context, results_dir):
    replay = benchmark.pedantic(
        lambda: run_fig5(main_context), rounds=1, iterations=1
    )
    rendered = format_fig5(replay)
    save_and_print(results_dir, "fig5_online", rendered)

    # Paper shape: the companion model cuts the bad-debt rate by a large
    # fraction (paper: 63%) at threshold 0.5.
    assert replay.reduction_fraction > 0.3

    # ... while refusing well under half of the applications (the paper's
    # "only refusing a little number of loans").
    assert replay.refusal_at_threshold < 0.5

    # Curve shape: the bad-debt curve is steep at low thresholds and flat at
    # high ones — tightening the threshold from 1.0 buys reductions quickly.
    bad = replay.curves["bad_debt_rate"]
    thresholds = replay.curves["thresholds"]
    low = bad[np.argmin(np.abs(thresholds - 0.2))]
    mid = bad[np.argmin(np.abs(thresholds - 0.5))]
    high = bad[np.argmin(np.abs(thresholds - 0.95))]
    assert low <= mid <= high

    # FPR falls monotonically as the threshold rises.
    fpr = replay.curves["false_positive_rate"]
    finite = np.isfinite(fpr)
    assert np.all(np.diff(fpr[finite]) <= 1e-9)
