"""Ablation benches for design choices called out in DESIGN.md.

Not paper tables; these probe the two structural knobs of our
implementation: the second-order MAML term and the sigma penalty.
"""

from conftest import save_and_print

from repro.core.config import LightMIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.eval.reports import format_table


def test_ablation_first_order_and_sigma(benchmark, main_context, results_dir):
    variants = {
        "LightMIRM (full)": LightMIRMConfig(),
        "first-order (no Hessian)": LightMIRMConfig(first_order=True),
        "no sigma penalty": LightMIRMConfig(lambda_penalty=0.0),
    }

    def run():
        rows = []
        for label, config in variants.items():
            scores = main_context.score_method(
                label,
                lambda seed, config=config: LightMIRMTrainer(
                    LightMIRMConfig(
                        seed=seed,
                        first_order=config.first_order,
                        lambda_penalty=config.lambda_penalty,
                    )
                ),
            )
            rows.append(scores)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        [r.as_row() for r in rows],
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Ablation: second-order term and sigma penalty",
    )
    save_and_print(results_dir, "ablation_first_order_sigma", rendered)

    by_name = {r.method: r for r in rows}
    full = by_name["LightMIRM (full)"]
    no_sigma = by_name["no sigma penalty"]

    # The sigma penalty is the fairness lever: dropping it should not
    # improve the worst-province KS.
    assert full.worst_ks >= no_sigma.worst_ks - 0.01

    # All variants stay in a functional band (the ablations degrade
    # gracefully, they do not break training).
    for row in rows:
        assert row.mean_ks > 0.5
