"""Benchmark regenerating Table II (meta-IRM sampling variants vs LightMIRM).

Runs on the extended 26-province registry so the paper's S in {20, 10, 5}
sampling sizes apply directly.
"""

from conftest import save_and_print

from repro.experiments.table2_sampling import (
    format_table2,
    run_table2,
    sampling_levels,
)


def test_table2_sampling_variants(benchmark, extended_context, results_dir):
    scores = benchmark.pedantic(
        lambda: run_table2(extended_context), rounds=1, iterations=1
    )
    rendered = format_table2(scores)
    save_and_print(results_dir, "table2_sampling", rendered)

    by_name = {s.method: s for s in scores}
    assert sampling_levels(len(extended_context.train_environments)) == (
        20, 10, 5,
    )
    complete = by_name["meta-IRM"]
    s5 = by_name["meta-IRM(5)"]
    light = by_name["LightMIRM"]
    variants = [s for s in scores if s.method != "LightMIRM"]

    # Paper shape 1 (Table II boldface): LightMIRM tops the table — at or
    # above every meta-IRM variant on both the mean and worst KS, despite
    # evaluating a single sampled environment per task.
    assert light.mean_ks >= max(v.mean_ks for v in variants) - 0.005
    assert light.worst_ks >= max(v.worst_ks for v in variants) - 0.005

    # Paper shape 2: LightMIRM matches the similarly-cheap meta-IRM(5)
    # or better on the worst-province KS (Table II: 0.4183 vs 0.3630).
    assert light.worst_ks >= s5.worst_ks

    # Paper shape 3: LightMIRM is competitive with complete meta-IRM on the
    # mean metrics despite ~M/2 times less work per epoch (see Table III).
    assert light.mean_ks >= complete.mean_ks - 0.01
    assert light.mean_auc >= complete.mean_auc - 0.01

    # Note: with full-batch environment losses and the unbiased (M-1)/S
    # scaling, the sampled variants sit within noise of complete meta-IRM
    # on our substrate — the paper's S-dependent degradation (driven by
    # mini-batch variance on 1.4M records) does not reproduce; see
    # EXPERIMENTS.md.  We assert they stay in a tight band.
    spread = max(v.mean_ks for v in variants) - min(v.mean_ks for v in variants)
    assert spread < 0.02
