"""Benchmark regenerating Figure 1 (province-wise KS of the ERM model)."""

from conftest import save_and_print

from repro.experiments.fig1_province_map import (
    format_fig1,
    relative_spread,
    run_fig1,
)


def test_fig1_province_performance_map(benchmark, main_context, results_dir):
    cells = benchmark.pedantic(
        lambda: run_fig1(main_context), rounds=1, iterations=1
    )
    rendered = format_fig1(cells)
    save_and_print(results_dir, "fig1_province_map", rendered)

    # Paper shape: performance varies strongly across provinces — the paper
    # reports a 39% relative gap; require a material spread.
    assert relative_spread(cells) > 0.25

    # The worst cells belong to underrepresented provinces, the best cells
    # to populous coastal ones.
    worst_three = {c.province for c in cells[-3:]}
    assert worst_three & {"Xinjiang", "Qinghai", "Gansu", "Yunnan", "Hubei"}
    best_three = {c.province for c in cells[:3]}
    assert best_three & {"Guangdong", "Jiangsu", "Shandong", "Henan"}

    # Volume ordering: the best provinces carry far more test data.
    n_best = max(c.n_test for c in cells[:3])
    n_worst = min(c.n_test for c in cells[-3:])
    assert n_best > 3 * n_worst
