"""Benchmark regenerating Figures 6 and 8 (test KS during training)."""

from conftest import save_and_print

from repro.experiments.table2_sampling import (
    format_curves,
    run_training_curves,
)


def test_fig6_fig8_training_curves(benchmark, extended_context, results_dir):
    curves = benchmark.pedantic(
        lambda: run_training_curves(extended_context, every=10, n_epochs=120),
        rounds=1,
        iterations=1,
    )
    rendered = format_curves(curves)
    save_and_print(results_dir, "fig6_fig8_curves", rendered)

    by_name = {c.method: c for c in curves}
    complete = by_name["meta-IRM"]
    light = by_name["LightMIRM"]
    s5 = by_name["meta-IRM(5)"]

    # Paper shape 1: every variant's test KS improves over training.
    for curve in curves:
        assert curve.final() > curve.test_ks[0]

    # Paper shape 2: LightMIRM ends at least on par with the aggressive
    # sampling variant and within reach of complete meta-IRM.
    assert light.final() >= s5.final() - 0.01
    assert light.best() >= complete.best() - 0.02

    # Paper shape 3 (Fig 6): complete meta-IRM converges fastest at the
    # start (more computation per epoch).
    assert complete.test_ks[0] >= min(c.test_ks[0] for c in curves)
