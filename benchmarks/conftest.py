"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper at experiment
scale (40-50k synthetic records), prints the same rows/series the paper
reports, asserts the qualitative *shape* (who wins, by roughly what factor,
where crossovers fall), and writes the rendered artefact to
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data.provinces import extended_registry
from repro.experiments.runner import ExperimentContext, ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def main_context():
    """The standard 12-province, 40k-record temporal-split context."""
    return ExperimentContext(
        ExperimentSettings(n_samples=40_000, data_seed=7,
                           trainer_seeds=(0, 1, 2))
    )


@pytest.fixture(scope="session")
def iid_context():
    """Same platform, random split (Table VI)."""
    return ExperimentContext(
        ExperimentSettings(n_samples=40_000, data_seed=7,
                           trainer_seeds=(0, 1, 2), split="iid")
    )


@pytest.fixture(scope="session")
def extended_context():
    """26-province context for Table II / Table III (paper-scale M)."""
    return ExperimentContext(
        ExperimentSettings(
            n_samples=50_000,
            data_seed=7,
            trainer_seeds=(0,),
            generator_overrides={"registry": extended_registry()},
        )
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Print an artefact and persist it under benchmarks/results/."""
    print(f"\n{rendered}\n")
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
