"""Benchmark regenerating Figure 10 (Guangdong share of transactions)."""

from conftest import save_and_print

from repro.experiments.fig10_guangdong_share import (
    format_fig10,
    run_fig10,
    share_drop_ratio,
)


def test_fig10_guangdong_share(benchmark, main_context, results_dir):
    shares = benchmark.pedantic(
        lambda: run_fig10(main_context.dataset), rounds=1, iterations=1
    )
    rendered = format_fig10(shares)
    save_and_print(results_dir, "fig10_guangdong_share", rendered)

    # Paper shape 1: Guangdong has the highest share in the training years.
    per_year = main_context.dataset.province_share_by_year()
    for year in (2016, 2017, 2018, 2019):
        assert shares[year] == max(per_year[year].values())

    # Paper shape 2: the 2020 share is about half the 2016-2019 level.
    ratio = share_drop_ratio(shares)
    assert 0.35 < ratio < 0.7, f"2020 drop ratio {ratio:.2f}"

    # Paper shape 3: the decline happens in 2020, not gradually before.
    assert shares[2019] > 0.85 * shares[2016]
