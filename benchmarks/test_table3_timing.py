"""Benchmark regenerating Table III + Figure 7 (per-step time cost).

Absolute seconds differ from the paper's i7-11700 workstation, but the
*ratios* are what the complexity analysis predicts: complete meta-IRM's
meta-loss step costs O(M^2) per epoch vs LightMIRM's O(M), so with M = 26
environments the step ratio should be roughly an order of magnitude.
"""

from conftest import save_and_print

from repro.experiments.table3_timing import (
    format_table3,
    run_table3,
    step_proportions,
)


def test_table3_step_timing(benchmark, extended_context, results_dir):
    timings = benchmark.pedantic(
        lambda: run_table3(extended_context), rounds=1, iterations=1
    )
    rendered = format_table3(timings)
    save_and_print(results_dir, "table3_timing", rendered)

    by_name = {t.method: t for t in timings}
    complete = by_name["meta-IRM"]
    sampled = by_name["meta-IRM(5)"]
    light = by_name["LightMIRM"]

    meta_step = "calculating_meta_losses"

    # Paper shape 1 (headline): LightMIRM's meta-loss step is many times
    # faster than complete meta-IRM's (paper: ~30x on ~30 provinces; the
    # O(M^2) vs O(M) analysis predicts ~M/2 = 13x at M = 26).
    ratio = complete.step(meta_step) / light.step(meta_step)
    assert ratio > 5.0, f"meta-loss step speedup only {ratio:.1f}x"

    # Paper shape 2: the whole epoch is several times faster (paper: ~12x).
    epoch_ratio = complete.mean_epoch_seconds / light.mean_epoch_seconds
    assert epoch_ratio > 3.0, f"epoch speedup only {epoch_ratio:.1f}x"

    # Paper shape 3: sampled meta-IRM(5) sits between the two.
    assert light.mean_epoch_seconds <= sampled.mean_epoch_seconds
    assert sampled.mean_epoch_seconds < complete.mean_epoch_seconds

    # Paper shape 4 (Fig 7): the meta-loss step dominates complete
    # meta-IRM's epoch but not LightMIRM's.
    complete_share = step_proportions(complete)[meta_step]
    light_share = step_proportions(light)[meta_step]
    assert complete_share > 0.5
    assert light_share < complete_share

    # Cheap steps are method-independent: loading and format transforms
    # cost about the same everywhere (Table III's first two rows).
    for step in ("loading_data",):
        costs = [t.step(step) for t in timings]
        assert max(costs) - min(costs) < 0.05
