"""Unit tests for environment splitting and the legacy grid-search shim."""

import numpy as np
import pytest

from repro.core.config import LightMIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.train.base import BaseTrainConfig
from repro.baselines.erm import ERMTrainer
from repro.tune import SearchResult, grid_search, split_environments


def legacy_grid_search(*args, **kwargs):
    """grid_search is a DeprecationWarning shim; assert it warns, always."""
    with pytest.warns(DeprecationWarning, match="grid_search is deprecated"):
        return grid_search(*args, **kwargs)


class TestSplitEnvironments:
    def test_stratified_split(self, tiny_envs):
        fit, valid = split_environments(tiny_envs, validation_fraction=0.25)
        assert [e.name for e in fit] == [e.name for e in valid]
        for env, f, v in zip(tiny_envs, fit, valid):
            assert f.n_samples + v.n_samples == env.n_samples
            assert v.n_samples == round(0.25 * env.n_samples)

    def test_deterministic(self, tiny_envs):
        a_fit, _ = split_environments(tiny_envs, seed=3)
        b_fit, _ = split_environments(tiny_envs, seed=3)
        np.testing.assert_array_equal(a_fit[0].labels, b_fit[0].labels)

    def test_accepts_seed_sequence(self, tiny_envs):
        # An int seed is tagged into a SeedSequence stream internally, so
        # passing the pre-derived stream must give the identical split.
        stream = np.random.SeedSequence([3, 0x73706C69])
        a_fit, _ = split_environments(tiny_envs, seed=3)
        b_fit, _ = split_environments(tiny_envs, seed=stream)
        np.testing.assert_array_equal(a_fit[0].labels, b_fit[0].labels)

    def test_invalid_fraction(self, tiny_envs):
        with pytest.raises(ValueError):
            split_environments(tiny_envs, validation_fraction=1.0)

    def test_too_small_environment(self, rng):
        from repro.data.dataset import EnvironmentData

        env = EnvironmentData("tiny", rng.standard_normal((1, 3)),
                              np.ones(1))
        with pytest.raises(ValueError, match="too small"):
            split_environments([env], validation_fraction=0.5)


class TestGridSearchShim:
    def test_evaluates_full_product(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=10, **kw)),
            grid={"learning_rate": [0.5, 1.0], "l2": [1e-4, 1e-2]},
            environments=tiny_envs,
        )
        assert isinstance(result, SearchResult)
        assert len(result.trials) == 4
        seen = {tuple(sorted(t.params.items())) for t in result.trials}
        assert len(seen) == 4

    def test_best_maximises_objective(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=10, **kw)),
            grid={"learning_rate": [0.01, 1.0]},
            environments=tiny_envs,
            objective="mKS",
        )
        values = [t.report.mean_ks for t in result.trials]
        assert result.best.report.mean_ks == max(values)

    def test_ranked_order(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=10, **kw)),
            grid={"learning_rate": [0.01, 0.5, 1.0]},
            environments=tiny_envs,
            objective="mKS",
        )
        ranked = result.ranked()
        assert ranked[0] is max(
            result.trials, key=lambda t: t.report.mean_ks
        )
        scores = [t.report.mean_ks for t in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_blend_objective(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=10, **kw)),
            grid={"learning_rate": [0.5, 1.0]},
            environments=tiny_envs,
            objective="blend",
            blend_weight=1.0,  # pure worst-province selection
        )
        values = [t.report.worst_ks for t in result.trials]
        assert result.best.report.worst_ks == max(values)

    def test_lightmirm_grid(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: LightMIRMTrainer(
                LightMIRMConfig(n_epochs=15, **kw)
            ),
            grid={"queue_length": [1, 5], "gamma": [0.9]},
            environments=tiny_envs,
        )
        assert len(result.trials) == 2
        assert result.best.params["gamma"] == 0.9

    def test_records_training_time(self, tiny_envs):
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=5, **kw)),
            grid={"learning_rate": [1.0]},
            environments=tiny_envs,
        )
        assert result.trials[0].train_seconds > 0

    def test_trial_surface(self, tiny_envs):
        # The shim shares the unified TrialResult surface with ASHA.
        result = legacy_grid_search(
            lambda **kw: ERMTrainer(BaseTrainConfig(n_epochs=5, **kw)),
            grid={"learning_rate": [0.5, 1.0]},
            environments=tiny_envs,
        )
        trial = result.trials[0]
        payload = trial.to_json()
        assert payload["trial"] == trial.trial_id
        assert payload["rung"] == 0 and payload["budget"] is None
        assert set(payload["metrics"]) == {"mKS", "wKS", "mAUC", "wAUC"}
        value = trial.objective_value("blend", 0.5)
        assert value == pytest.approx(
            0.5 * trial.report.mean_ks + 0.5 * trial.report.worst_ks
        )
        assert result.rungs[0].evaluated == tuple(
            t.trial_id for t in result.trials
        )

    def test_invalid_objective(self, tiny_envs):
        with pytest.raises(ValueError, match="objective"):
            legacy_grid_search(
                lambda **kw: ERMTrainer(BaseTrainConfig(**kw)),
                grid={"learning_rate": [1.0]},
                environments=tiny_envs,
                objective="accuracy",
            )

    def test_empty_grid_rejected(self, tiny_envs):
        with pytest.raises(ValueError, match="empty"):
            legacy_grid_search(
                lambda **kw: ERMTrainer(BaseTrainConfig(**kw)),
                grid={},
                environments=tiny_envs,
            )
