"""Joint GBDT×head search: spaces, sampling, scheduler and the shim."""

import numpy as np
import pytest

from repro.data.dataset import EnvironmentData
from repro.tune import (
    ASHAConfig,
    HPSpace,
    IntRange,
    JointHPSpace,
    SpaceError,
    default_extractor_space,
    default_space,
    extractor_fingerprint,
    grid_search,
    run_joint_asha,
    sample_joint_trials,
)
from repro.tune.space import EXTRACTOR_COMPONENT, Choice


@pytest.fixture
def tiny_envs():
    rng = np.random.default_rng(11)
    environments = []
    for name in ("zhejiang", "shandong", "gansu"):
        features = rng.normal(size=(100, 10))
        logits = features[:, 0] + 0.5 * features[:, 1]
        labels = (logits + rng.normal(size=100) > 0).astype(np.int64)
        labels[:3] = [0, 1, 1]
        environments.append(EnvironmentData(name, features, labels))
    return environments


def small_joint_space():
    extractor = HPSpace(EXTRACTOR_COMPONENT, {"n_trees": Choice((6, 10))})
    return HPSpace.joint(extractor, default_space("ERM"))


SMALL = ASHAConfig(n_trials=4, eta=2, min_epochs=4, max_epochs=8, seed=3)


def projection(result):
    return [
        {k: v for k, v in trial.to_json().items()
         if k not in ("train_seconds", "search_cost")}
        for trial in result.ranked()
    ]


class TestJointSpaceValidation:
    def test_joint_construction(self):
        space = HPSpace.joint(default_extractor_space(),
                              default_space("LightMIRM"))
        assert isinstance(space, JointHPSpace)

    def test_extractor_half_validated_with_suggestion(self):
        with pytest.raises(SpaceError, match="did you mean 'n_trees'"):
            HPSpace(EXTRACTOR_COMPONENT, {"n_tree": IntRange(5, 9)})

    def test_extractor_field_rejected_on_head_space(self):
        # The original bug: extractor fields are not head-config fields,
        # and the error must say which component rejected them.
        with pytest.raises(SpaceError, match="'ERM'"):
            HPSpace("ERM", {"max_bins": Choice((32, 64))})

    def test_head_half_validated(self):
        with pytest.raises(SpaceError, match="did you mean 'learning_rate'"):
            HPSpace("ERM", {"learning_rte": Choice((0.1,))})


class TestJointSampling:
    def test_round_robin_extractor_sharing(self):
        trials = sample_joint_trials(
            small_joint_space(), 6, 2, seed=0, trainer="ERM"
        )
        extractors = [tuple(sorted(t.params["extractor"].items()))
                      for t in trials]
        assert extractors[0::2] == [extractors[0]] * 3
        assert extractors[1::2] == [extractors[1]] * 3

    def test_sampling_is_deterministic(self):
        first = sample_joint_trials(
            small_joint_space(), 5, 2, seed=9, trainer="ERM"
        )
        second = sample_joint_trials(
            small_joint_space(), 5, 2, seed=9, trainer="ERM"
        )
        assert [(t.trial_id, t.params, t.seed) for t in first] == \
               [(t.trial_id, t.params, t.seed) for t in second]

    def test_head_half_matches_plain_sampling(self):
        from repro.tune import sample_trials

        joint = sample_joint_trials(
            small_joint_space(), 4, 2, seed=5, trainer="ERM"
        )
        plain = sample_trials(default_space("ERM"), 4, seed=5, trainer="ERM")
        for j, p in zip(joint, plain):
            head = {k: v for k, v in j.params.items() if k != "extractor"}
            assert head == dict(p.params)
            assert j.seed == p.seed

    def test_bad_extractor_count_rejected(self):
        with pytest.raises(ValueError, match="n_extractors"):
            sample_joint_trials(small_joint_space(), 4, 0, seed=0,
                                trainer="ERM")


class TestFingerprints:
    def test_fingerprint_ignores_key_order(self):
        a = extractor_fingerprint({"n_trees": 8, "max_bins": 32},
                                  "deadbeef", 0, 0.25)
        b = extractor_fingerprint({"max_bins": 32, "n_trees": 8},
                                  "deadbeef", 0, 0.25)
        assert a == b

    def test_fingerprint_separates_configs_and_data(self):
        base = extractor_fingerprint({"n_trees": 8}, "deadbeef", 0, 0.25)
        assert extractor_fingerprint({"n_trees": 9}, "deadbeef", 0, 0.25) \
            != base
        assert extractor_fingerprint({"n_trees": 8}, "cafebabe", 0, 0.25) \
            != base
        assert extractor_fingerprint({"n_trees": 8}, "deadbeef", 1, 0.25) \
            != base


class TestRunJointASHA:
    def test_bit_identical_across_jobs(self, tiny_envs):
        serial, serial_stats = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2,
        )
        fanned, fanned_stats = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2, n_jobs=4,
        )
        assert projection(serial) == projection(fanned)
        assert serial_stats.hits == fanned_stats.hits
        assert serial_stats.misses == fanned_stats.misses

    def test_cache_accounting(self, tiny_envs):
        result, stats = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2,
        )
        evaluations = sum(len(r.evaluated) for r in result.rungs)
        sampled = sample_joint_trials(
            small_joint_space(), SMALL.n_trials, 2,
            seed=SMALL.seed, trainer="ERM",
        )
        distinct = len({tuple(sorted(t.params["extractor"].items()))
                        for t in sampled})
        assert stats.misses == distinct  # one encode per distinct config
        assert stats.hits == evaluations - stats.misses
        assert stats.encode_seconds_saved > 0
        assert stats.published_bytes > 0
        for trial in result.trials:
            assert trial.encode_cached is True
            assert trial.encode_seconds == 0.0

    def test_uncached_trials_record_inline_encodes(self, tiny_envs):
        result, stats = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2,
            use_cache=False,
        )
        assert stats is None
        for trial in result.trials:
            assert trial.encode_cached is False
            assert trial.encode_seconds > 0

    def test_joint_resume_from_log(self, tiny_envs, tmp_path):
        from repro.obs.tracer import Tracer
        from repro.tune import load_trial_records

        log = tmp_path / "joint.jsonl"
        first, _ = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2,
            tracer=Tracer(path=log),
        )
        records = load_trial_records(log)
        assert records
        resumed, stats = run_joint_asha(
            small_joint_space(), tiny_envs, SMALL, n_extractors=2,
            resume=records,
        )
        # Every trial replays from the log: nothing is re-encoded.
        assert stats.lookups == 0
        assert projection(resumed) == projection(first)

    def test_rejects_plain_space(self, tiny_envs):
        with pytest.raises(TypeError, match="JointHPSpace"):
            run_joint_asha(default_space("ERM"), tiny_envs, SMALL)


class TestGridSearchJointShim:
    def test_shim_accepts_joint_space(self, tiny_envs):
        from repro.baselines.erm import ERMTrainer
        from repro.train.base import BaseTrainConfig

        extractor = HPSpace(EXTRACTOR_COMPONENT, {"n_trees": Choice((6,))})
        head = HPSpace.grid("ERM", {"learning_rate": [0.5, 1.0]})
        space = HPSpace.joint(extractor, head)

        def builder(**kw):
            return ERMTrainer(BaseTrainConfig(n_epochs=4, seed=0, **kw))

        with pytest.warns(DeprecationWarning):
            result = grid_search(builder, space, tiny_envs, seed=2)
        assert len(result.trials) == 2
        for trial in result.trials:
            assert trial.params["extractor"] == {"n_trees": 6}
            assert trial.encode_cached in (True, False)
        assert result.best in result.trials

    def test_shim_memoizes_shared_extractor_points(self, tiny_envs):
        from repro.baselines.erm import ERMTrainer
        from repro.train.base import BaseTrainConfig

        extractor = HPSpace(EXTRACTOR_COMPONENT, {"n_trees": Choice((6,))})
        head = HPSpace.grid("ERM", {"learning_rate": [0.5, 1.0, 2.0]})

        def builder(**kw):
            return ERMTrainer(BaseTrainConfig(n_epochs=4, seed=0, **kw))

        with pytest.warns(DeprecationWarning):
            result = grid_search(
                builder, HPSpace.joint(extractor, head), tiny_envs, seed=2
            )
        cached_flags = [t.encode_cached for t in result.trials]
        # One distinct extractor point: first evaluation encodes, the
        # rest reuse the memoized split.
        assert cached_flags.count(False) == 1
        assert cached_flags.count(True) == 2
