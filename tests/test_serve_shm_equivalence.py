"""Shared-memory multi-worker scoring is bit-identical to single-process.

The front-end's whole contract is that fan-out changes *where* a score is
computed, never its value: every worker count must reproduce
``ScoringService.predict_proba`` exactly, including across an atomic
model swap mid-stream (pre-swap tickets score on the old generation).
"""

import numpy as np
import pytest

from repro.serve.frontend import FrontendConfig, ScoringFrontend
from repro.serve.shm_publish import (
    ModelPublisher,
    attach_model,
    publish_model,
    scoring_model_from_arrays,
    scoring_model_to_arrays,
)


class TestCodecRoundTrip:
    def test_arrays_round_trip_is_bit_identical(self, scoring_model,
                                                request_rows):
        arrays, meta = scoring_model_to_arrays(scoring_model)
        rebuilt = scoring_model_from_arrays(arrays, meta)
        np.testing.assert_array_equal(
            scoring_model.predict_proba(request_rows),
            rebuilt.predict_proba(request_rows),
        )

    def test_publish_attach_is_bit_identical_and_zero_copy(
            self, scoring_model, request_rows):
        pack = publish_model(scoring_model, generation=0, version="v0001")
        try:
            attached, worker_pack = attach_model(pack.spec)
            np.testing.assert_array_equal(
                scoring_model.predict_proba(request_rows),
                attached.predict_proba(request_rows),
            )
            # The attached model's arrays are read-only views into the
            # shared block, not copies.
            theta = attached.theta
            assert not theta.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                theta[0] = 0.0
            worker_pack.close()
        finally:
            pack.dispose()

    def test_unfitted_model_is_rejected(self, scoring_model):
        import copy

        from repro.gbdt.boosting import GBDTClassifier, GBDTParams

        import dataclasses

        # The encoder constructor already rejects unfitted GBDTs, so
        # regress the fitted state after the fact to hit the codec guard.
        encoder = copy.copy(scoring_model.encoder)
        encoder.model = GBDTClassifier(GBDTParams())
        broken = dataclasses.replace(scoring_model, encoder=encoder)
        with pytest.raises(ValueError, match="unfitted"):
            scoring_model_to_arrays(broken)


class TestPublisherGenerations:
    def test_generations_are_monotonic_and_retirable(self, scoring_model):
        with ModelPublisher() as publisher:
            first = publisher.publish(scoring_model)
            second = publisher.publish(scoring_model)
            assert (first.generation, second.generation) == (0, 1)
            assert publisher.latest.generation == 1
            assert publisher.generations == [0, 1]
            publisher.retire(0)
            assert publisher.generations == [1]
            # Retiring twice is a no-op, and the counter never reuses ids.
            publisher.retire(0)
            assert publisher.publish(scoring_model).generation == 2


class TestMultiWorkerEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_scores_match_single_process_exactly(self, n_workers,
                                                 scoring_model,
                                                 request_rows):
        from repro.serve.service import ScoringService, ServiceConfig

        service = ScoringService(scoring_model,
                                 config=ServiceConfig(max_batch_size=32))
        reference = service.score_batch(request_rows)

        frontend = ScoringFrontend(
            scoring_model,
            FrontendConfig(n_workers=n_workers, max_batch_size=32),
        )
        frontend.start()
        try:
            results = frontend.score_stream(request_rows)
        finally:
            frontend.stop()
        assert all(r.ok for r in results)
        assert {r.generation for r in results} == {0}
        np.testing.assert_array_equal(
            np.array([r.score for r in results]), reference
        )

    def test_swap_mid_stream_scores_each_ticket_on_its_generation(
            self, scoring_model, scoring_model_alt, request_rows):
        old_ref = scoring_model.predict_proba(request_rows)
        new_ref = scoring_model_alt.predict_proba(request_rows)
        # The two heads genuinely disagree, otherwise the test is vacuous.
        assert not np.array_equal(old_ref, new_ref)

        frontend = ScoringFrontend(
            scoring_model, FrontendConfig(n_workers=2, max_batch_size=16)
        )
        frontend.start()
        try:
            # Freeze the workers so pre-swap tickets are provably admitted
            # (and generation-stamped) before the new model exists.
            frontend.pause_workers()
            pre = [frontend.submit(row) for row in request_rows[:120]]
            generation = frontend.publish(scoring_model_alt)
            assert generation == 1
            post = [frontend.submit(row) for row in request_rows[120:]]
            frontend.resume_workers()
            pre_results = [t.result(timeout=60) for t in pre]
            post_results = [t.result(timeout=60) for t in post]
        finally:
            frontend.stop()

        assert {r.generation for r in pre_results} == {0}
        assert {r.generation for r in post_results} == {1}
        np.testing.assert_array_equal(
            np.array([r.score for r in pre_results]), old_ref[:120]
        )
        np.testing.assert_array_equal(
            np.array([r.score for r in post_results]), new_ref[120:]
        )
