"""Unit tests for the five baseline trainers."""

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import (
    FineTuneConfig,
    FineTunedTrainResult,
    FineTuneTrainer,
)
from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer
from repro.baselines.vrex import VRExConfig, VRExTrainer
from repro.train.base import BaseTrainConfig


def _cfg(cls=BaseTrainConfig, **kw):
    defaults = dict(n_epochs=40, learning_rate=0.5, seed=0)
    defaults.update(kw)
    return cls(**defaults)


class TestERM:
    def test_loss_decreases(self, tiny_envs):
        result = ERMTrainer(_cfg()).fit(tiny_envs)
        assert result.history.objective[-1] < result.history.objective[0]

    def test_learns_signal(self, tiny_envs):
        result = ERMTrainer(_cfg(n_epochs=150, learning_rate=1.0)).fit(tiny_envs)
        assert result.theta[0] > 0.5
        assert result.theta[1] < -0.2

    def test_pooled_objective_equals_weighted_env_losses(self, tiny_envs):
        """ERM's pooled loss is the size-weighted mean of env losses."""
        result = ERMTrainer(_cfg(n_epochs=1)).fit(tiny_envs)
        model = result.model
        theta = result.theta
        sizes = np.array([e.n_samples for e in tiny_envs], dtype=float)
        env_losses = np.array([
            model.loss(theta, e.features, e.labels) for e in tiny_envs
        ])
        from repro.train.base import stack_environments
        x, y = stack_environments(tiny_envs)
        pooled = model.loss(theta, x, y)
        # L2 appears once in the pooled loss but once per env too, so
        # compare the data terms with l2 = 0 contributions removed.
        l2_term = 0.5 * model.l2 * float(theta @ theta)
        weighted = float(sizes @ (env_losses - l2_term)) / sizes.sum()
        assert pooled - l2_term == pytest.approx(weighted)


class TestFineTune:
    def test_returns_env_thetas(self, tiny_envs):
        result = FineTuneTrainer(_cfg(FineTuneConfig)).fit(tiny_envs)
        assert isinstance(result, FineTunedTrainResult)
        assert set(result.env_thetas) == {"A", "B", "C"}

    def test_env_theta_differs_from_base(self, tiny_envs):
        result = FineTuneTrainer(_cfg(FineTuneConfig)).fit(tiny_envs)
        for name in ("A", "B", "C"):
            assert not np.allclose(result.env_thetas[name], result.theta)

    def test_unseen_env_falls_back_to_base(self, tiny_envs):
        result = FineTuneTrainer(_cfg(FineTuneConfig)).fit(tiny_envs)
        np.testing.assert_array_equal(
            result.theta_for_environment("unseen"), result.theta
        )

    def test_finetune_reduces_env_loss(self, tiny_envs):
        result = FineTuneTrainer(
            _cfg(FineTuneConfig, finetune_epochs=30, finetune_lr=0.5)
        ).fit(tiny_envs)
        env = tiny_envs[1]  # env B has a +0.5 intercept shift
        base_loss = result.model.loss(result.theta, env.features, env.labels)
        tuned_loss = result.model.loss(
            result.env_thetas["B"], env.features, env.labels
        )
        assert tuned_loss < base_loss

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FineTuneConfig(finetune_epochs=0)
        with pytest.raises(ValueError):
            FineTuneConfig(finetune_lr=0)


class TestUpSampling:
    def test_power_one_matches_erm_updates(self, tiny_envs):
        up = UpSamplingTrainer(
            _cfg(UpSamplingConfig, power=1.0)
        ).fit(tiny_envs)
        erm = ERMTrainer(_cfg()).fit(tiny_envs)
        np.testing.assert_allclose(up.theta, erm.theta, atol=1e-8)

    def test_power_zero_weights_envs_equally(self, tiny_envs):
        result = UpSamplingTrainer(
            _cfg(UpSamplingConfig, power=0.0, n_epochs=1)
        ).fit(tiny_envs)
        model = result.model
        # Recompute the expected first update by hand.
        theta0 = model.init_params(seed=0, scale=0.01)
        grads = [
            model.gradient(theta0, e.features, e.labels) for e in tiny_envs
        ]
        expected = theta0 - 0.5 * sum(grads) / len(grads)
        np.testing.assert_allclose(result.theta, expected, atol=1e-10)

    def test_positive_weight_shifts_scores_up(self, tiny_envs):
        plain = UpSamplingTrainer(
            _cfg(UpSamplingConfig, n_epochs=60)
        ).fit(tiny_envs)
        weighted = UpSamplingTrainer(
            _cfg(UpSamplingConfig, n_epochs=60, positive_weight=4.0)
        ).fit(tiny_envs)
        x = tiny_envs[0].features
        assert weighted.predict_proba(x).mean() > plain.predict_proba(x).mean()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            UpSamplingConfig(power=2.0)
        with pytest.raises(ValueError):
            UpSamplingConfig(positive_weight=0.0)


class TestGroupDRO:
    def test_group_weights_sum_to_one(self, tiny_envs):
        trainer = GroupDROTrainer(_cfg(GroupDROConfig))
        trainer.fit(tiny_envs)
        assert trainer.group_weights_.sum() == pytest.approx(1.0)
        assert np.all(trainer.group_weights_ > 0)

    def test_weights_concentrate_on_hard_env(self, rng):
        """An environment with pure-noise labels keeps a high loss, so DRO
        must up-weight it."""
        from repro.data.dataset import EnvironmentData

        easy_x = rng.standard_normal((150, 4))
        easy_logit = 3.0 * easy_x[:, 0]
        easy_y = (rng.random(150) < 1 / (1 + np.exp(-easy_logit))).astype(float)
        easy_y[:2] = [0, 1]
        hard_x = rng.standard_normal((150, 4))
        hard_y = rng.integers(0, 2, 150).astype(float)
        envs = [
            EnvironmentData("easy", easy_x, easy_y),
            EnvironmentData("hard", hard_x, hard_y),
        ]
        trainer = GroupDROTrainer(
            _cfg(GroupDROConfig, n_epochs=100, group_lr=0.5)
        )
        trainer.fit(envs)
        assert trainer.group_weights_[1] > 0.6

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GroupDROConfig(group_lr=0)


class TestVREx:
    def test_zero_variance_weight_is_equal_weighted_erm(self, tiny_envs):
        vrex = VRExTrainer(
            _cfg(VRExConfig, variance_weight=0.0)
        ).fit(tiny_envs)
        up = UpSamplingTrainer(
            _cfg(UpSamplingConfig, power=0.0)
        ).fit(tiny_envs)
        np.testing.assert_allclose(vrex.theta, up.theta, atol=1e-8)

    def test_variance_penalty_narrows_loss_spread(self, tiny_envs):
        plain = VRExTrainer(
            _cfg(VRExConfig, variance_weight=0.0, n_epochs=150)
        ).fit(tiny_envs)
        strong = VRExTrainer(
            _cfg(VRExConfig, variance_weight=50.0, n_epochs=150)
        ).fit(tiny_envs)

        def loss_spread(result):
            losses = [
                result.model.loss(result.theta, e.features, e.labels)
                for e in tiny_envs
            ]
            return np.var(losses)

        assert loss_spread(strong) <= loss_spread(plain) + 1e-9

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VRExConfig(variance_weight=-1)
