"""Determinism audit: every registered trainer is bit-reproducible.

The GBDT kernels have a golden bit-equivalence suite (PR 1); this is the
trainer-side counterpart.  Any hidden RNG (an unseeded ``np.random`` call, a
set/dict iteration order leak, a parallel reduction) shows up here as a
theta or history mismatch between two same-seed fits.
"""

import numpy as np
import pytest

from repro.train.registry import available_trainers, make_trainer
from repro.verify.harness import assert_deterministic, random_environments


@pytest.fixture(scope="module")
def audit_envs():
    return random_environments(
        np.random.default_rng(7), n_envs=3, n_per_env=80, n_features=4
    )


@pytest.mark.parametrize("name", available_trainers())
def test_trainer_bit_reproducible(name, audit_envs):
    assert_deterministic(
        lambda: make_trainer(name, n_epochs=6, seed=3), audit_envs
    )


def test_sampled_meta_irm_bit_reproducible(audit_envs):
    """The meta-IRM(S) variants add RNG environment sampling; seeded too."""
    assert_deterministic(
        lambda: make_trainer("meta-IRM(2)", n_epochs=6, seed=3), audit_envs
    )


@pytest.mark.parametrize("name", available_trainers())
def test_minibatch_path_bit_reproducible(name, audit_envs):
    """The mini-batch RNG stream must also be fully seeded."""
    assert_deterministic(
        lambda: make_trainer(name, n_epochs=4, seed=3, batch_size=32),
        audit_envs,
    )


def test_different_seeds_actually_differ(audit_envs):
    """Guards the audit itself: if seeds were ignored, the determinism
    tests above would pass vacuously."""
    a = make_trainer("LightMIRM", n_epochs=6, seed=0).fit(audit_envs)
    b = make_trainer("LightMIRM", n_epochs=6, seed=1).fit(audit_envs)
    assert not np.array_equal(a.theta, b.theta)
