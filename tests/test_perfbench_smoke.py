"""Rot protection for the perf-benchmark harness.

Runs every microbenchmark once at :meth:`BenchConfig.smoke` sizes under
the tier-1 suite and checks the ``BENCH_gbdt.json`` schema, so benchmark
code stays runnable between real tracked runs.
"""

from __future__ import annotations

import json

import pytest

from repro.perfbench import BenchConfig, run_suite, summarize, write_bench_json
from repro.perfbench.suites import BENCH_FORMAT, BENCHMARKS


@pytest.fixture(scope="module")
def smoke_results():
    config = BenchConfig.smoke()
    return config, run_suite(config)


def test_smoke_runs_every_benchmark(smoke_results):
    _, results = smoke_results
    assert set(results) == set(BENCHMARKS)


def test_smoke_entries_have_timings(smoke_results):
    _, results = smoke_results
    for name, entry in results.items():
        assert entry["median_s"] > 0, name
        assert entry["best_s"] > 0, name
        assert entry["repeats"] >= 1, name


def test_seed_baselines_present_where_tracked(smoke_results):
    _, results = smoke_results
    for name in ("histogram_build", "tree_fit", "leaf_predict",
                 "leaf_encode"):
        entry = results[name]
        assert entry["seed_median_s"] > 0
        assert entry["speedup_vs_seed"] > 0
    # The end-to-end trainer benchmark tracks trajectory only.
    assert "speedup_vs_seed" not in results["trainer_epoch"]
    assert results["trainer_epoch"]["per_epoch_s"] > 0


def test_bench_json_schema(tmp_path, smoke_results):
    config, results = smoke_results
    path = tmp_path / "BENCH_gbdt.json"
    payload = write_bench_json(path, results, config)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["format"] == BENCH_FORMAT
    assert on_disk["config"]["n_rows"] == config.n_rows
    assert on_disk["config"]["max_bins"] == config.max_bins
    assert set(on_disk["benchmarks"]) == set(BENCHMARKS)
    assert "numpy" in on_disk["machine"]
    assert on_disk["machine"]["cpu_count"] >= 1


def test_summarize_mentions_every_benchmark(smoke_results):
    _, results = smoke_results
    text = summarize(results)
    for name in BENCHMARKS:
        assert name in text


def test_run_suite_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown"):
        run_suite(BenchConfig.smoke(), only=["no_such_benchmark"])


def test_cli_bench_quick_writes_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    code = main(["bench", "--quick", "--out", str(out),
                 "--only", "histogram_build", "leaf_predict"])
    assert code == 0
    payload = json.loads(out.read_text())
    assert set(payload["benchmarks"]) == {"histogram_build", "leaf_predict"}
    captured = capsys.readouterr().out
    assert "histogram_build" in captured
