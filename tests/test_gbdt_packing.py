"""Memory-bounded binning: reservoir, streamed fit, shared-memory packing."""

import numpy as np
import pytest

from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.gbdt.binning import QuantileBinner, ReservoirSampler
from repro.gbdt.packing import PackedBinnedDataset, pack_generated
from repro.parallel.shared import SharedArrayPack


class TestReservoirSampler:
    def test_under_capacity_keeps_everything_in_order(self, rng):
        sampler = ReservoirSampler(capacity=100, n_features=4)
        blocks = [rng.standard_normal((30, 4)) for _ in range(3)]
        for block in blocks:
            sampler.add(block)
        np.testing.assert_array_equal(sampler.sample(), np.vstack(blocks))
        assert sampler.n_seen == 90

    def test_over_capacity_is_bounded_and_drawn_from_stream(self, rng):
        sampler = ReservoirSampler(capacity=50, n_features=2, seed=7)
        seen = []
        for _ in range(10):
            block = rng.standard_normal((40, 2))
            seen.append(block)
            sampler.add(block)
        sample = sampler.sample()
        assert sample.shape == (50, 2)
        assert sampler.n_seen == 400
        all_rows = {tuple(row) for row in np.vstack(seen)}
        assert all(tuple(row) in all_rows for row in sample)

    def test_deterministic_given_seed(self, rng):
        blocks = [rng.standard_normal((60, 3)) for _ in range(4)]
        samples = []
        for _ in range(2):
            sampler = ReservoirSampler(capacity=40, n_features=3, seed=3)
            for block in blocks:
                sampler.add(block)
            samples.append(sampler.sample())
        np.testing.assert_array_equal(samples[0], samples[1])

    def test_coverage_is_roughly_uniform(self):
        """Every stream position must have a fair chance of surviving."""
        hits = np.zeros(500)
        stream = np.arange(500, dtype=np.float64)[:, None]
        for seed in range(200):
            sampler = ReservoirSampler(capacity=50, n_features=1, seed=seed)
            for start in range(0, 500, 100):
                sampler.add(stream[start:start + 100])
            hits[sampler.sample()[:, 0].astype(int)] += 1
        # Expected 20 hits per position over 200 trials of k/n = 0.1.
        assert hits.min() > 5
        assert hits.max() < 45


class TestFitStreamed:
    def test_equals_fit_when_stream_fits_in_sample(self, rng):
        x = rng.standard_normal((400, 6))
        direct = QuantileBinner(max_bins=16).fit(x)
        streamed = QuantileBinner(max_bins=16).fit_streamed(
            (x[i:i + 37] for i in range(0, 400, 37)), sample_rows=1_000
        )
        assert len(direct.bin_edges_) == len(streamed.bin_edges_)
        for a, b in zip(direct.bin_edges_, streamed.bin_edges_):
            np.testing.assert_array_equal(a, b)

    def test_subsampled_edges_still_bin_consistently(self, rng):
        x = rng.standard_normal((5_000, 3))
        streamed = QuantileBinner(max_bins=32).fit_streamed(
            (x[i:i + 500] for i in range(0, 5_000, 500)),
            sample_rows=1_000, seed=1,
        )
        binned = streamed.transform(x)
        assert binned.dtype == np.uint8
        assert binned.max() < 32
        # Quantile-ish edges: all bins of a dense column are populated.
        assert np.unique(binned[:, 0]).size > 16


class TestTransformInto:
    def test_matches_transform(self, rng):
        x = rng.standard_normal((300, 5))
        binner = QuantileBinner(max_bins=16).fit(x)
        out = np.zeros((300, 5), dtype=np.uint8)
        binner.transform_into(x, out)
        np.testing.assert_array_equal(out, binner.transform(x))

    def test_row_scatter(self, rng):
        x = rng.standard_normal((100, 4))
        binner = QuantileBinner(max_bins=8).fit(x)
        out = np.zeros((200, 4), dtype=np.uint8)
        rows = np.arange(100) * 2 + 1
        binner.transform_into(x, out, rows=rows)
        np.testing.assert_array_equal(out[rows], binner.transform(x))
        assert not out[::2].any()

    def test_rejects_wrong_dtype_or_width(self, rng):
        x = rng.standard_normal((50, 3))
        binner = QuantileBinner(max_bins=8).fit(x)
        with pytest.raises(ValueError):
            binner.transform_into(x, np.zeros((50, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            binner.transform_into(x, np.zeros((50, 2), dtype=np.uint8))


class TestNoCopyRegression:
    """The fit/transform paths must not copy conforming float inputs."""

    def test_check_matrix_passes_float64_through(self, rng):
        x = rng.standard_normal((50, 3))
        assert QuantileBinner._check_matrix(x) is x

    def test_check_matrix_passes_float32_through(self, rng):
        x = rng.standard_normal((50, 3)).astype(np.float32)
        assert QuantileBinner._check_matrix(x) is x

    def test_check_matrix_upcasts_integers(self, rng):
        x = rng.integers(0, 10, size=(50, 3))
        out = QuantileBinner._check_matrix(x)
        assert out.dtype == np.float64
        assert not np.shares_memory(out, x)

    def test_gbdt_fit_does_not_copy_float64_features(self, rng, monkeypatch):
        from repro.gbdt.binning import QuantileBinner as Binner
        from repro.gbdt.boosting import GBDTClassifier, GBDTParams

        x = rng.standard_normal((400, 5))
        y = (rng.random(400) < 0.3).astype(np.float64)
        seen: list[bool] = []
        original = Binner.fit_transform

        def spy(self, features):
            seen.append(np.shares_memory(features, x))
            return original(self, features)

        monkeypatch.setattr(Binner, "fit_transform", spy)
        GBDTClassifier(GBDTParams(n_trees=2, max_bins=8)).fit(x, y)
        assert seen == [True]


class TestSharedAllocate:
    def test_allocate_and_fill(self):
        pack = SharedArrayPack.allocate(
            {"a": ((4, 3), "u1"), "b": ((4,), "f8")},
            meta={"tag": "t"},
        )
        try:
            views = pack.writable_arrays()
            views["a"][:] = 7
            views["b"][:] = np.arange(4.0)
            read = pack.arrays()
            assert read["a"].dtype == np.uint8
            np.testing.assert_array_equal(read["a"], np.full((4, 3), 7))
            np.testing.assert_array_equal(read["b"], np.arange(4.0))
            assert pack.spec.metadata()["tag"] == "t"
        finally:
            pack.dispose()

    def test_writable_arrays_owner_only(self):
        pack = SharedArrayPack.allocate({"a": ((2,), "f8")})
        try:
            attached = SharedArrayPack.attach(pack.spec)
            with pytest.raises(RuntimeError):
                attached.writable_arrays()
            attached.close()
        finally:
            pack.dispose()


class TestPackGenerated:
    @pytest.fixture(scope="class")
    def packed_and_reference(self):
        config = GeneratorConfig.small(seed=13)
        generator = LoanDataGenerator(config)
        packed = pack_generated(generator, chunk_rows=977, max_bins=32)
        reference = LoanDataGenerator(config).generate()
        yield packed, reference
        packed.dispose()

    def test_binned_bit_identical_to_one_shot(self, packed_and_reference):
        packed, reference = packed_and_reference
        expected = packed.binner.transform(reference.features)
        np.testing.assert_array_equal(packed.binned, expected)

    def test_labels_and_groupings_match(self, packed_and_reference):
        packed, reference = packed_and_reference
        np.testing.assert_array_equal(packed.labels, reference.labels)
        names = np.asarray(packed.province_names, dtype=object)
        np.testing.assert_array_equal(names[packed.province_codes],
                                      reference.provinces)
        np.testing.assert_array_equal(packed.years, reference.years)
        np.testing.assert_array_equal(packed.halves, reference.halves)

    def test_chunk_size_does_not_change_the_pack(self):
        config = GeneratorConfig(n_samples=1_200, total_features=26,
                                 n_spurious=4, seed=5)
        packs = [
            pack_generated(LoanDataGenerator(config), chunk_rows=rows,
                           max_bins=16)
            for rows in (None, 61)
        ]
        try:
            np.testing.assert_array_equal(packs[0].binned, packs[1].binned)
            np.testing.assert_array_equal(packs[0].labels, packs[1].labels)
        finally:
            for pack in packs:
                pack.dispose()

    def test_rows_for_province(self, packed_and_reference):
        packed, reference = packed_and_reference
        name = packed.province_names[0]
        rows = packed.rows_for_province(name)
        assert (reference.provinces[rows] == name).all()
        assert rows.size == int((reference.provinces == name).sum())

    def test_resident_size_is_uint8_dominated(self, packed_and_reference):
        packed, reference = packed_and_reference
        n, d = reference.features.shape
        raw_bytes = reference.features.nbytes
        # uint8 bins + per-row sidecars: far below the float64 matrix.
        assert packed.nbytes < raw_bytes / 4
        assert packed.n_samples == n
        assert packed.n_features == d
