"""Tests for online quality monitors (repro.obs.live.monitors)."""

import numpy as np
import pytest

from repro.obs.live.monitors import (
    CalibrationMonitor,
    ScoreDriftMonitor,
    SLOConfig,
    SLOTracker,
)


@pytest.fixture()
def baseline_scores(rng):
    return rng.beta(2, 8, size=2000)   # loan-default-shaped score mass


class TestScoreDriftMonitor:
    def test_no_completed_window_reports_zero(self, baseline_scores):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=100)
        monitor.observe(0.2)
        assert monitor.psi() == 0.0
        assert monitor.worst() == (None, 0.0)

    def test_in_distribution_window_has_low_psi(self, baseline_scores, rng):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=400)
        for score in rng.beta(2, 8, size=400):
            monitor.observe(float(score))
        assert monitor.psi() < 0.1

    def test_shifted_window_has_high_psi(self, baseline_scores, rng):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=400)
        for score in rng.beta(8, 2, size=400):   # mass flipped high
            monitor.observe(float(score))
        assert monitor.psi() > 0.25

    def test_per_province_windows_are_independent(self, baseline_scores,
                                                  rng):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=300)
        drifted = rng.beta(8, 2, size=300)
        steady = rng.beta(2, 8, size=300)
        for bad, good in zip(drifted, steady):
            monitor.observe(float(bad), province="Gansu")
            monitor.observe(float(good), province="Zhejiang")
        assert monitor.psi("Gansu") > 0.25
        assert monitor.psi("Zhejiang") < 0.1
        province, psi = monitor.worst()
        assert province == "Gansu"
        assert psi == monitor.psi("Gansu")

    def test_windows_tumble_and_count(self, baseline_scores, rng):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=100)
        for score in rng.beta(2, 8, size=250):
            monitor.observe(float(score))
        snap = monitor.snapshot()
        assert snap["window_rows"] == 100
        assert snap["provinces"] == {}          # only the global stream
        # 250 rows = 2 completed windows + 50 pending.
        assert monitor._windows_completed[monitor.GLOBAL] == 2

    def test_snapshot_shape(self, baseline_scores, rng):
        monitor = ScoreDriftMonitor(baseline_scores, window_rows=50)
        for score in rng.beta(8, 2, size=60):
            monitor.observe(float(score), province="Fujian")
        snap = monitor.snapshot()
        assert set(snap) == {"window_rows", "global_psi", "worst_province",
                             "worst_psi", "provinces"}
        assert snap["worst_province"] == "Fujian"
        entry = snap["provinces"]["Fujian"]
        assert entry["windows_completed"] == 1
        assert entry["pending_rows"] == 10

    def test_validates_inputs(self, baseline_scores):
        with pytest.raises(ValueError, match="n_bins"):
            ScoreDriftMonitor(np.array([0.1, 0.2]), n_bins=10)
        with pytest.raises(ValueError, match="window_rows"):
            ScoreDriftMonitor(baseline_scores, window_rows=0)


class TestCalibrationMonitor:
    def test_reports_reference_before_data(self):
        monitor = CalibrationMonitor(reference_mean=0.18)
        assert monitor.score_mean() == pytest.approx(0.18)
        assert monitor.mean_shift() == 0.0
        assert monitor.calibration_gap() is None

    def test_windowed_mean_and_shift(self):
        monitor = CalibrationMonitor(reference_mean=0.2, window_rows=4)
        for score in (0.1, 0.2, 0.3, 0.4):
            monitor.observe(score)
        assert monitor.score_mean() == pytest.approx(0.25)
        assert monitor.mean_shift() == pytest.approx(0.05)
        # Window slides: the 0.1 ages out.
        monitor.observe(0.5)
        assert monitor.score_mean() == pytest.approx(0.35)

    def test_calibration_gap_with_labels(self):
        monitor = CalibrationMonitor(reference_mean=0.5, window_rows=10)
        for score, label in ((0.6, 1.0), (0.6, 0.0)):
            monitor.observe(score, label=label)
        assert monitor.calibration_gap() == pytest.approx(0.6 - 0.5)
        snap = monitor.snapshot()
        assert snap["n_labelled"] == 2
        assert snap["n_seen"] == 2

    def test_sliding_sum_stays_exact(self):
        monitor = CalibrationMonitor(reference_mean=0.0, window_rows=16)
        values = np.linspace(0, 1, 200)
        for value in values:
            monitor.observe(float(value))
        assert monitor.score_mean() == pytest.approx(values[-16:].mean())


class TestSLOTracker:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        tracker = SLOTracker([SLOConfig("avail", error_budget=0.01,
                                        windows_s=(60.0,))])
        tracker.observe("avail", good=99, bad=1, now=10.0)
        # bad fraction 1% == exactly the budget: burn 1.0.
        assert tracker.burn_rates("avail", now=10.0) == {"60s": 1.0}

    def test_multi_window_fast_slow_pair(self):
        tracker = SLOTracker([SLOConfig("avail", error_budget=0.1,
                                        windows_s=(10.0, 100.0))])
        tracker.observe("avail", good=100, bad=0, now=0.0)
        tracker.observe("avail", good=0, bad=10, now=95.0)
        burns = tracker.burn_rates("avail", now=100.0)
        # Fast window sees only the recent all-bad burst.
        assert burns["10s"] == pytest.approx(10.0)
        assert burns["100s"] == pytest.approx((10 / 110) / 0.1)

    def test_samples_age_out(self):
        tracker = SLOTracker([SLOConfig("avail", error_budget=0.5,
                                        windows_s=(10.0,))])
        tracker.observe("avail", good=0, bad=5, now=0.0)
        assert tracker.burn_rates("avail", now=5.0)["10s"] > 0
        assert tracker.burn_rates("avail", now=50.0)["10s"] == 0.0

    def test_worst_burn_across_objectives(self):
        tracker = SLOTracker([
            SLOConfig("a", error_budget=0.5, windows_s=(10.0,)),
            SLOConfig("b", error_budget=0.01, windows_s=(10.0,)),
        ])
        tracker.observe("a", good=9, bad=1, now=1.0)
        tracker.observe("b", good=9, bad=1, now=1.0)
        name, burn = tracker.worst_burn(now=1.0)
        assert name == "b"                      # tighter budget burns hotter
        assert burn == pytest.approx((1 / 10) / 0.01)

    def test_empty_window_burns_zero(self):
        tracker = SLOTracker([SLOConfig("avail", error_budget=0.01)])
        assert tracker.worst_burn(now=0.0) == (None, 0.0)

    def test_snapshot_shape(self):
        tracker = SLOTracker([SLOConfig("avail", error_budget=0.01)])
        tracker.observe("avail", good=5, bad=0, now=1.0)
        snap = tracker.snapshot(now=1.0)
        assert set(snap) == {"avail"}
        assert snap["avail"]["events_tracked"] == 5
        assert snap["avail"]["bad_tracked"] == 0
        assert set(snap["avail"]["burn_rates"]) == {"60s", "600s"}

    def test_validates_config(self):
        with pytest.raises(ValueError, match="error_budget"):
            SLOConfig("x", error_budget=1.5)
        with pytest.raises(ValueError, match="window"):
            SLOConfig("x", error_budget=0.1, windows_s=())
        with pytest.raises(ValueError, match="unique"):
            SLOTracker([SLOConfig("x", error_budget=0.1),
                        SLOConfig("x", error_budget=0.2)])
        with pytest.raises(ValueError, match="at least one"):
            SLOTracker([])
