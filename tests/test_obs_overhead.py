"""Disabled-instrumentation overhead must stay in the noise (< 2%).

Every trainer epoch now runs through StepTimer/Tracer call sites
unconditionally; the null-object pattern keeps the disabled cost to a
guard check per call.  This smoke test measures the full per-epoch
sequence of disabled instrumentation calls against the wall time of a
real training epoch and asserts the ratio stays under the 2% budget
(with margin: the budget is checked against a deliberately inflated
call count).
"""

from repro.obs.profile import active
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing import STEP_NAMES, StepTimer, measure
from repro.train.registry import make_trainer

#: Hard ceiling on disabled-instrumentation cost per epoch.
OVERHEAD_BUDGET = 0.02


def _disabled_epoch_instrumentation() -> None:
    """Every instrumentation call one trainer epoch makes, all disabled.

    Mirrors the per-epoch call sites of the most instrumented trainer
    (LightMIRM with 3 environments): the epoch bracket, a step context
    per Table III step and environment, the tracer-enabled guard of
    ``_record`` and the hot-path profiler gate.
    """
    timer = StepTimer(enabled=False)
    tracer = NULL_TRACER
    with timer.epoch():
        for name in STEP_NAMES:
            for _ in range(3):  # once per environment
                with timer.step(name):
                    pass
    if tracer.enabled:  # the _record guard
        raise AssertionError("unreachable")
    with tracer.span("fit"):
        pass
    for _ in range(10):  # hot-path profiler gates (histogram builds etc.)
        if active() is not None:
            raise AssertionError("unreachable")


class TestDisabledOverhead:
    def test_null_objects_are_shared(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")
        assert NULL_TRACER.enabled is False

    def test_disabled_instrumentation_under_budget(self, train_envs):
        """Disabled calls cost < 2% of a real epoch's wall time."""
        trainer = make_trainer("ERM", n_epochs=12, seed=0)

        fit_time = measure(
            lambda: make_trainer("ERM", n_epochs=12, seed=0).fit(train_envs),
            repeats=3, warmup=1,
        )
        epoch_seconds = fit_time.best_seconds / trainer.config.n_epochs

        instr_time = measure(
            lambda: [_disabled_epoch_instrumentation() for _ in range(50)],
            repeats=3, warmup=1,
        )
        overhead_per_epoch = instr_time.best_seconds / 50

        ratio = overhead_per_epoch / epoch_seconds
        assert ratio < OVERHEAD_BUDGET, (
            f"disabled instrumentation is {ratio:.2%} of a "
            f"{epoch_seconds * 1e3:.3f} ms epoch (budget "
            f"{OVERHEAD_BUDGET:.0%})"
        )

    def test_fit_results_identical_with_null_tracer(self, train_envs):
        """Passing NULL_TRACER explicitly is the same as passing nothing."""
        import numpy as np

        a = make_trainer("ERM", n_epochs=5, seed=0).fit(train_envs)
        b = make_trainer("ERM", n_epochs=5, seed=0).fit(
            train_envs, tracer=NULL_TRACER
        )
        np.testing.assert_array_equal(a.theta, b.theta)
