"""Tests for mini-batch training support (paper footnote 6)."""

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
from repro.baselines.vrex import VRExConfig, VRExTrainer
from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.train.base import BaseTrainConfig


class TestConfig:
    def test_none_is_default(self):
        assert BaseTrainConfig().batch_size is None

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BaseTrainConfig(batch_size=0)


class TestBehaviour:
    def test_none_reproduces_full_batch_exactly(self, tiny_envs):
        a = ERMTrainer(BaseTrainConfig(n_epochs=20, batch_size=None)).fit(
            tiny_envs
        )
        b = ERMTrainer(BaseTrainConfig(n_epochs=20)).fit(tiny_envs)
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_batched_differs_from_full(self, tiny_envs):
        full = ERMTrainer(BaseTrainConfig(n_epochs=20)).fit(tiny_envs)
        batched = ERMTrainer(
            BaseTrainConfig(n_epochs=20, batch_size=32)
        ).fit(tiny_envs)
        assert not np.array_equal(full.theta, batched.theta)

    def test_batched_deterministic_given_seed(self, tiny_envs):
        config = BaseTrainConfig(n_epochs=20, batch_size=32, seed=5)
        a = ERMTrainer(config).fit(tiny_envs)
        b = ERMTrainer(config).fit(tiny_envs)
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_batch_larger_than_env_uses_full_env(self, tiny_envs):
        # Each tiny env has 120 rows; a 10_000 batch degenerates to full.
        full = ERMTrainer(BaseTrainConfig(n_epochs=10)).fit(tiny_envs)
        big = ERMTrainer(
            BaseTrainConfig(n_epochs=10, batch_size=10_000)
        ).fit(tiny_envs)
        np.testing.assert_array_equal(full.theta, big.theta)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: MetaIRMTrainer(
                MetaIRMConfig(n_epochs=15, batch_size=48)
            ),
            lambda: LightMIRMTrainer(
                LightMIRMConfig(n_epochs=15, batch_size=48)
            ),
            lambda: GroupDROTrainer(
                GroupDROConfig(n_epochs=15, batch_size=48)
            ),
            lambda: VRExTrainer(VRExConfig(n_epochs=15, batch_size=48)),
        ],
    )
    def test_every_trainer_supports_batching(self, make, tiny_envs):
        result = make().fit(tiny_envs)
        assert np.all(np.isfinite(result.theta))
        assert result.history.n_epochs == 15

    def test_batched_still_learns(self, tiny_envs):
        result = ERMTrainer(
            BaseTrainConfig(n_epochs=200, learning_rate=1.0, batch_size=64)
        ).fit(tiny_envs)
        assert result.theta[0] > 0.4
        assert result.theta[1] < -0.15

    def test_minibatch_raises_meta_loss_variance(self, tiny_envs):
        """The mechanism behind the paper's Table II: sampled meta-losses
        get noisy once losses are estimated on mini-batches."""

        def objective_std(batch_size):
            trainer = MetaIRMTrainer(
                MetaIRMConfig(
                    n_epochs=30,
                    learning_rate=1e-6,  # nearly frozen parameters
                    n_sampled_envs=1,
                    batch_size=batch_size,
                    seed=1,
                )
            )
            result = trainer.fit(tiny_envs)
            return float(np.std(result.history.objective))

        assert objective_std(16) > objective_std(None)
