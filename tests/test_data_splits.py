"""Unit tests for the split protocols."""

import numpy as np
import pytest

from repro.data.splits import iid_split, temporal_split, validation_split


class TestTemporalSplit:
    def test_years_partitioned(self, small_dataset):
        split = temporal_split(small_dataset)
        assert set(np.unique(split.train.years)) == {2016, 2017, 2018, 2019}
        assert set(np.unique(split.test.years)) == {2020}

    def test_no_row_loss(self, small_dataset):
        split = temporal_split(small_dataset)
        assert split.train.n_samples + split.test.n_samples == (
            small_dataset.n_samples
        )


class TestIidSplit:
    def test_fraction_respected(self, small_dataset):
        split = iid_split(small_dataset, test_fraction=0.25, seed=0)
        assert split.test.n_samples == pytest.approx(
            0.25 * small_dataset.n_samples, abs=1
        )

    def test_disjoint_and_complete(self, small_dataset):
        split = iid_split(small_dataset, test_fraction=0.3, seed=1)
        assert split.train.n_samples + split.test.n_samples == (
            small_dataset.n_samples
        )

    def test_deterministic_given_seed(self, small_dataset):
        a = iid_split(small_dataset, seed=5)
        b = iid_split(small_dataset, seed=5)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)

    def test_different_seed_differs(self, small_dataset):
        a = iid_split(small_dataset, seed=5)
        b = iid_split(small_dataset, seed=6)
        assert not np.array_equal(a.test.labels, b.test.labels)

    def test_mixes_years(self, small_dataset):
        split = iid_split(small_dataset, seed=0)
        assert len(np.unique(split.test.years)) > 1

    def test_invalid_fraction_raises(self, small_dataset):
        with pytest.raises(ValueError):
            iid_split(small_dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            iid_split(small_dataset, test_fraction=1.0)


class TestValidationSplit:
    def test_default_fraction(self, small_dataset):
        split = validation_split(small_dataset, validation_fraction=0.2)
        assert split.test.n_samples == pytest.approx(
            0.2 * small_dataset.n_samples, abs=1
        )
