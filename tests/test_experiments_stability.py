"""Unit tests for the stability study harness (tiny settings)."""

import pytest

from repro.experiments.stability import (
    CLAIMS,
    format_stability,
    run_stability,
)


class TestRunStability:
    @pytest.fixture(scope="class")
    def study(self):
        return run_stability(
            data_seeds=(1, 2),
            n_samples=5_000,
            trainer_seeds=(0,),
            methods=("ERM", "meta-IRM", "LightMIRM"),
        )

    def test_rows_per_method(self, study):
        assert [r.method for r in study.rows] == [
            "ERM", "meta-IRM", "LightMIRM",
        ]
        assert study.n_seeds == 2

    def test_claim_rates_in_unit_interval(self, study):
        assert set(study.claim_rates) == set(CLAIMS)
        for rate in study.claim_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_stds_nonnegative(self, study):
        for row in study.rows:
            assert row.mean_ks_std >= 0
            assert row.worst_ks_std >= 0

    def test_format(self, study):
        rendered = format_stability(study)
        assert "Stability over 2 platform seeds" in rendered
        assert "claim hold-rates" in rendered

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            run_stability(data_seeds=(1,), n_samples=4_000,
                          methods=("ERM", "CatBoost"))
