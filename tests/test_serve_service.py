"""Tests for the scoring service (repro.serve.service).

Covers the ISSUE acceptance behaviours: micro-batched scores bit-identical
to direct ``predict_proba``, challenger failures falling back to the
champion (and being counted), and drift-guard trips pinning traffic to the
champion.
"""

import numpy as np
import pytest

from repro.monitor.streaming import StreamingPSI
from repro.serve.degradation import DriftGuard
from repro.serve.registry import CHALLENGER, CHAMPION, ModelRegistry
from repro.serve.service import ScoringService, ServiceConfig


@pytest.fixture(scope="module")
def champion_model(tmp_path_factory, fitted_pipeline):
    registry = ModelRegistry(tmp_path_factory.mktemp("svc") / "reg")
    registry.save(fitted_pipeline)
    return registry.load(CHAMPION)


@pytest.fixture()
def request_rows(small_split):
    return small_split.test.features[:300]


class _BrokenModel:
    """Challenger stand-in whose every scoring call fails."""

    def predict_proba(self, rows):
        raise RuntimeError("challenger exploded")

    def predict_leaves(self, rows):
        raise RuntimeError("challenger exploded")


class _ConstantModel:
    """Challenger stand-in distinguishable from the champion."""

    def predict_proba(self, rows):
        return np.full(rows.shape[0], 0.5)


class TestBitIdentity:
    def test_micro_batched_equals_direct(self, champion_model, request_rows):
        service = ScoringService(
            champion_model, config=ServiceConfig(max_batch_size=64)
        )
        tickets = [service.submit(row) for row in request_rows]
        service.flush()
        got = np.array([t.score for t in tickets])
        np.testing.assert_array_equal(
            got, champion_model.predict_proba(request_rows)
        )

    def test_score_row_equals_batch_entry(self, champion_model, request_rows):
        service = ScoringService(champion_model)
        direct = champion_model.predict_proba(request_rows[:1])[0]
        assert service.score_row(request_rows[0]) == direct
        assert service.telemetry.requests == 1

    def test_cached_scores_identical(self, champion_model, request_rows):
        service = ScoringService(
            champion_model, config=ServiceConfig(cache_size=2048)
        )
        first = service.score_batch(request_rows)
        second = service.score_batch(request_rows)   # all cache hits
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(
            first, champion_model.predict_proba(request_rows)
        )
        assert service.telemetry.cache_hits >= request_rows.shape[0]

    def test_score_batch_validates_shape(self, champion_model):
        service = ScoringService(champion_model)
        with pytest.raises(ValueError):
            service.score_batch(np.zeros(5))
        with pytest.raises(ValueError):
            service.score_row(np.zeros((2, 5)))


class TestChallengerRouting:
    def test_healthy_challenger_serves(self, champion_model, request_rows):
        service = ScoringService(champion_model, challenger=_ConstantModel())
        scores = service.score_batch(request_rows[:10])
        np.testing.assert_array_equal(scores, np.full(10, 0.5))
        assert service.snapshot()["serving"] == CHALLENGER

    def test_use_challenger_false_pins_champion(self, champion_model,
                                                request_rows):
        service = ScoringService(
            champion_model, challenger=_ConstantModel(),
            config=ServiceConfig(use_challenger=False),
        )
        scores = service.score_batch(request_rows[:10])
        np.testing.assert_array_equal(
            scores, champion_model.predict_proba(request_rows[:10])
        )
        assert service.snapshot()["serving"] == CHAMPION

    def test_challenger_failure_falls_back_and_is_counted(
            self, champion_model, request_rows):
        service = ScoringService(champion_model, challenger=_BrokenModel())
        scores = service.score_batch(request_rows[:20])
        np.testing.assert_array_equal(
            scores, champion_model.predict_proba(request_rows[:20])
        )
        assert service.telemetry.fallbacks == {"challenger_error": 1}

    def test_from_registry_loads_both_slots(self, tmp_path, fitted_pipeline,
                                            request_rows):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save(fitted_pipeline)
        registry.save(fitted_pipeline, slot=CHALLENGER)
        service = ScoringService.from_registry(registry)
        assert service.challenger is not None
        scores = service.score_batch(request_rows[:5])
        np.testing.assert_array_equal(
            scores, service.champion.predict_proba(request_rows[:5])
        )

    def test_from_registry_without_challenger(self, tmp_path,
                                              fitted_pipeline):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save(fitted_pipeline)
        service = ScoringService.from_registry(registry)
        assert service.challenger is None


class TestDriftGuard:
    def _guard(self, small_split, **kwargs):
        return DriftGuard(
            StreamingPSI.from_dataset(small_split.train), **kwargs
        )

    def test_trip_pins_champion_and_is_counted(self, champion_model,
                                               small_split, request_rows):
        guard = self._guard(small_split, psi_threshold=0.25, min_rows=1)
        service = ScoringService(
            champion_model, challenger=_ConstantModel(), drift_guard=guard
        )
        shifted = request_rows + 100.0   # wildly off-baseline traffic
        scores = service.score_batch(shifted)
        assert guard.tripped
        np.testing.assert_array_equal(
            scores, champion_model.predict_proba(shifted)
        )
        assert service.telemetry.fallbacks == {"drift_guard": 1}
        assert service.snapshot()["serving"] == CHAMPION

    def test_in_distribution_traffic_does_not_trip(self, champion_model,
                                                   small_split):
        guard = self._guard(small_split, psi_threshold=0.25, min_rows=1)
        service = ScoringService(
            champion_model, challenger=_ConstantModel(), drift_guard=guard
        )
        # Traffic drawn from the baseline window itself cannot drift.
        service.score_batch(small_split.train.features[:300])
        assert not guard.tripped
        assert service.telemetry.fallbacks == {}

    def test_trip_latches_until_reset(self, champion_model, small_split,
                                      request_rows):
        guard = self._guard(small_split, psi_threshold=0.25, min_rows=1)
        service = ScoringService(
            champion_model, challenger=_ConstantModel(), drift_guard=guard
        )
        service.score_batch(request_rows + 100.0)
        service.score_batch(request_rows)          # back in distribution...
        assert guard.tripped                       # ...but still latched
        assert service.telemetry.fallbacks["drift_guard"] == 2
        guard.reset_trip()
        assert not guard.tripped
        assert guard.stream.n_rows_seen == 0

    def test_guard_validation(self, small_split):
        with pytest.raises(ValueError):
            self._guard(small_split, psi_threshold=0.0)
        with pytest.raises(ValueError):
            self._guard(small_split, min_rows=0)

    def test_snapshot_includes_guard_and_caches(self, champion_model,
                                                small_split, request_rows):
        # 10 rows make a noisy PSI estimate; a huge threshold keeps the
        # guard untripped so the snapshot shows the healthy state.
        guard = self._guard(small_split, psi_threshold=100.0, min_rows=1)
        service = ScoringService(
            champion_model,
            config=ServiceConfig(cache_size=64),
            drift_guard=guard,
        )
        service.score_batch(request_rows[:10])
        snap = service.snapshot()
        assert snap["drift_guard"]["tripped"] is False
        assert snap["caches"][CHAMPION]["misses"] == 10
        assert snap["telemetry"]["rows_scored"] == 10


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_size=-1)
