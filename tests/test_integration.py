"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.metrics.fairness import evaluate_environments
from repro.train.registry import available_trainers, make_trainer


class TestEveryTrainerEndToEnd:
    @pytest.mark.parametrize("name", available_trainers())
    def test_trainer_fits_and_scores(self, name, train_envs, test_envs):
        trainer = make_trainer(name, n_epochs=15, seed=0)
        result = trainer.fit(train_envs)
        labels = {e.name: e.labels for e in test_envs}
        if hasattr(result, "predict_proba_env"):
            scores = {
                e.name: result.predict_proba_env(e.name, e.features)
                for e in test_envs
            }
        else:
            scores = {
                e.name: result.model.predict_proba(result.theta, e.features)
                for e in test_envs
            }
        report = evaluate_environments(labels, scores)
        # Every trainer should clearly beat chance on at least the mean.
        assert report.mean_ks > 0.15
        assert np.isfinite(result.theta).all()


class TestIRMVsERMFairness:
    @pytest.fixture(scope="class")
    def medium_envs(self):
        """A 20k-row platform: large enough for stable worst-province KS."""
        from repro.data.generator import GeneratorConfig, LoanDataGenerator
        from repro.data.splits import temporal_split
        from repro.pipeline.extractor import GBDTFeatureExtractor

        dataset = LoanDataGenerator(
            GeneratorConfig(n_samples=20_000, seed=7)
        ).generate()
        split = temporal_split(dataset)
        extractor = GBDTFeatureExtractor().fit(split.train)
        return (
            extractor.encode_environments(split.train),
            extractor.encode_environments(split.test),
        )

    def test_lightmirm_fairer_than_erm(self, medium_envs):
        """The headline qualitative claim: LightMIRM's worst-province KS
        clearly beats ERM's under the temporal split."""
        train, test = medium_envs
        labels = {e.name: e.labels for e in test}

        def worst(result):
            scores = {
                e.name: result.model.predict_proba(result.theta, e.features)
                for e in test
            }
            return evaluate_environments(labels, scores).worst_ks

        erm = make_trainer("ERM", seed=0).fit(train)
        light = make_trainer("LightMIRM", seed=0).fit(train)
        assert worst(light) > worst(erm)


class TestReproducibility:
    def test_full_stack_deterministic(self, small_split):
        from repro.core.config import LightMIRMConfig
        from repro.core.lightmirm import LightMIRMTrainer
        from repro.pipeline.pipeline import LoanDefaultPipeline

        def run():
            pipeline = LoanDefaultPipeline(
                LightMIRMTrainer(LightMIRMConfig(n_epochs=8, seed=1))
            )
            pipeline.fit(small_split.train)
            return pipeline.predict_proba(small_split.test)

        np.testing.assert_array_equal(run(), run())
