"""Tests for the closed-form SEM verification bed."""

import dataclasses

import numpy as np
import pytest

from repro.train.registry import make_trainer
from repro.verify.sem import SEMConfig, make_sem_bed


@pytest.fixture(scope="module")
def bed():
    return make_sem_bed(SEMConfig(n_per_env=1_000, seed=11))


class TestConfig:
    def test_defaults_valid(self):
        SEMConfig()

    def test_smoke_is_small(self):
        cfg = SEMConfig.smoke()
        assert cfg.n_per_env < SEMConfig().n_per_env
        assert cfg.n_features < SEMConfig().n_features

    def test_mixed_polarity_defaults(self):
        """Majority-positive strengths with one flipped environment."""
        strengths = np.array(SEMConfig().train_strengths)
        assert strengths.mean() > 0
        assert (strengths < 0).any()
        assert SEMConfig().ood_strength < 0

    @pytest.mark.parametrize("bad", [
        dict(n_per_env=5),
        dict(d_causal=0),
        dict(d_spurious=0),
        dict(d_noise=-1),
        dict(train_strengths=(1.0,)),
        dict(spurious_noise=0.0),
        dict(w_causal=(1.0, 2.0), d_causal=3),
    ])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            SEMConfig(**bad)

    def test_causal_coefficients_respect_explicit_vector(self):
        cfg = SEMConfig(d_causal=2, w_causal=(0.5, -0.5))
        np.testing.assert_array_equal(cfg.causal_coefficients(), [0.5, -0.5])

    def test_causal_coefficients_tile_beyond_defaults(self):
        cfg = SEMConfig(d_causal=8)
        coefs = cfg.causal_coefficients()
        assert coefs.shape == (8,)
        np.testing.assert_array_equal(coefs[5:], coefs[:3])

    def test_shortcut_coefficient_closed_form(self):
        cfg = SEMConfig(spurious_noise=2.0)
        assert cfg.shortcut_coefficient(1.5) == pytest.approx(
            2.0 * 1.5 / 4.0
        )

    def test_invariant_theta_zero_outside_causal_block(self):
        cfg = SEMConfig()
        theta = cfg.invariant_theta()
        np.testing.assert_array_equal(
            theta[: cfg.d_causal], cfg.causal_coefficients()
        )
        np.testing.assert_array_equal(theta[cfg.d_causal:], 0.0)


class TestBedStructure:
    def test_deterministic_given_seed(self):
        a = make_sem_bed(SEMConfig(n_per_env=200, seed=4))
        b = make_sem_bed(SEMConfig(n_per_env=200, seed=4))
        for env_a, env_b in zip(
            a.train_environments + [a.iid_environment, a.ood_environment],
            b.train_environments + [b.iid_environment, b.ood_environment],
        ):
            np.testing.assert_array_equal(env_a.features, env_b.features)
            np.testing.assert_array_equal(env_a.labels, env_b.labels)

    def test_different_seed_different_bed(self):
        a = make_sem_bed(SEMConfig(n_per_env=200, seed=4))
        b = make_sem_bed(SEMConfig(n_per_env=200, seed=5))
        assert not np.array_equal(
            a.train_environments[0].labels, b.train_environments[0].labels
        )

    def test_shapes_and_indices(self, bed):
        cfg = bed.config
        assert len(bed.train_environments) == len(cfg.train_strengths)
        for env in bed.train_environments:
            assert env.features.shape == (cfg.n_per_env, cfg.n_features)
        blocks = np.concatenate(
            [bed.causal_idx, bed.spurious_idx, bed.noise_idx]
        )
        np.testing.assert_array_equal(blocks, np.arange(cfg.n_features))

    def test_both_classes_everywhere(self, bed):
        for env in (*bed.train_environments, bed.iid_environment,
                    bed.ood_environment):
            assert 0 < env.labels.sum() < env.n_samples


class TestClosedFormStructure:
    def test_spurious_correlation_tracks_polarity(self, bed):
        """corr(x_s, y) has the sign of beta_e in every environment."""
        for env, strength in zip(
            bed.train_environments, bed.config.train_strengths
        ):
            col = bed.spurious_idx[0]
            corr = np.corrcoef(env.features[:, col], env.labels)[0, 1]
            assert np.sign(corr) == np.sign(strength), (
                f"{env.name}: corr {corr} vs strength {strength}"
            )
        ood_corr = np.corrcoef(
            bed.ood_environment.features[:, bed.spurious_idx[0]],
            bed.ood_environment.labels,
        )[0, 1]
        assert ood_corr < 0

    def test_noise_block_uninformative(self, bed):
        for col in bed.noise_idx:
            pooled_x = np.concatenate(
                [e.features[:, col] for e in bed.train_environments]
            )
            pooled_y = np.concatenate(
                [e.labels for e in bed.train_environments]
            )
            assert abs(np.corrcoef(pooled_x, pooled_y)[0, 1]) < 0.05

    def test_single_env_fit_recovers_bayes_shortcut(self):
        """An unregularised per-env fit lands on the closed-form
        coefficients: w_c on the causal block, ~2*beta/sigma_s^2 on each
        spurious column."""
        cfg = SEMConfig(n_per_env=8_000, seed=2)
        bed = make_sem_bed(cfg)
        env_idx = 1  # beta = 0.8
        beta = cfg.train_strengths[env_idx]
        result = make_trainer("ERM", n_epochs=400, l2=0.0, seed=0).fit(
            [bed.train_environments[env_idx]]
        )
        shortcut = cfg.shortcut_coefficient(beta)
        np.testing.assert_allclose(
            result.theta[bed.spurious_idx], shortcut, rtol=0.25
        )
        np.testing.assert_allclose(
            result.theta[bed.causal_idx], bed.w_causal, rtol=0.3, atol=0.15
        )

    def test_invariant_theta_generalises_to_ood(self):
        """The closed-form invariant predictor ranks equally well on the
        polarity-flipped environment — by construction it ignores x_s."""
        from repro.metrics.auc import auc_score
        from repro.models.logistic import LogisticModel

        bed = make_sem_bed(SEMConfig(n_per_env=2_000, seed=7))
        model = LogisticModel(bed.config.n_features)
        theta = bed.invariant_theta
        iid = auc_score(
            bed.iid_environment.labels,
            model.predict_proba(theta, bed.iid_environment.features),
        )
        ood = auc_score(
            bed.ood_environment.labels,
            model.predict_proba(theta, bed.ood_environment.features),
        )
        assert abs(iid - ood) < 0.05
        assert min(iid, ood) > 0.75

    def test_replacing_ood_strength_changes_only_ood(self):
        base = make_sem_bed(SEMConfig(n_per_env=200, seed=9))
        flipped = make_sem_bed(
            dataclasses.replace(
                SEMConfig(n_per_env=200, seed=9), ood_strength=-2.0
            )
        )
        for env_a, env_b in zip(
            base.train_environments, flipped.train_environments
        ):
            np.testing.assert_array_equal(env_a.features, env_b.features)
        assert not np.array_equal(
            base.ood_environment.features, flipped.ood_environment.features
        )
