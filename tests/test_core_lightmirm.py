"""Unit tests for the LightMIRM trainer (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.data.dataset import EnvironmentData


def _fit(envs, **kw):
    defaults = dict(n_epochs=30, learning_rate=0.1, inner_lr=0.1, seed=0)
    defaults.update(kw)
    return LightMIRMTrainer(LightMIRMConfig(**defaults)).fit(envs)


class TestTraining:
    def test_learns_the_signal(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=120)
        assert result.theta[0] > 0.3
        assert result.theta[1] < -0.1

    def test_deterministic_given_seed(self, tiny_envs):
        a = _fit(tiny_envs, seed=4)
        b = _fit(tiny_envs, seed=4)
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_seed_changes_sampling(self, tiny_envs):
        a = _fit(tiny_envs, seed=4)
        b = _fit(tiny_envs, seed=5)
        assert not np.array_equal(a.theta, b.theta)

    def test_history_recorded(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=9)
        assert result.history.n_epochs == 9


class TestQueues:
    def test_one_queue_per_environment(self, tiny_envs):
        trainer = LightMIRMTrainer(
            LightMIRMConfig(n_epochs=4, queue_length=3)
        )
        trainer.fit(tiny_envs)
        assert trainer.queues_ is not None
        assert len(trainer.queues_) == len(tiny_envs)
        for queue in trainer.queues_:
            assert len(queue) == 3
            assert queue.n_pushed == 4  # one push per epoch

    def test_queue_warmup(self, tiny_envs):
        trainer = LightMIRMTrainer(
            LightMIRMConfig(n_epochs=2, queue_length=5)
        )
        trainer.fit(tiny_envs)
        assert all(not q.is_warm for q in trainer.queues_)

    def test_queue_values_finite(self, tiny_envs):
        trainer = LightMIRMTrainer(LightMIRMConfig(n_epochs=10))
        trainer.fit(tiny_envs)
        for queue in trainer.queues_:
            assert np.all(np.isfinite(queue.values))


class TestEnvironmentSampling:
    def test_sample_other_never_returns_self(self):
        rng = np.random.default_rng(0)
        for m in range(5):
            for _ in range(200):
                s = LightMIRMTrainer._sample_other(m, 5, rng)
                assert s != m
                assert 0 <= s < 5

    def test_sample_other_uniform(self):
        rng = np.random.default_rng(1)
        draws = [LightMIRMTrainer._sample_other(2, 4, rng)
                 for _ in range(3000)]
        counts = np.bincount(draws, minlength=4)
        assert counts[2] == 0
        others = counts[[0, 1, 3]]
        assert others.min() > 0.8 * others.mean()

    def test_two_envs_minimum(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            LightMIRMTrainer._sample_other(0, 1, rng)


class TestDegenerateEquivalence:
    def test_l1_gamma1_matches_one_sample_meta_irm_trajectory(self, tiny_envs):
        """LightMIRM with L=1, gamma=1 'degrades into meta-IRM sampling one
        province' (paper, Section IV-E1): with aligned sampling RNGs the two
        updates coincide on the first epoch, where no replay history exists.
        """
        config = LightMIRMConfig(n_epochs=1, queue_length=1, gamma=1.0,
                                 learning_rate=0.1, inner_lr=0.1, seed=9,
                                 lambda_penalty=3.0)
        light = LightMIRMTrainer(config).fit(tiny_envs)
        # Manually replicate one epoch of one-sample meta-IRM with the same
        # RNG stream used by LightMIRM's environment sampling.
        from repro.core.meta_grad import (
            backprop_through_inner_step,
            sigma_and_weights,
        )
        from repro.models.logistic import LogisticModel

        d = tiny_envs[0].features.shape[1]
        model = LogisticModel(d, l2=config.l2)
        theta = model.init_params(seed=9, scale=0.01)
        rng = np.random.default_rng(9)
        meta_losses = np.zeros(len(tiny_envs))
        grads = []
        for m, env in enumerate(tiny_envs):
            _, grad_m = model.loss_and_gradient(theta, env.features,
                                                env.labels)
            theta_bar = theta - 0.1 * grad_m
            s = int(rng.integers(0, len(tiny_envs) - 1))
            s = s if s < m else s + 1
            other = tiny_envs[s]
            loss_s, grad_s = model.loss_and_gradient(
                theta_bar, other.features, other.labels
            )
            meta_losses[m] = loss_s
            grads.append(grad_s)
        _, weights = sigma_and_weights(meta_losses, 3.0)
        outer = np.zeros_like(theta)
        for m, env in enumerate(tiny_envs):
            outer += weights[m] * backprop_through_inner_step(
                model, theta, env, grads[m], 0.1
            )
        expected = theta - 0.1 * outer
        np.testing.assert_allclose(light.theta, expected, atol=1e-12)


class TestFailureModes:
    def test_single_environment_rejected(self, rng):
        env = EnvironmentData("only", rng.standard_normal((50, 3)),
                              (rng.random(50) < 0.5).astype(float))
        with pytest.raises(ValueError):
            _fit([env], n_epochs=1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LightMIRMConfig(queue_length=0)
        with pytest.raises(ValueError):
            LightMIRMConfig(gamma=0.0)
        with pytest.raises(ValueError):
            LightMIRMConfig(gamma=1.1)


class TestCostScaling:
    def test_lightmirm_fewer_loss_evaluations_than_meta_irm(self, tiny_envs):
        """Count loss evaluations via a wrapper: LightMIRM must do O(M)
        meta-loss work vs meta-IRM's O(M^2)."""
        from repro.timing import StepTimer

        timer_light = StepTimer(enabled=True)
        LightMIRMTrainer(LightMIRMConfig(n_epochs=3)).fit(
            tiny_envs, timer=timer_light
        )
        timer_meta = StepTimer(enabled=True)
        MetaIRMTrainer(MetaIRMConfig(n_epochs=3)).fit(
            tiny_envs, timer=timer_meta
        )
        light_calls = timer_light.stats["calculating_meta_losses"].count
        meta_calls = timer_meta.stats["calculating_meta_losses"].count
        # Both record one step per (epoch, env); the *work inside* differs,
        # so compare wall time per call instead of counts.
        assert light_calls == meta_calls
        assert (
            timer_light.stats["calculating_meta_losses"].total_seconds
            < timer_meta.stats["calculating_meta_losses"].total_seconds
        )
