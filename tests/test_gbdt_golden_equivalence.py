"""Golden equivalence: vectorised GBDT kernels vs the preserved seed code.

The vectorised kernels (per-feature/fused histogram builder, flattened
struct-of-arrays tree routing, direct-CSR leaf encoding) are required to
reproduce the seed implementations in :mod:`repro.perfbench.reference`
*bit for bit* when given identical inputs: identical histogram sums,
identical splits and leaf values, identical probabilities.

The one deliberate behaviour change this PR made is sorting bagged row
subsets before histogram building (cache-friendly gathers).  Sorting
reorders float additions, which is mathematically a no-op but not
bitwise-guaranteed — so ensembles with ``subsample < 1`` are compared
structurally (identical splits and leaf routes) with probabilities at
tight tolerance, while every same-input comparison is exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.histogram import HistogramBuilder, build_histogram
from repro.gbdt.tree import DecisionTree, TreeParams
from repro.gbdt.leaf_encoder import encode_leaf_matrix
from repro.perfbench import reference
from repro.persist.codec import gbdt_from_dict, gbdt_to_dict


def _problem(seed: int, n: int, d: int, max_bins: int,
             constant_cols: tuple[int, ...] = ()):
    """Binned matrix plus logloss-shaped gradient statistics."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    for c in constant_cols:
        x[:, c] = 1.37
    logit = x @ (rng.standard_normal(d) * 0.5)
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(float)
    binned = QuantileBinner(max_bins=max_bins).fit(x).transform(x)
    prob = np.full(n, float(y.mean()))
    gradients = prob - y
    hessians = np.maximum(prob * (1.0 - prob), 1e-12)
    return binned, gradients, hessians, x, y


def _assert_histograms_identical(ours, seed):
    np.testing.assert_array_equal(ours.grad, seed.grad)
    np.testing.assert_array_equal(ours.hess, seed.hess)
    np.testing.assert_array_equal(
        ours.count.astype(np.float64), seed.count.astype(np.float64)
    )


def _assert_trees_identical(ours: DecisionTree,
                            seed: reference.SeedDecisionTree):
    assert ours.n_leaves == seed.n_leaves
    assert len(ours._nodes) == len(seed._nodes)
    for a, b in zip(ours._nodes, seed._nodes):
        assert a.feature == b.feature
        assert a.bin_threshold == b.bin_threshold
        assert a.left == b.left and a.right == b.right
        assert a.leaf_index == b.leaf_index
        assert a.value == b.value  # bitwise: exact float equality


class TestHistogramKernel:
    """Same (rows, columns) inputs in, bit-identical sums out."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "n,d,max_bins",
        [
            (400, 5, 16),     # small node: fused-index kernel
            (9_000, 7, 32),   # large node: per-feature kernel
            (300, 1, 8),      # single feature
            (500, 4, 2),      # minimal bin budget
        ],
    )
    def test_full_matrix(self, seed, n, d, max_bins):
        binned, g, h, _, _ = _problem(seed, n, d, max_bins)
        rows = np.arange(n)
        ours = build_histogram(binned, g, h, rows, max_bins)
        golden = reference.build_histogram_seed(binned, g, h, rows, max_bins)
        _assert_histograms_identical(ours, golden)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("k", [3, 200, 4_000, 8_500])
    def test_row_subsets_in_any_order(self, seed, k):
        # k spans both kernels (fused below 8192 rows, per-feature above);
        # the unsorted subset checks accumulation follows the given order.
        binned, g, h, _, _ = _problem(seed, 9_000, 6, 32)
        rng = np.random.default_rng(seed + 100)
        rows = rng.choice(9_000, size=k, replace=False)
        builder = HistogramBuilder(binned, 32)
        for subset in (rows, np.sort(rows)):
            ours = builder.build(g, h, subset)
            golden = reference.build_histogram_seed(binned, g, h, subset, 32)
            _assert_histograms_identical(ours, golden)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_column_subsets(self, seed):
        binned, g, h, _, _ = _problem(seed, 2_000, 8, 16)
        cols = np.array([0, 2, 3, 7])
        rows = np.random.default_rng(seed).choice(2_000, 900, replace=False)
        builder = HistogramBuilder(binned, 16)
        ours = builder.build(g, h, rows, column_subset=cols)
        golden = reference.build_histogram_seed(
            binned[:, cols], g, h, rows, 16
        )
        _assert_histograms_identical(ours, golden)

    def test_constant_columns(self):
        binned, g, h, _, _ = _problem(3, 1_000, 5, 16,
                                      constant_cols=(1, 4))
        assert binned[:, 1].max() == binned[:, 1].min()  # truly constant
        rows = np.arange(1_000)
        ours = build_histogram(binned, g, h, rows, 16)
        golden = reference.build_histogram_seed(binned, g, h, rows, 16)
        _assert_histograms_identical(ours, golden)

    def test_full_row_fast_path_matches_explicit_arange(self):
        binned, g, h, _, _ = _problem(4, 9_500, 4, 32)
        builder = HistogramBuilder(binned, 32)
        via_arange = builder.build(g, h, np.arange(9_500))
        via_none = builder.build(g, h, None)
        _assert_histograms_identical(via_arange, via_none)

    def test_count_is_int64(self):
        binned, g, h, _, _ = _problem(5, 500, 3, 8)
        hist = build_histogram(binned, g, h, np.arange(500), 8)
        assert hist.count.dtype == np.int64


class TestTreeGrowth:
    """Identical inputs grow identical trees, node by node."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_full_rows(self, seed):
        binned, g, h, _, _ = _problem(seed, 3_000, 6, 16)
        params = TreeParams(max_leaves=15, min_child_samples=20)
        ours = DecisionTree(params).fit(binned, g, h, max_bins=16)
        golden = reference.SeedDecisionTree(params).fit(binned, g, h,
                                                        max_bins=16)
        _assert_trees_identical(ours, golden)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("k", [1_200, 8_600])
    def test_same_row_subset_any_order(self, seed, k):
        binned, g, h, _, _ = _problem(seed, 9_000, 6, 32)
        rows = np.random.default_rng(seed + 7).choice(
            9_000, size=k, replace=False
        )
        params = TreeParams(max_leaves=12, min_child_samples=25)
        ours = DecisionTree(params).fit(binned, g, h, max_bins=32,
                                        sample_indices=rows)
        golden = reference.SeedDecisionTree(params).fit(
            binned, g, h, max_bins=32, sample_indices=rows
        )
        _assert_trees_identical(ours, golden)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_column_subset_matches_sliced_fit(self, seed):
        binned, g, h, _, _ = _problem(seed, 2_500, 8, 16)
        cols = np.array([1, 2, 5, 6])
        params = TreeParams(max_leaves=10, min_child_samples=20)
        ours = DecisionTree(params).fit(binned, g, h, max_bins=16,
                                        column_subset=cols)
        golden = reference.SeedDecisionTree(params).fit(
            binned[:, cols], g, h, max_bins=16
        )
        _assert_trees_identical(ours, golden)
        # Column-subset routing on the full matrix == routing the slice.
        np.testing.assert_array_equal(
            ours.predict_leaf(binned, columns=cols),
            golden.predict_leaf(binned[:, cols]),
        )

    def test_edge_problems_grow_identically(self):
        for n, d, mb, const in [(600, 1, 8, ()), (700, 5, 2, ()),
                                (800, 4, 16, (0, 2))]:
            binned, g, h, _, _ = _problem(11, n, d, mb, constant_cols=const)
            params = TreeParams(max_leaves=8, min_child_samples=10)
            ours = DecisionTree(params).fit(binned, g, h, max_bins=mb)
            golden = reference.SeedDecisionTree(params).fit(binned, g, h,
                                                            max_bins=mb)
            _assert_trees_identical(ours, golden)


class TestLeafRouting:
    """Flattened O(depth × n) descent == per-node mask loop."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_routes_match_seed_loop(self, seed):
        binned, g, h, _, _ = _problem(seed, 4_000, 6, 32)
        tree = DecisionTree(TreeParams(max_leaves=20)).fit(binned, g, h,
                                                           max_bins=32)
        np.testing.assert_array_equal(
            tree.predict_leaf(binned),
            reference.predict_leaf_seed(tree, binned),
        )

    def test_values_match_seed_loop(self):
        binned, g, h, _, _ = _problem(9, 2_000, 5, 16)
        tree = DecisionTree(TreeParams(max_leaves=12)).fit(binned, g, h,
                                                           max_bins=16)
        seed_tree = reference.SeedDecisionTree(
            TreeParams(max_leaves=12)
        ).fit(binned, g, h, max_bins=16)
        np.testing.assert_array_equal(tree.predict_value(binned),
                                      seed_tree.predict_value(binned))

    def test_single_leaf_tree_routes_everything_to_leaf_zero(self):
        # min_split_gain too high for any split: depth-0 flat tree.
        binned, g, h, _, _ = _problem(10, 300, 3, 8)
        params = TreeParams(max_leaves=2, min_split_gain=1e12)
        tree = DecisionTree(params).fit(binned, g, h, max_bins=8)
        assert tree.n_leaves == 1
        np.testing.assert_array_equal(tree.predict_leaf(binned),
                                      np.zeros(300, dtype=np.int64))


class TestEnsembleEquivalence:
    """GBDTClassifier (copy-free) vs the seed boosting loop."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("colsample", [1.0, 0.6])
    def test_exact_without_row_subsampling(self, seed, colsample):
        _, _, _, x, y = _problem(seed, 2_500, 8, 16)
        params = GBDTParams(n_trees=8, max_bins=16, colsample=colsample,
                            seed=seed)
        ours = GBDTClassifier(params).fit(x, y)
        golden = reference.SeedGBDT(params).fit(x, y)
        assert ours.base_score_ == golden.base_score_
        np.testing.assert_array_equal(ours.train_losses_,
                                      golden.train_losses_)
        np.testing.assert_array_equal(ours.predict_proba(x),
                                      golden.predict_proba(x))
        np.testing.assert_array_equal(ours.predict_leaves(x),
                                      golden.predict_leaves(x))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_with_validation_and_early_stopping(self, seed):
        _, _, _, x, y = _problem(seed, 3_000, 8, 16)
        params = GBDTParams(n_trees=25, max_bins=16, colsample=0.7,
                            early_stopping_rounds=3, seed=seed)
        ours = GBDTClassifier(params).fit(x[:2400], y[:2400],
                                          valid_features=x[2400:],
                                          valid_labels=y[2400:])
        golden = reference.SeedGBDT(params).fit(x[:2400], y[:2400],
                                                valid_features=x[2400:],
                                                valid_labels=y[2400:])
        assert len(ours.trees_) == len(golden.trees_)  # same stop round
        np.testing.assert_array_equal(ours.valid_losses_,
                                      golden.valid_losses_)
        np.testing.assert_array_equal(ours.predict_proba(x),
                                      golden.predict_proba(x))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_row_subsampling_same_structure_tight_probabilities(self, seed):
        # Sorted bagging visits the same rows in a different order, so
        # sums agree mathematically but not bitwise; splits and routes
        # must still be identical.
        _, _, _, x, y = _problem(seed, 2_500, 8, 16)
        params = GBDTParams(n_trees=8, max_bins=16, subsample=0.75,
                            seed=seed)
        ours = GBDTClassifier(params).fit(x, y)
        golden = reference.SeedGBDT(params).fit(x, y)
        for a, b in zip(ours.trees_, golden.trees_):
            assert [(n.feature, n.bin_threshold, n.left, n.right)
                    for n in a._nodes] == \
                   [(n.feature, n.bin_threshold, n.left, n.right)
                    for n in b._nodes]
        np.testing.assert_array_equal(ours.predict_leaves(x),
                                      golden.predict_leaves(x))
        np.testing.assert_allclose(ours.predict_proba(x),
                                   golden.predict_proba(x),
                                   rtol=1e-12, atol=1e-14)

    def test_row_subsampling_is_deterministic(self):
        _, _, _, x, y = _problem(6, 1_500, 6, 16)
        params = GBDTParams(n_trees=5, max_bins=16, subsample=0.8, seed=3)
        first = GBDTClassifier(params).fit(x, y)
        second = GBDTClassifier(params).fit(x, y)
        np.testing.assert_array_equal(first.predict_proba(x),
                                      second.predict_proba(x))
        np.testing.assert_array_equal(first.train_losses_,
                                      second.train_losses_)


class TestLeafEncoding:
    """Direct-CSR multi-hot == COO round-trip."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matrices_identical(self, seed):
        rng = np.random.default_rng(seed)
        leaves_per_tree = rng.integers(2, 9, size=6)
        offsets = np.concatenate(([0], np.cumsum(leaves_per_tree)))
        leaf_matrix = np.column_stack(
            [rng.integers(0, c, size=500) for c in leaves_per_tree]
        )
        ours = encode_leaf_matrix(leaf_matrix, offsets)
        golden = reference.encode_leaves_seed(leaf_matrix, offsets)
        assert ours.shape == golden.shape
        np.testing.assert_array_equal(ours.toarray(), golden.toarray())
        # Canonical structure, small dtype: n_trees nonzeros per row.
        assert ours.data.dtype == np.float32
        np.testing.assert_array_equal(
            ours.indptr, np.arange(501) * len(leaves_per_tree)
        )


class TestPersistedFlatTrees:
    """Round-trip keeps the flattened arrays and exact predictions."""

    def test_round_trip_preserves_flat_routing(self):
        _, _, _, x, y = _problem(8, 1_500, 6, 16)
        params = GBDTParams(n_trees=4, max_bins=16, colsample=0.8, seed=8)
        model = GBDTClassifier(params).fit(x, y)
        restored = gbdt_from_dict(gbdt_to_dict(model))
        for tree in restored.trees_:
            assert tree._flat is not None  # flat arrays persisted
        np.testing.assert_array_equal(model.predict_proba(x),
                                      restored.predict_proba(x))
        np.testing.assert_array_equal(model.predict_leaves(x),
                                      restored.predict_leaves(x))

    def test_payload_without_flat_rebuilds_lazily(self):
        _, _, _, x, y = _problem(8, 1_200, 5, 16)
        params = GBDTParams(n_trees=3, max_bins=16, seed=8)
        model = GBDTClassifier(params).fit(x, y)
        payload = gbdt_to_dict(model)
        for tree_payload in payload["trees"]:
            tree_payload.pop("flat", None)
        restored = gbdt_from_dict(payload)
        np.testing.assert_array_equal(model.predict_proba(x),
                                      restored.predict_proba(x))


class TestSplitSearchGolden:
    """Vectorised ``_best_split`` vs the seed per-feature scan.

    The 2-D prefix-sum + flat-argmax search must reproduce the seed
    loop's choice exactly — same (feature, bin, gain) with bitwise-equal
    floats — including first-feature/first-bin tie-breaking, all-invalid
    nodes and below-threshold gains.
    """

    def _node(self, binned, gradients, hessians, max_bins):
        from repro.gbdt.tree import _Node

        rows = np.arange(binned.shape[0])
        node = _Node(node_id=0, depth=0, sample_indices=rows)
        node.histogram = build_histogram(
            binned, gradients, hessians, rows, max_bins
        )
        return node

    def _assert_same_split(self, params, node):
        ours = DecisionTree(params)._best_split(node)
        seed = reference.best_split_seed(params, node)
        if seed is None:
            assert ours is None
            return
        assert ours is not None
        assert ours.feature == seed.feature
        assert ours.bin_threshold == seed.bin_threshold
        assert ours.gain == seed.gain  # bitwise: exact float equality
        assert ours.left_grad == seed.left_grad
        assert ours.left_hess == seed.left_hess
        assert ours.left_count == seed.left_count

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_histograms(self, seed):
        binned, gradients, hessians, _, _ = _problem(
            seed, n=400, d=7, max_bins=16
        )
        node = self._node(binned, gradients, hessians, max_bins=16)
        self._assert_same_split(
            TreeParams(min_child_samples=5), node
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_tight_constraints(self, seed):
        # High min_child_samples / hessian floors invalidate most bins,
        # exercising the masked-gain path on both sides.
        binned, gradients, hessians, _, _ = _problem(
            100 + seed, n=120, d=5, max_bins=8
        )
        node = self._node(binned, gradients, hessians, max_bins=8)
        self._assert_same_split(
            TreeParams(min_child_samples=40, min_child_hessian=1.0), node
        )

    def test_all_invalid_returns_none(self):
        binned, gradients, hessians, _, _ = _problem(
            3, n=60, d=4, max_bins=8
        )
        node = self._node(binned, gradients, hessians, max_bins=8)
        params = TreeParams(min_child_samples=50)  # no bin can satisfy both
        assert reference.best_split_seed(params, node) is None
        assert DecisionTree(params)._best_split(node) is None

    def test_too_few_samples_returns_none(self):
        binned, gradients, hessians, _, _ = _problem(
            4, n=30, d=3, max_bins=8
        )
        node = self._node(binned, gradients, hessians, max_bins=8)
        params = TreeParams(min_child_samples=20)  # 30 < 2 * 20
        assert reference.best_split_seed(params, node) is None
        assert DecisionTree(params)._best_split(node) is None

    def test_huge_min_split_gain_returns_none(self):
        binned, gradients, hessians, _, _ = _problem(
            5, n=200, d=4, max_bins=8
        )
        node = self._node(binned, gradients, hessians, max_bins=8)
        params = TreeParams(min_child_samples=5, min_split_gain=1e9)
        assert reference.best_split_seed(params, node) is None
        assert DecisionTree(params)._best_split(node) is None

    def test_duplicate_features_tie_break_on_first(self):
        # Duplicating the most informative column creates exactly equal
        # gains in two feature rows; both searches must keep the first.
        binned, gradients, hessians, _, _ = _problem(
            6, n=300, d=4, max_bins=8
        )
        binned = np.concatenate([binned, binned], axis=1)
        node = self._node(binned, gradients, hessians, max_bins=8)
        params = TreeParams(min_child_samples=5)
        ours = DecisionTree(params)._best_split(node)
        seed = reference.best_split_seed(params, node)
        assert ours is not None and seed is not None
        assert ours.feature == seed.feature < 4
        assert ours.bin_threshold == seed.bin_threshold
        assert ours.gain == seed.gain

    def test_max_depth_cap_returns_none(self):
        binned, gradients, hessians, _, _ = _problem(
            7, n=200, d=3, max_bins=8
        )
        node = self._node(binned, gradients, hessians, max_bins=8)
        node.depth = 2
        params = TreeParams(min_child_samples=5, max_depth=2)
        assert reference.best_split_seed(params, node) is None
        assert DecisionTree(params)._best_split(node) is None
