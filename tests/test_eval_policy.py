"""Unit tests for operating-threshold policies."""

import numpy as np
import pytest

from repro.eval.policy import (
    threshold_for_bad_debt,
    threshold_for_fpr_cap,
    threshold_for_refusal_budget,
)
from repro.metrics.calibration import bad_debt_rate, refusal_rate


@pytest.fixture(scope="module")
def stream():
    """An informative scored stream: scores correlate with defaults."""
    rng = np.random.default_rng(0)
    n = 8_000
    y = rng.integers(0, 2, n).astype(float)
    scores = np.clip(0.55 * y + 0.45 * rng.random(n), 0, 1)
    return y, scores


class TestBadDebtTarget:
    def test_constraint_met(self, stream):
        y, s = stream
        point = threshold_for_bad_debt(y, s, target_bad_debt_rate=0.25)
        assert point.bad_debt_rate <= 0.25
        assert bad_debt_rate(y, s, point.threshold) == pytest.approx(
            point.bad_debt_rate
        )

    def test_loosest_feasible(self, stream):
        """A slightly higher threshold must violate the target."""
        y, s = stream
        point = threshold_for_bad_debt(y, s, target_bad_debt_rate=0.25,
                                       n_grid=501)
        step = 1.0 / 500
        if point.threshold + step <= 1.0:
            assert bad_debt_rate(y, s, point.threshold + step) > 0.25

    def test_zero_target_always_feasible(self, stream):
        """Bad debt 0 is always reachable (worst case: refuse everything);
        the policy finds the loosest threshold that still achieves it."""
        y, s = stream
        point = threshold_for_bad_debt(y, s, target_bad_debt_rate=0.0)
        assert point.bad_debt_rate == 0.0
        # In this stream every defaulter scores >= 0.55, so the loosest
        # zero-bad-debt threshold refuses far fewer than all applications.
        assert point.refusal_rate < 1.0

    def test_invalid_target(self, stream):
        y, s = stream
        with pytest.raises(ValueError):
            threshold_for_bad_debt(y, s, target_bad_debt_rate=1.5)


class TestRefusalBudget:
    def test_constraint_met_and_tightest(self, stream):
        y, s = stream
        point = threshold_for_refusal_budget(y, s, max_refusal_rate=0.2)
        assert point.refusal_rate <= 0.2
        # Tightest feasible: a slightly lower threshold must refuse more
        # than the budget.
        step = 1.0 / 500
        if point.threshold - step >= 0.0:
            assert refusal_rate(y, s, point.threshold - step) > 0.2

    def test_budget_one_accepts_everything(self, stream):
        y, s = stream
        point = threshold_for_refusal_budget(y, s, max_refusal_rate=1.0)
        assert point.threshold == 0.0

    def test_tighter_budget_higher_bad_debt(self, stream):
        y, s = stream
        tight = threshold_for_refusal_budget(y, s, max_refusal_rate=0.05)
        loose = threshold_for_refusal_budget(y, s, max_refusal_rate=0.4)
        assert tight.bad_debt_rate >= loose.bad_debt_rate


class TestFprCap:
    def test_constraint_met(self, stream):
        y, s = stream
        point = threshold_for_fpr_cap(y, s, max_false_positive_rate=0.1)
        assert point.false_positive_rate <= 0.1

    def test_zero_cap_feasible_at_top(self, stream):
        y, s = stream
        point = threshold_for_fpr_cap(y, s, max_false_positive_rate=0.0)
        # Only the refuse-nobody end can guarantee zero FPR here.
        assert point.false_positive_rate == 0.0


class TestOperatingPoint:
    def test_describe(self, stream):
        y, s = stream
        point = threshold_for_refusal_budget(y, s, max_refusal_rate=0.2)
        text = point.describe()
        assert "threshold" in text
        assert "%" in text
