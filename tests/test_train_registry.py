"""Unit tests for the trainer registry."""

import pytest

from repro.baselines.erm import ERMTrainer
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.train.registry import (
    available_trainers,
    make_trainer,
    penalty_parameter,
    resolve_trainer_name,
    trainer_names,
)


class TestMakeTrainer:
    def test_all_listed_names_constructible(self):
        for name in available_trainers():
            trainer = make_trainer(name, n_epochs=1)
            assert trainer.config.n_epochs == 1

    def test_names_cover_paper_table1(self):
        names = available_trainers()
        for required in (
            "ERM",
            "ERM + fine-tuning",
            "Up Sampling",
            "Group DRO",
            "V-REx",
            "IRMv1",
            "meta-IRM",
            "LightMIRM",
        ):
            assert required in names

    def test_types(self):
        assert isinstance(make_trainer("ERM"), ERMTrainer)
        assert isinstance(make_trainer("meta-IRM"), MetaIRMTrainer)
        assert isinstance(make_trainer("LightMIRM"), LightMIRMTrainer)

    def test_sampled_meta_irm_syntax(self):
        trainer = make_trainer("meta-IRM(5)")
        assert isinstance(trainer, MetaIRMTrainer)
        assert trainer.config.n_sampled_envs == 5
        assert trainer.name == "meta-IRM(5)"

    def test_config_overrides_forwarded(self):
        trainer = make_trainer("LightMIRM", queue_length=7, gamma=0.5)
        assert trainer.config.queue_length == 7
        assert trainer.config.gamma == 0.5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_trainer("AdaBoost")

    def test_bad_sampled_syntax_raises(self):
        with pytest.raises(ValueError):
            make_trainer("meta-IRM(five)")


class TestNameResolution:
    def test_case_insensitive(self):
        assert resolve_trainer_name("lightmirm") == "LightMIRM"
        assert resolve_trainer_name("ERM") == "ERM"
        assert resolve_trainer_name("v-rex") == "V-REx"

    def test_separator_tolerant(self):
        assert resolve_trainer_name("meta_irm") == "meta-IRM"
        assert resolve_trainer_name("group dro") == "Group DRO"
        assert resolve_trainer_name("ERM + fine-tuning") == "ERM + fine-tuning"

    def test_aliases(self):
        assert resolve_trainer_name("finetune") == "ERM + fine-tuning"
        assert resolve_trainer_name("dro") == "Group DRO"
        assert resolve_trainer_name("irm") == "IRMv1"
        assert resolve_trainer_name("rex") == "V-REx"
        assert resolve_trainer_name("upsample") == "Up Sampling"
        assert resolve_trainer_name("light-mirm") == "LightMIRM"

    def test_sampled_syntax_any_casing(self):
        assert resolve_trainer_name("META-IRM(7)") == "meta-IRM(7)"
        assert resolve_trainer_name("meta irm(3)") == "meta-IRM(3)"

    def test_make_trainer_accepts_aliases(self):
        assert isinstance(make_trainer("lightmirm"), LightMIRMTrainer)
        assert isinstance(make_trainer("erm"), ERMTrainer)
        trainer = make_trainer("meta_irm(4)")
        assert isinstance(trainer, MetaIRMTrainer)
        assert trainer.config.n_sampled_envs == 4

    def test_did_you_mean_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'LightMIRM'"):
            resolve_trainer_name("LightMIRN")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            resolve_trainer_name("xgboost")


class TestMetadata:
    def test_trainer_names_cover_available(self):
        infos = trainer_names()
        assert [info.name for info in infos] == available_trainers()

    def test_every_info_has_config_class(self):
        for info in trainer_names():
            assert info.config_class.endswith("Config")

    def test_penalty_parameter_lookup(self):
        assert penalty_parameter("LightMIRM") == "lambda_penalty"
        assert penalty_parameter("LIGHTMIRM") == "lambda_penalty"
        assert penalty_parameter("irm") == "penalty_weight"
        assert penalty_parameter("rex") == "variance_weight"
        assert penalty_parameter("meta-IRM(5)") == "lambda_penalty"
        assert penalty_parameter("ERM") is None

    def test_penalty_parameter_unknown_raises(self):
        with pytest.raises(KeyError):
            penalty_parameter("AdaBoost")
