"""Unit tests for the trainer registry."""

import pytest

from repro.baselines.erm import ERMTrainer
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.train.registry import available_trainers, make_trainer


class TestMakeTrainer:
    def test_all_listed_names_constructible(self):
        for name in available_trainers():
            trainer = make_trainer(name, n_epochs=1)
            assert trainer.config.n_epochs == 1

    def test_names_cover_paper_table1(self):
        names = available_trainers()
        for required in (
            "ERM",
            "ERM + fine-tuning",
            "Up Sampling",
            "Group DRO",
            "V-REx",
            "IRMv1",
            "meta-IRM",
            "LightMIRM",
        ):
            assert required in names

    def test_types(self):
        assert isinstance(make_trainer("ERM"), ERMTrainer)
        assert isinstance(make_trainer("meta-IRM"), MetaIRMTrainer)
        assert isinstance(make_trainer("LightMIRM"), LightMIRMTrainer)

    def test_sampled_meta_irm_syntax(self):
        trainer = make_trainer("meta-IRM(5)")
        assert isinstance(trainer, MetaIRMTrainer)
        assert trainer.config.n_sampled_envs == 5
        assert trainer.name == "meta-IRM(5)"

    def test_config_overrides_forwarded(self):
        trainer = make_trainer("LightMIRM", queue_length=7, gamma=0.5)
        assert trainer.config.queue_length == 7
        assert trainer.config.gamma == 0.5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_trainer("AdaBoost")

    def test_bad_sampled_syntax_raises(self):
        with pytest.raises(ValueError):
            make_trainer("meta-IRM(five)")
