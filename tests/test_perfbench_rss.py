"""Unit tests for the cross-platform peak-memory probe."""

import numpy as np

from repro.perfbench import rss
from repro.perfbench.rss import PeakMemoryProbe, read_peak_rss_bytes


class TestReadPeakRss:
    def test_positive_and_monotonic(self):
        first = read_peak_rss_bytes()
        if first is None:  # platform without `resource`
            return
        assert first > 0
        hold = np.ones(4 * 1024 * 1024)  # 32 MB
        second = read_peak_rss_bytes()
        assert second >= first
        del hold

    def test_reflects_a_large_allocation(self):
        before = read_peak_rss_bytes()
        if before is None:
            return
        hold = np.ones(8 * 1024 * 1024)  # 64 MB, touched on write
        after = read_peak_rss_bytes()
        assert after - before >= hold.nbytes // 2
        del hold


class TestPeakMemoryProbe:
    def test_captures_block_peak(self):
        with PeakMemoryProbe() as probe:
            hold = np.ones(2 * 1024 * 1024)  # 16 MB
            hold[0] = 2.0
        del hold
        assert probe.peak_bytes is not None
        assert probe.peak_bytes > 0
        assert probe.source in ("getrusage", "tracemalloc")

    def test_tracemalloc_fallback(self, monkeypatch):
        """Without `resource`, the probe must fall back to tracemalloc."""
        monkeypatch.setattr(rss, "resource", None)
        with PeakMemoryProbe() as probe:
            hold = np.ones(2 * 1024 * 1024)  # 16 MB
        assert probe.source == "tracemalloc"
        assert probe.peak_bytes >= hold.nbytes
        del hold

    def test_fields_none_before_exit(self):
        probe = PeakMemoryProbe()
        assert probe.peak_bytes is None
        assert probe.source is None
