"""Unit tests for the rank-based AUC and the ROC curve."""

import numpy as np
import pytest

from repro.metrics.auc import auc_score, roc_curve


class TestAucScore:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, s) == 1.0

    def test_perfectly_wrong(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, s) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 5000).astype(float)
        s = rng.random(5000)
        assert abs(auc_score(y, s) - 0.5) < 0.03

    def test_all_ties_is_half(self):
        y = np.array([0, 1, 0, 1])
        s = np.zeros(4)
        assert auc_score(y, s) == pytest.approx(0.5)

    def test_partial_ties_counted_half(self):
        # One positive tied with one negative: P(pos > neg) + 0.5 P(tie).
        y = np.array([0, 1])
        s = np.array([0.5, 0.5])
        assert auc_score(y, s) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(5)
        y = rng.integers(0, 2, 60).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(60).round(1)  # force some ties
        pos = s[y == 1]
        neg = s[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (pos.size * neg.size)
        assert auc_score(y, s) == pytest.approx(expected)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="one class"):
            auc_score(np.ones(5), np.arange(5.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            auc_score(np.array([]), np.array([]))

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError, match="binary"):
            auc_score(np.array([0, 2]), np.array([0.1, 0.9]))

    def test_nan_scores_raise(self):
        with pytest.raises(ValueError, match="finite"):
            auc_score(np.array([0, 1]), np.array([0.1, np.nan]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            auc_score(np.array([0, 1]), np.array([0.1, 0.2, 0.3]))


class TestRocCurve:
    def test_starts_at_origin_and_ends_at_one_one(self):
        y = np.array([0, 1, 0, 1, 1])
        s = np.array([0.1, 0.9, 0.4, 0.6, 0.35])
        fpr, tpr, thresholds = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 300).astype(float)
        y[:2] = [0, 1]
        s = rng.random(300)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_thresholds_strictly_decreasing(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, 100).astype(float)
        y[:2] = [0, 1]
        s = rng.random(100).round(1)
        _, __, thresholds = roc_curve(y, s)
        assert np.all(np.diff(thresholds) < 0)

    def test_trapezoid_area_matches_auc(self):
        rng = np.random.default_rng(4)
        y = rng.integers(0, 2, 500).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(500) + y  # informative scores with overlap
        fpr, tpr, _ = roc_curve(y, s)
        area = float(np.trapezoid(tpr, fpr))
        assert area == pytest.approx(auc_score(y, s), abs=1e-10)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(4), np.arange(4.0))
