"""Tests for the leaf-pattern LRU score cache (repro.serve.cache)."""

import numpy as np
import pytest

from repro.serve.cache import LeafPatternCache


class TestKey:
    def test_same_pattern_same_key(self):
        a = LeafPatternCache.key(np.array([1, 5, 3]))
        b = LeafPatternCache.key(np.array([1, 5, 3], dtype=np.int32))
        assert a == b

    def test_different_patterns_differ(self):
        assert (LeafPatternCache.key(np.array([1, 2]))
                != LeafPatternCache.key(np.array([2, 1])))


class TestLRU:
    def test_hit_and_miss_counters(self):
        cache = LeafPatternCache(maxsize=4)
        key = LeafPatternCache.key(np.array([1, 2, 3]))
        assert cache.get(key) is None
        cache.put(key, 0.25)
        assert cache.get(key) == 0.25
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LeafPatternCache(maxsize=2)
        k1, k2, k3 = (LeafPatternCache.key(np.array([i])) for i in range(3))
        cache.put(k1, 0.1)
        cache.put(k2, 0.2)
        cache.get(k1)            # refresh k1: k2 is now the LRU entry
        cache.put(k3, 0.3)       # evicts k2
        assert cache.get(k2) is None
        assert cache.get(k1) == 0.1
        assert cache.get(k3) == 0.3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = LeafPatternCache(maxsize=2)
        k1, k2, k3 = (LeafPatternCache.key(np.array([i])) for i in range(3))
        cache.put(k1, 0.1)
        cache.put(k2, 0.2)
        cache.put(k1, 0.15)      # refresh, not insert: no eviction
        assert cache.evictions == 0
        cache.put(k3, 0.3)       # now k2 is evicted, not k1
        assert cache.get(k1) == 0.15
        assert cache.get(k2) is None

    def test_hit_rate_zero_before_lookups(self):
        assert LeafPatternCache().hit_rate == 0.0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LeafPatternCache(maxsize=0)

    def test_snapshot_schema(self):
        cache = LeafPatternCache(maxsize=8)
        cache.put(LeafPatternCache.key(np.array([7])), 0.5)
        snap = cache.snapshot()
        assert snap == {
            "size": 1, "maxsize": 8, "hits": 0, "misses": 0,
            "evictions": 0, "hit_rate": 0.0,
        }

    def test_clear_keeps_counters(self):
        cache = LeafPatternCache()
        key = LeafPatternCache.key(np.array([1]))
        cache.put(key, 0.5)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
