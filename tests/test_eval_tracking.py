"""Unit tests for the KS tracking callback."""

import numpy as np
import pytest

from repro.eval.tracking import KSTrackingCallback
from repro.models.logistic import LogisticModel


class TestKSTracking:
    def test_tracks_every_epoch(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs)
        theta = model.init_params(0)
        for epoch in range(4):
            value = callback(epoch, theta)
            assert value is not None
        assert len(callback.curve) == 4

    def test_every_n_epochs(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs, every=3)
        theta = model.init_params(0)
        values = [callback(e, theta) for e in range(7)]
        assert [v is not None for v in values] == [
            True, False, False, True, False, False, True
        ]

    def test_statistic_choice(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        theta = model.init_params(0)
        mean_cb = KSTrackingCallback(model, tiny_envs, statistic="mean")
        worst_cb = KSTrackingCallback(model, tiny_envs, statistic="worst")
        assert worst_cb(0, theta) <= mean_cb(0, theta)

    def test_best(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs)
        rng = np.random.default_rng(0)
        for epoch in range(5):
            callback(epoch, 0.1 * rng.standard_normal(
                tiny_envs[0].features.shape[1]))
        epoch, value = callback.best()
        assert value == max(v for _, v in callback.curve)

    def test_best_before_any_epoch_raises(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs)
        with pytest.raises(RuntimeError):
            callback.best()

    def test_invalid_args(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        with pytest.raises(ValueError):
            KSTrackingCallback(model, tiny_envs, statistic="median")
        with pytest.raises(ValueError):
            KSTrackingCallback(model, tiny_envs, every=0)

    def test_degenerate_envs_filtered(self, tiny_envs, rng):
        from repro.data.dataset import EnvironmentData

        degenerate = EnvironmentData(
            "deg", rng.standard_normal((10, tiny_envs[0].features.shape[1])),
            np.zeros(10)
        )
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, list(tiny_envs) + [degenerate])
        assert all(e.name != "deg" for e in callback.environments)

    def test_all_degenerate_raises(self, rng):
        from repro.data.dataset import EnvironmentData

        model = LogisticModel(4)
        degenerate = EnvironmentData("d", rng.standard_normal((10, 4)),
                                     np.zeros(10))
        with pytest.raises(ValueError):
            KSTrackingCallback(model, [degenerate])
