"""Unit tests for the quantile binner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbdt.binning import QuantileBinner


class TestFitTransform:
    def test_bins_are_within_range(self, rng):
        x = rng.standard_normal((500, 4))
        binner = QuantileBinner(max_bins=16)
        binned = binner.fit_transform(x)
        assert binned.dtype == np.uint8
        assert binned.min() >= 0
        for f in range(4):
            assert binned[:, f].max() < binner.n_bins(f)

    def test_monotone_in_raw_value(self, rng):
        """Larger raw values never get smaller bin indices."""
        x = rng.standard_normal((300, 1))
        binner = QuantileBinner(max_bins=32).fit(x)
        binned = binner.transform(x).ravel()
        order = np.argsort(x.ravel())
        assert np.all(np.diff(binned[order]) >= 0)

    def test_roughly_equal_occupancy(self, rng):
        x = rng.standard_normal((10_000, 1))
        binner = QuantileBinner(max_bins=10).fit(x)
        binned = binner.transform(x).ravel()
        counts = np.bincount(binned, minlength=binner.n_bins(0))
        assert counts.min() > 0.5 * counts.mean()

    def test_constant_column_single_bin(self):
        x = np.ones((50, 1))
        binner = QuantileBinner(max_bins=8).fit(x)
        assert binner.n_bins(0) == 1
        assert np.all(binner.transform(x) == 0)

    def test_unseen_extremes_clamp_to_edge_bins(self, rng):
        x = rng.standard_normal((200, 1))
        binner = QuantileBinner(max_bins=8).fit(x)
        extremes = np.array([[-100.0], [100.0]])
        binned = binner.transform(extremes).ravel()
        assert binned[0] == 0
        assert binned[1] == binner.n_bins(0) - 1

    def test_few_distinct_values_fewer_bins(self):
        x = np.array([[0.0], [1.0], [0.0], [1.0], [2.0]])
        binner = QuantileBinner(max_bins=64).fit(x)
        assert binner.n_bins(0) <= 3

    def test_bin_upper_value(self, rng):
        x = rng.standard_normal((100, 1))
        binner = QuantileBinner(max_bins=4).fit(x)
        last = binner.n_bins(0) - 1
        assert binner.bin_upper_value(0, last) == np.inf
        assert np.isfinite(binner.bin_upper_value(0, 0))


class TestValidation:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_wrong_column_count_raises(self, rng):
        binner = QuantileBinner().fit(rng.standard_normal((10, 3)))
        with pytest.raises(ValueError):
            binner.transform(rng.standard_normal((10, 4)))

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            QuantileBinner().fit(np.array([[np.nan]]))

    def test_bad_max_bins(self):
        with pytest.raises(ValueError):
            QuantileBinner(max_bins=1)
        with pytest.raises(ValueError):
            QuantileBinner(max_bins=500)

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            QuantileBinner().fit(np.zeros(5))


class TestBinningProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 32))
    def test_train_values_round_trip_order(self, seed, max_bins):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rng.integers(5, 200), 1))
        binner = QuantileBinner(max_bins=max_bins).fit(x)
        binned = binner.transform(x).ravel()
        values = x.ravel()
        # Same raw value -> same bin; order preserved.
        for i in range(len(values)):
            for j in range(i + 1, min(i + 5, len(values))):
                if values[i] < values[j]:
                    assert binned[i] <= binned[j]
                elif values[i] == values[j]:
                    assert binned[i] == binned[j]
