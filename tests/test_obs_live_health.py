"""Tests for the health state machine (repro.obs.live.health).

Covers rule classification, edge-triggered alert emission, hysteresis on
recovery, transition hooks, and — crucially — that every emitted event
passes the run-log schema v2 validation (alerts are validated at write
time by the tracer, so a malformed event would raise here, not in
production).
"""

import pytest

from repro.obs.live.health import (
    CRITICAL,
    DEFAULT_SERVING_RULES,
    DEGRADED,
    HEALTHY,
    HealthMonitor,
    HealthRule,
)
from repro.obs.runlog import ALERT_EVENT, HEALTH_TRANSITION_EVENT
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        self.t += 1.0
        return self.t


class RecordingTracer:
    """Validating in-memory tracer: events go through the real schema."""

    def __init__(self):
        self.events = []

    def event(self, name, **fields):
        from repro.obs.runlog import validate_record

        record = {"kind": "event", "name": name, "t_s": 0.0,
                  "span": None, "fields": fields}
        validate_record(record)
        self.events.append((name, fields))

    def named(self, name):
        return [fields for n, fields in self.events if n == name]


RULE = HealthRule("psi", warning=0.1, critical=0.25)


def make(rules=(RULE,), **kwargs):
    tracer = RecordingTracer()
    monitor = HealthMonitor(rules=rules, tracer=tracer, clock=FakeClock(),
                            **kwargs)
    return monitor, tracer


class TestHealthRule:
    def test_classify_bands(self):
        assert RULE.classify(0.05) == HEALTHY
        assert RULE.classify(0.1) == DEGRADED
        assert RULE.classify(0.2) == DEGRADED
        assert RULE.classify(0.25) == CRITICAL

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError, match="critical threshold"):
            HealthRule("x", warning=0.5, critical=0.1)

    def test_default_rules_cover_the_serving_signals(self):
        signals = {rule.signal for rule in DEFAULT_SERVING_RULES}
        assert signals == {"score_psi", "feature_psi", "mean_shift",
                           "slo_burn", "stale_workers"}


class TestStateMachine:
    def test_starts_healthy_and_stays_on_clean_polls(self):
        monitor, tracer = make()
        assert monitor.evaluate({"psi": 0.01}) == HEALTHY
        assert tracer.events == []

    def test_escalates_to_worst_rule(self):
        monitor, _ = make(rules=(RULE, HealthRule("burn", 1.0, 10.0)))
        state = monitor.evaluate({"psi": 0.15, "burn": 20.0})
        assert state == CRITICAL

    def test_missing_signal_does_not_vote(self):
        monitor, tracer = make()
        assert monitor.evaluate({}) == HEALTHY
        assert monitor.evaluate({"psi": None}) == HEALTHY
        assert tracer.events == []

    def test_recovery_requires_streak(self):
        monitor, _ = make(recovery_polls=3)
        monitor.evaluate({"psi": 0.3})
        assert monitor.state == CRITICAL
        monitor.evaluate({"psi": 0.01})
        monitor.evaluate({"psi": 0.01})
        assert monitor.state == CRITICAL        # 2 clean polls: not yet
        monitor.evaluate({"psi": 0.01})
        assert monitor.state == HEALTHY         # 3rd completes the streak

    def test_dirty_poll_resets_recovery_streak(self):
        monitor, _ = make(recovery_polls=2)
        monitor.evaluate({"psi": 0.3})
        monitor.evaluate({"psi": 0.01})
        monitor.evaluate({"psi": 0.3})          # breach again
        monitor.evaluate({"psi": 0.01})
        assert monitor.state == CRITICAL        # streak restarted
        monitor.evaluate({"psi": 0.01})
        assert monitor.state == HEALTHY

    def test_step_down_lands_on_evaluated_severity(self):
        monitor, _ = make(recovery_polls=1)
        monitor.evaluate({"psi": 0.3})
        monitor.evaluate({"psi": 0.15})         # still degraded, not clean
        assert monitor.state == DEGRADED

    def test_validates_construction(self):
        with pytest.raises(ValueError, match="one rule per"):
            HealthMonitor(rules=(RULE, RULE))
        with pytest.raises(ValueError, match="recovery_polls"):
            HealthMonitor(recovery_polls=0)


class TestAlerts:
    def test_alert_on_breach_onset_only(self):
        monitor, tracer = make()
        for _ in range(5):
            monitor.evaluate({"psi": 0.15})
        assert len(tracer.named(ALERT_EVENT)) == 1   # edge-triggered

    def test_alert_reemitted_on_escalation(self):
        monitor, tracer = make()
        monitor.evaluate({"psi": 0.15})
        monitor.evaluate({"psi": 0.30})
        alerts = tracer.named(ALERT_EVENT)
        assert [a["severity"] for a in alerts] == ["warning", "critical"]
        assert alerts[1]["threshold"] == 0.25

    def test_alert_refires_after_clear(self):
        monitor, tracer = make(recovery_polls=1)
        monitor.evaluate({"psi": 0.15})
        monitor.evaluate({"psi": 0.01})
        monitor.evaluate({"psi": 0.15})
        assert len(tracer.named(ALERT_EVENT)) == 2

    def test_alert_fields_are_schema_valid_and_complete(self):
        monitor, tracer = make()
        monitor.evaluate({"psi": 0.4},
                         detail={"psi": {"province": "Gansu"}})
        (alert,) = tracer.named(ALERT_EVENT)
        assert alert["monitor"] == "psi"
        assert alert["severity"] == "critical"
        assert alert["value"] == 0.4
        assert alert["threshold"] == 0.25
        assert alert["unix"] > 1000.0
        assert alert["province"] == "Gansu"     # detail merged in

    def test_counts_in_snapshot(self):
        monitor, tracer = make()
        monitor.evaluate({"psi": 0.15})
        snap = monitor.snapshot()
        assert snap["state"] == DEGRADED
        assert snap["active_breaches"] == {"psi": DEGRADED}
        assert snap["n_alerts"] == 1
        assert snap["n_transitions"] == 1


class TestTransitions:
    def test_transition_events_carry_reasons(self):
        monitor, tracer = make(recovery_polls=1)
        monitor.evaluate({"psi": 0.3})
        monitor.evaluate({"psi": 0.01})
        transitions = tracer.named(HEALTH_TRANSITION_EVENT)
        assert [(t["from_state"], t["to_state"]) for t in transitions] == [
            (HEALTHY, CRITICAL), (CRITICAL, HEALTHY)
        ]
        assert transitions[0]["reasons"] == ["psi"]
        assert transitions[1]["reasons"] == ["recovered"]

    def test_hooks_fire_after_event(self):
        monitor, _ = make()
        seen = []
        monitor.on_transition(
            lambda a, b, reasons: seen.append((a, b, reasons))
        )
        monitor.evaluate({"psi": 0.3})
        assert seen == [(HEALTHY, CRITICAL, ["psi"])]

    def test_events_round_trip_through_a_real_tracer(self, tmp_path):
        """End-to-end: emit through Tracer, read back via RunLogReader."""
        from repro.obs.runlog import RunLogReader

        path = tmp_path / "health.jsonl"
        tracer = Tracer(path=path)
        monitor = HealthMonitor(rules=(RULE,), tracer=tracer,
                                clock=FakeClock())
        monitor.evaluate({"psi": 0.4})
        tracer.close()
        run = RunLogReader.read(path)
        assert len(run.events(ALERT_EVENT)) == 1
        assert len(run.events(HEALTH_TRANSITION_EVENT)) == 1
