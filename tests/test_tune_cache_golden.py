"""Golden suite: cached-attach encodings vs fresh fit + leaf-encode.

The extractor-encoding cache is only admissible if attaching a published
pack reproduces, **byte for byte**, what a trial would have computed by
fitting the GBDT and leaf-encoding inline.  These tests pin that
contract directly at the array level (CSR data/indices/indptr and
labels, float64 and float32 inputs) and end-to-end at the leaderboard
level, including after LRU eviction forces a re-encode.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.data.dataset import EnvironmentData
from repro.gbdt import fit_extractor_encode
from repro.parallel.shared import (
    SharedArrayPack,
    environments_from_arrays,
    pack_train_test,
)
from repro.pipeline.extractor import default_gbdt_params
from repro.tune import (
    ASHAConfig,
    HPSpace,
    default_space,
    run_joint_asha,
    split_environments,
)
from repro.tune.space import EXTRACTOR_COMPONENT, Choice


def synthetic_environments(dtype, n_per_env=120, n_features=12, seed=5):
    rng = np.random.default_rng(seed)
    environments = []
    for name in ("zhejiang", "shandong", "gansu"):
        features = rng.normal(size=(n_per_env, n_features)).astype(dtype)
        logits = features[:, 0] - 0.5 * features[:, 1]
        labels = (logits + rng.normal(size=n_per_env) > 0).astype(np.int64)
        labels[:3] = [0, 1, 1]  # both classes in every environment
        environments.append(EnvironmentData(name, features, labels))
    return environments


def encode_split(environments, holdout_seed=0):
    """The pure pipeline both cache modes run: fit + encode, then split."""
    params = default_gbdt_params().replace_flat({"n_trees": 8})
    _, encoded, _ = fit_extractor_encode(
        params, environments, holdout_seed=holdout_seed
    )
    return split_environments(encoded, 0.25, seed=holdout_seed)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestByteIdentity:
    def test_attached_encoding_is_byte_identical(self, dtype):
        environments = synthetic_environments(dtype)
        fit_envs, valid_envs = encode_split(environments)
        pack = pack_train_test(fit_envs, valid_envs)
        try:
            attached = SharedArrayPack.attach(pack.spec)
            try:
                meta = pack.spec.metadata()
                arrays = attached.arrays()
                for fresh_list, prefix in ((fit_envs, "train"),
                                           (valid_envs, "test")):
                    cached_list = environments_from_arrays(
                        arrays, meta, prefix
                    )
                    assert len(cached_list) == len(fresh_list)
                    for fresh, cached in zip(fresh_list, cached_list):
                        assert cached.name == fresh.name
                        fresh_csr = fresh.features.tocsr()
                        cached_csr = cached.features.tocsr()
                        for attr in ("data", "indices", "indptr"):
                            fresh_arr = getattr(fresh_csr, attr)
                            cached_arr = getattr(cached_csr, attr)
                            assert cached_arr.dtype == fresh_arr.dtype
                            assert (cached_arr.tobytes()
                                    == fresh_arr.tobytes())
                        assert (cached.labels.tobytes()
                                == fresh.labels.tobytes())
            finally:
                attached.close()
        finally:
            pack.dispose()

    def test_fresh_encode_is_deterministic(self, dtype):
        """Sanity anchor: two inline encodes agree with themselves —
        otherwise byte-identity of the cache would be untestable."""
        environments = synthetic_environments(dtype)
        first_fit, _ = encode_split(environments)
        second_fit, _ = encode_split(environments)
        for a, b in zip(first_fit, second_fit):
            assert (a.features.tocsr().data.tobytes()
                    == b.features.tocsr().data.tobytes())


def joint_space():
    # A discrete extractor axis so distinct configurations repeat.
    extractor = HPSpace(EXTRACTOR_COMPONENT, {"n_trees": Choice((6, 10))})
    return HPSpace.joint(extractor, default_space("ERM"))


# Two rungs (budgets 4 and 8): rung 1 must look the encodings up again,
# which is what makes the eviction test actually re-encode.
SMALL = ASHAConfig(n_trials=4, eta=2, min_epochs=4, max_epochs=8, seed=3)


def projection(result):
    return [
        {k: v for k, v in trial.to_json().items()
         if k not in ("train_seconds", "search_cost")}
        for trial in result.ranked()
    ]


class TestEvictionUnderPressure:
    def test_eviction_re_encode_keeps_leaderboard_bit_identical(self):
        environments = synthetic_environments(np.float64)
        baseline, baseline_stats = run_joint_asha(
            joint_space(), environments, SMALL, n_extractors=2,
        )
        assert baseline_stats.evictions == 0
        # A 1-byte budget evicts every pack the moment its rung's leases
        # are released, so any later rung must re-encode from scratch.
        squeezed, squeezed_stats = run_joint_asha(
            joint_space(), environments, SMALL, n_extractors=2,
            cache_bytes=1,
        )
        assert squeezed_stats.evictions > 0
        assert projection(squeezed) == projection(baseline)

    def test_uncached_matches_cached(self):
        environments = synthetic_environments(np.float64)
        cached, stats = run_joint_asha(
            joint_space(), environments, SMALL, n_extractors=2,
        )
        uncached, no_stats = run_joint_asha(
            joint_space(), environments, SMALL, n_extractors=2,
            use_cache=False,
        )
        assert no_stats is None
        assert stats.hits > 0
        assert projection(cached) == projection(uncached)
