"""Unit tests for the feature schema."""

import pytest

from repro.data.schema import (
    VEHICLE_TYPES,
    CausalRole,
    FeatureBlock,
    LoanFeatureSchema,
    build_schema,
)


class TestBuildSchema:
    def test_total_width_honoured(self):
        schema = build_schema(total_features=60, n_spurious=8)
        assert schema.n_features == 60

    def test_paper_width(self):
        schema = build_schema(total_features=210, n_spurious=16)
        assert schema.n_features == 210

    def test_names_unique(self):
        schema = build_schema(60, 8)
        assert len(set(schema.names)) == schema.n_features

    def test_too_small_width_raises(self):
        with pytest.raises(ValueError):
            build_schema(total_features=10, n_spurious=8)

    def test_role_partition_covers_all_columns(self):
        schema = build_schema(60, 8)
        counted = sum(
            len(schema.columns_with_role(role)) for role in CausalRole
        )
        assert counted == schema.n_features

    def test_spurious_count(self):
        schema = build_schema(60, n_spurious=8)
        assert len(schema.columns_with_role(CausalRole.SPURIOUS)) == 8


class TestSchemaAccessors:
    def test_column_lookup(self):
        schema = build_schema(60, 8)
        idx = schema.column("debt_to_income")
        assert schema.specs[idx].name == "debt_to_income"
        assert schema.specs[idx].role is CausalRole.INVARIANT

    def test_unknown_column_raises(self):
        schema = build_schema(60, 8)
        with pytest.raises(KeyError):
            schema.column("nonexistent")

    def test_vehicle_indicator_columns_order(self):
        schema = build_schema(60, 8)
        cols = schema.vehicle_indicator_columns()
        assert len(cols) == len(VEHICLE_TYPES)
        for col, vehicle in zip(cols, VEHICLE_TYPES):
            spec = schema.specs[col]
            assert spec.name == f"vehicle_is_{vehicle}"
            assert spec.is_categorical_indicator
            assert spec.block is FeatureBlock.VEHICLE

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            LoanFeatureSchema(n_spurious=0, n_noise=3)
        with pytest.raises(ValueError):
            LoanFeatureSchema(n_spurious=2, n_noise=-1)
