"""Smoke tests for the tracked serving benchmark suite."""

import json

import pytest

from repro.perfbench.serving import (
    SERVING_BENCH_FORMAT,
    ServingBenchConfig,
    run_serving_suite,
    summarize_serving,
    validate_serving_payload,
    write_serving_bench_json,
)


@pytest.fixture(scope="module")
def smoke_results():
    """One smoke-sized suite run shared by every assertion below."""
    return run_serving_suite(ServingBenchConfig.smoke())


class TestServingSuite:
    def test_all_scenarios_present(self, smoke_results):
        assert set(smoke_results) == {"micro_batching", "cache_hot",
                                      "registry_load", "workers",
                                      "metrics_overhead"}

    def test_micro_batching_is_bit_identical(self, smoke_results):
        entry = smoke_results["micro_batching"]
        assert entry["bit_identical"] is True
        assert entry["micro_batched_s"] > 0
        assert entry["row_at_a_time_s"] > 0
        assert entry["speedup_batched_vs_rows"] > 0

    def test_cache_hot_is_bit_identical(self, smoke_results):
        entry = smoke_results["cache_hot"]
        assert entry["bit_identical"] is True
        assert 0 < entry["hit_rate"] <= 1

    def test_registry_load_timed(self, smoke_results):
        assert smoke_results["registry_load"]["median_s"] > 0

    def test_workers_sweep_is_bit_identical(self, smoke_results):
        entry = smoke_results["workers"]
        assert entry["bit_identical"] is True
        counts = ServingBenchConfig.smoke().worker_counts
        assert set(entry["per_workers"]) == {str(c) for c in counts}
        for row in entry["per_workers"].values():
            assert row["bit_identical"] is True
            assert row["rows_per_s"] > 0
            assert 0 < row["p50_ms"] <= row["p99_ms"]

    def test_metrics_overhead_gates(self, smoke_results):
        entry = smoke_results["metrics_overhead"]
        assert entry["bit_identical"] is True
        assert entry["within_budget"] is True
        assert entry["budget_pct"] == 2.0
        assert entry["plane_off_s"] > 0
        assert entry["plane_on_s"] > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_serving_suite(ServingBenchConfig.smoke(), only=["nope"])

    def test_written_payload_schema(self, smoke_results, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        config = ServingBenchConfig.smoke()
        payload = write_serving_bench_json(path, smoke_results, config)
        assert payload["format"] == SERVING_BENCH_FORMAT
        assert payload["config"]["n_train"] == config.n_train
        assert "machine" in payload
        assert json.loads(path.read_text()) == payload

    def test_summary_mentions_each_scenario(self, smoke_results):
        summary = summarize_serving(smoke_results)
        for name in ("micro_batching", "cache_hot", "registry_load",
                     "workers", "metrics_overhead"):
            assert name in summary


class TestPayloadValidation:
    def test_written_payload_validates_clean(self, smoke_results, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        payload = write_serving_bench_json(path, smoke_results,
                                           ServingBenchConfig.smoke())
        assert validate_serving_payload(payload) == []

    def test_corruptions_are_reported(self, smoke_results, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        payload = write_serving_bench_json(path, smoke_results,
                                           ServingBenchConfig.smoke())
        broken = json.loads(json.dumps(payload))  # deep copy
        broken["format"] = 99
        broken["benchmarks"]["workers"]["bit_identical"] = False
        del broken["benchmarks"]["micro_batching"]["bit_identical"]
        first = next(iter(broken["benchmarks"]["workers"]["per_workers"]))
        broken["benchmarks"]["workers"]["per_workers"][first]["p99_ms"] = 1e9
        broken["benchmarks"]["metrics_overhead"]["within_budget"] = False
        problems = validate_serving_payload(broken)
        assert any("format" in p for p in problems)
        assert any("aggregate bit_identical" in p for p in problems)
        assert any("micro_batching" in p for p in problems)
        assert any("p99_ms" in p and "sanity" in p for p in problems)
        assert any("metrics_overhead" in p and "budget" in p
                   for p in problems)
