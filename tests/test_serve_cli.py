"""End-to-end tests for the serving CLI commands (registry, serve-score)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_cli") / "platform.npz"
    assert main([
        "generate", "--n-samples", "4000", "--seed", "3",
        "--total-features", "40", "--out", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def registry_root(dataset_file, tmp_path_factory):
    """A registry with v0001 (champion) and v0002 (challenger)."""
    root = tmp_path_factory.mktemp("serve_cli") / "reg"
    assert main(["train", "--method", "ERM", "--data", str(dataset_file),
                 "--registry", str(root)]) == 0
    assert main(["train", "--method", "LightMIRM", "--data",
                 str(dataset_file), "--registry", str(root),
                 "--slot", "challenger"]) == 0
    return root


class TestTrainIntoRegistry:
    def test_versions_and_slots_on_disk(self, registry_root):
        index = json.loads((registry_root / "registry.json").read_text())
        assert set(index["versions"]) == {"v0001", "v0002"}
        assert index["slots"] == {"champion": "v0001",
                                  "challenger": "v0002"}


class TestRegistryCommand:
    def test_list_marks_slots(self, registry_root, capsys):
        assert main(["registry", "list", "--root", str(registry_root)]) == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "<- champion" in out
        assert "v0002" in out and "<- challenger" in out

    def test_show(self, registry_root, capsys):
        assert main(["registry", "show", "--root", str(registry_root),
                     "--version", "v0002"]) == 0
        out = capsys.readouterr().out
        assert "LightMIRM" in out
        assert "models/v0002.json" in out

    def test_show_requires_version(self, registry_root, capsys):
        assert main(["registry", "show",
                     "--root", str(registry_root)]) == 2

    def test_promote_and_rollback(self, dataset_file, tmp_path, capsys):
        root = tmp_path / "reg"
        main(["train", "--method", "ERM", "--data", str(dataset_file),
              "--registry", str(root)])
        main(["train", "--method", "ERM", "--data", str(dataset_file),
              "--registry", str(root)])
        assert main(["registry", "promote", "--root", str(root),
                     "--version", "v0002"]) == 0
        assert "promoted v0002 to champion" in capsys.readouterr().out
        assert main(["registry", "rollback", "--root", str(root)]) == 0
        assert "rolled back champion to v0001" in capsys.readouterr().out


class TestServeScore:
    def test_scores_through_service(self, registry_root, dataset_file,
                                    capsys):
        assert main(["serve-score", "--registry", str(registry_root),
                     "--data", str(dataset_file), "--limit", "200",
                     "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "scored 200 rows" in out
        assert "serving slot: challenger" in out
        assert "throughput" in out

    def test_cache_and_drift_guard_flags(self, registry_root, dataset_file,
                                         capsys):
        assert main(["serve-score", "--registry", str(registry_root),
                     "--data", str(dataset_file), "--limit", "200",
                     "--cache-size", "512", "--drift-threshold", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "scored 200 rows" in out
        assert "drift guard" in out


class TestServeRun:
    def test_multi_worker_stream(self, registry_root, dataset_file, capsys):
        assert main(["serve-run", "--registry", str(registry_root),
                     "--data", str(dataset_file), "--limit", "200",
                     "--workers", "2", "--batch-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "scored 200/200 rows" in out
        assert "across 2 workers" in out
        assert "p99" in out
        assert "admitted=200" in out

    def test_drift_guard_reported(self, registry_root, dataset_file,
                                  capsys):
        assert main(["serve-run", "--registry", str(registry_root),
                     "--data", str(dataset_file), "--limit", "200",
                     "--workers", "1", "--drift-threshold", "0.25"]) == 0
        assert "drift guard" in capsys.readouterr().out


class TestServeBenchCommand:
    def test_quick_run_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serving.json"
        assert main(["serve-bench", "--quick", "--only", "registry_load",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert "registry_load" in payload["benchmarks"]
        assert "registry_load" in capsys.readouterr().out

    def test_workers_flag_overrides_sweep(self, tmp_path, capsys):
        from repro.perfbench import validate_serving_payload

        out_path = tmp_path / "BENCH_serving.json"
        assert main(["serve-bench", "--quick", "--only", "workers",
                     "--workers", "1", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        entry = payload["benchmarks"]["workers"]
        assert list(entry["per_workers"]) == ["1"]
        assert entry["bit_identical"] is True
        assert validate_serving_payload(payload) == []
