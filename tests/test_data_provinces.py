"""Unit tests for the province registries."""

import pytest

from repro.data.provinces import (
    ProvinceProfile,
    ProvinceRegistry,
    default_registry,
    extended_registry,
)


class TestDefaultRegistry:
    def test_twelve_provinces(self):
        assert len(default_registry()) == 12

    def test_guangdong_dominates_and_collapses(self):
        registry = default_registry()
        guangdong = registry.get("Guangdong")
        assert guangdong.base_weight == max(p.base_weight for p in registry)
        assert guangdong.weight_for_year(2020) < 0.6 * guangdong.weight_for_year(2019)

    def test_xinjiang_underrepresented(self):
        registry = default_registry()
        xinjiang = registry.get("Xinjiang")
        assert xinjiang.base_weight == min(p.base_weight for p in registry)
        assert xinjiang.spurious_polarity < 0

    def test_hubei_covid_exposure(self):
        assert default_registry().get("Hubei").covid_exposure == 1.0
        others = [p for p in default_registry() if p.name != "Hubei"]
        assert all(p.covid_exposure == 0.0 for p in others)

    def test_noise_grows_as_weight_shrinks(self):
        """Underrepresented provinces have worse data quality."""
        registry = default_registry()
        small = [p for p in registry if p.base_weight < 3]
        large = [p for p in registry if p.base_weight > 10]
        assert min(p.noise_scale for p in small) > max(
            p.noise_scale for p in large
        )

    def test_weights_for_year_aligned(self):
        registry = default_registry()
        weights = registry.weights_for_year(2018)
        assert len(weights) == len(registry)
        assert all(w > 0 for w in weights)


class TestExtendedRegistry:
    def test_has_more_than_twenty_provinces(self):
        assert len(extended_registry()) == 26

    def test_contains_default_provinces(self):
        names = set(extended_registry().names)
        assert set(default_registry().names) <= names

    def test_no_duplicates(self):
        names = extended_registry().names
        assert len(set(names)) == len(names)


class TestRegistryOps:
    def test_subset_preserves_order(self):
        registry = default_registry()
        sub = registry.subset(["Hubei", "Guangdong"])
        assert sub.names == ("Guangdong", "Hubei")

    def test_subset_unknown_raises(self):
        with pytest.raises(KeyError):
            default_registry().subset(["Atlantis"])

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_registry().get("Atlantis")

    def test_contains(self):
        assert "Hubei" in default_registry()
        assert "Atlantis" not in default_registry()

    def test_empty_registry_raises(self):
        with pytest.raises(ValueError):
            ProvinceRegistry([])

    def test_duplicate_names_raise(self):
        p = ProvinceProfile("X", 1.0, 0.0, 0.5)
        with pytest.raises(ValueError):
            ProvinceRegistry([p, p])
