"""Tests for graceful degradation (repro.serve.degradation) end to end.

Three layers: the :class:`DriftGuard` latch itself, the fallback
*ordering* inside :class:`ScoringService` (a tripped guard suspends the
challenger before it can even fail; a challenger exception falls back to
the champion), and the interplay with the live health plane (the
front-end reports the guard's PSI as a health signal only after the
guard's own warm-up gate).
"""

import numpy as np
import pytest

from repro.monitor.streaming import StreamingPSI
from repro.serve.degradation import DriftGuard
from repro.serve.frontend import FrontendConfig, ScoringFrontend
from repro.serve.service import ScoringService, ServiceConfig


def make_guard(threshold=0.25, min_rows=50, n_features=4, seed=0):
    rng = np.random.default_rng(seed)
    baseline = rng.standard_normal((2000, n_features))
    stream = StreamingPSI.from_baseline(baseline, n_bins=10)
    return DriftGuard(stream, psi_threshold=threshold, min_rows=min_rows)


def steady_rows(n, n_features=4, seed=1):
    return np.random.default_rng(seed).standard_normal((n, n_features))


def drifted_rows(n, n_features=4, seed=2):
    return 5.0 + np.random.default_rng(seed).standard_normal((n, n_features))


class FailingModel:
    """A challenger whose scoring always raises (deploy gone wrong)."""

    n_features = 4

    def predict_proba(self, rows):
        raise RuntimeError("challenger artifact corrupt")


class ConstantModel:
    """Champion stand-in with a recognisable constant output."""

    n_features = 4

    def __init__(self, value):
        self.value = value

    def predict_proba(self, rows):
        return np.full(len(rows), self.value)


class TestDriftGuard:
    def test_no_trip_before_min_rows(self):
        guard = make_guard(min_rows=500)
        decision = guard.observe(drifted_rows(100))
        assert not decision.tripped      # drifted, but window too small

    def test_trips_and_latches_on_drift(self):
        guard = make_guard(min_rows=50)
        decision = guard.observe(drifted_rows(100))
        assert decision.tripped
        assert decision.max_psi > 0.25
        # Latches: steady traffic afterwards does not un-trip it.
        guard.stream.reset()
        decision = guard.observe(steady_rows(100))
        assert decision.tripped

    def test_steady_traffic_never_trips(self):
        guard = make_guard(min_rows=50)
        decision = guard.observe(steady_rows(400))
        assert not decision.tripped
        assert decision.max_psi < 0.1

    def test_reset_trip_unlatches_and_restarts_window(self):
        guard = make_guard(min_rows=50)
        guard.observe(drifted_rows(100))
        guard.reset_trip()
        assert not guard.tripped
        assert guard.stream.n_rows_seen == 0
        assert not guard.observe(steady_rows(100)).tripped

    def test_snapshot_carries_guard_and_stream_state(self):
        guard = make_guard()
        guard.observe(steady_rows(400))
        snap = guard.snapshot()
        assert snap["tripped"] is False
        assert snap["psi_threshold"] == 0.25
        assert snap["min_rows"] == 50
        assert snap["n_rows_seen"] == 400
        assert "max_psi" in snap

    def test_validates_construction(self):
        with pytest.raises(ValueError, match="psi_threshold"):
            make_guard(threshold=0.0)
        with pytest.raises(ValueError, match="min_rows"):
            make_guard(min_rows=0)


class TestFallbackOrdering:
    """Who scores a batch, in priority order, and who gets blamed."""

    def _service(self, challenger, guard=None):
        return ScoringService(
            ConstantModel(0.25),
            challenger=challenger,
            config=ServiceConfig(use_challenger=True, cache_size=0),
            drift_guard=guard,
        )

    def test_healthy_challenger_scores(self):
        service = self._service(ConstantModel(0.75), make_guard())
        scores = service.score_batch(steady_rows(8))
        np.testing.assert_array_equal(scores, np.full(8, 0.75))
        assert service.telemetry.fallbacks == {}

    def test_tripped_guard_suspends_challenger_before_it_runs(self):
        # The challenger RAISES if invoked: a tripped guard must route to
        # the champion without ever calling it (ordering, not luck).
        guard = make_guard(min_rows=50)
        guard.observe(drifted_rows(100))
        service = self._service(FailingModel(), guard)
        scores = service.score_batch(steady_rows(8))
        np.testing.assert_array_equal(scores, np.full(8, 0.25))
        assert service.telemetry.fallbacks == {"drift_guard": 1}

    def test_challenger_error_falls_back_to_champion(self):
        service = self._service(FailingModel())
        scores = service.score_batch(steady_rows(8))
        np.testing.assert_array_equal(scores, np.full(8, 0.25))
        assert service.telemetry.fallbacks == {"challenger_error": 1}

    def test_recovery_after_guard_reset(self):
        guard = make_guard(min_rows=50)
        guard.observe(drifted_rows(100))
        service = self._service(ConstantModel(0.75), guard)
        np.testing.assert_array_equal(
            service.score_batch(steady_rows(4)), np.full(4, 0.25)
        )
        guard.reset_trip()
        np.testing.assert_array_equal(
            service.score_batch(steady_rows(4)), np.full(4, 0.75)
        )
        # Exactly the one pre-reset batch fell back.
        assert service.telemetry.fallbacks == {"drift_guard": 1}


class TestGuardHealthInterplay:
    """The front-end reports guard PSI as a health signal, gated on warm-up."""

    def _frontend(self, guard, scoring_model):
        from repro.obs.live.health import HealthMonitor

        # Never started: we are testing the signal plumbing, which runs
        # on the parent side only.
        return ScoringFrontend(
            scoring_model,
            FrontendConfig(n_workers=1),
            drift_guard=guard,
            health_monitor=HealthMonitor(recovery_polls=1),
        )

    def test_no_feature_psi_signal_before_min_rows(self, scoring_model):
        guard = make_guard(min_rows=500)
        guard.observe(drifted_rows(50))   # sparse window: PSI is noise
        frontend = self._frontend(guard, scoring_model)
        frontend._evaluate_health()
        assert frontend.health_monitor.state == "healthy"
        assert "feature_psi" not in frontend.health_monitor.snapshot()[
            "active_breaches"]

    def test_drifted_guard_drives_health_critical(self, scoring_model):
        guard = make_guard(min_rows=50)
        guard.observe(drifted_rows(100))
        frontend = self._frontend(guard, scoring_model)
        frontend._evaluate_health()
        snap = frontend.health_monitor.snapshot()
        assert snap["state"] == "critical"
        assert snap["active_breaches"]["feature_psi"] == "critical"

    def test_health_recovers_after_guard_reset(self, scoring_model):
        guard = make_guard(min_rows=50)
        guard.observe(drifted_rows(100))
        frontend = self._frontend(guard, scoring_model)
        frontend._evaluate_health()
        assert frontend.health_monitor.state == "critical"
        guard.reset_trip()
        # Enough steady rows that the quantile-bin PSI estimate settles
        # below the 0.1 warning band (small windows are noisy).
        guard.observe(steady_rows(500))
        frontend._evaluate_health()
        assert frontend.health_monitor.state == "healthy"
