"""Unit tests for the gradient/hessian histogram builder."""

import numpy as np
import pytest

from repro.gbdt.histogram import NodeHistogram, build_histogram


@pytest.fixture()
def toy():
    binned = np.array(
        [[0, 1], [1, 1], [2, 0], [0, 2], [1, 0]], dtype=np.uint8
    )
    gradients = np.array([0.5, -0.2, 0.3, 0.1, -0.4])
    hessians = np.array([0.25, 0.16, 0.21, 0.09, 0.24])
    return binned, gradients, hessians


class TestBuildHistogram:
    def test_totals_match_sums(self, toy):
        binned, g, h = toy
        rows = np.arange(5)
        hist = build_histogram(binned, g, h, rows, max_bins=4)
        assert hist.total_grad == pytest.approx(g.sum())
        assert hist.total_hess == pytest.approx(h.sum())
        assert hist.total_count == 5

    def test_per_bin_values(self, toy):
        binned, g, h = toy
        hist = build_histogram(binned, g, h, np.arange(5), max_bins=4)
        # Feature 0, bin 0 holds rows 0 and 3.
        assert hist.grad[0, 0] == pytest.approx(g[0] + g[3])
        assert hist.hess[0, 0] == pytest.approx(h[0] + h[3])
        assert hist.count[0, 0] == 2
        # Feature 1, bin 1 holds rows 0 and 1.
        assert hist.grad[1, 1] == pytest.approx(g[0] + g[1])

    def test_subset_of_rows(self, toy):
        binned, g, h = toy
        hist = build_histogram(binned, g, h, np.array([1, 2]), max_bins=4)
        assert hist.total_count == 2
        assert hist.total_grad == pytest.approx(g[1] + g[2])

    def test_every_feature_row_sums_to_total(self, toy):
        binned, g, h = toy
        hist = build_histogram(binned, g, h, np.arange(5), max_bins=4)
        for f in range(binned.shape[1]):
            assert hist.grad[f].sum() == pytest.approx(hist.total_grad)
            assert hist.count[f].sum() == hist.total_count


class TestSubtraction:
    def test_sibling_subtraction_identity(self, toy):
        binned, g, h = toy
        parent = build_histogram(binned, g, h, np.arange(5), max_bins=4)
        left_rows = np.array([0, 3])
        right_rows = np.array([1, 2, 4])
        left = build_histogram(binned, g, h, left_rows, max_bins=4)
        right_direct = build_histogram(binned, g, h, right_rows, max_bins=4)
        right_subtracted = parent.subtract(left)
        np.testing.assert_allclose(right_subtracted.grad, right_direct.grad)
        np.testing.assert_allclose(right_subtracted.hess, right_direct.hess)
        np.testing.assert_allclose(right_subtracted.count, right_direct.count)
