"""Tests for serving telemetry (repro.serve.telemetry)."""

import pytest

from repro.serve.telemetry import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    ServingTelemetry,
)


class TestLatencyHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        assert list(hist.counts) == [1, 2, 1, 1]   # last = overflow
        assert hist.count == 5

    def test_boundary_value_goes_to_lower_bucket(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01))
        hist.observe(0.001)   # le_0.001 is inclusive
        assert hist.counts[0] == 1

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        hist.observe(0.1)
        hist.observe(0.3)
        assert hist.mean_seconds == pytest.approx(0.2)

    def test_percentile_is_conservative_upper_bound(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            hist.observe(0.0005)
        hist.observe(0.05)
        assert hist.percentile(50) == 0.001
        assert hist.percentile(100) == 0.1

    def test_percentile_empty_is_zero(self):
        assert LatencyHistogram().percentile(95) == 0.0

    def test_percentile_validates_q(self):
        hist = LatencyHistogram()
        for q in (0, -1, 101):
            with pytest.raises(ValueError):
                hist.percentile(q)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-1e-9)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())

    def test_snapshot_schema(self):
        hist = LatencyHistogram()
        hist.observe(0.002)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert set(snap) == {"count", "mean_s", "p50_s", "p95_s", "p99_s",
                             "buckets"}
        assert len(snap["buckets"]) == len(DEFAULT_BUCKETS) + 1
        assert sum(snap["buckets"].values()) == 1


class TestServingTelemetry:
    def test_batch_accounting_and_throughput(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(100, 0.5)
        telemetry.record_batch(300, 0.5)
        assert telemetry.rows_scored == 400
        assert telemetry.batches == 2
        assert telemetry.throughput_rows_per_s == pytest.approx(400.0)

    def test_throughput_zero_before_traffic(self):
        assert ServingTelemetry().throughput_rows_per_s == 0.0

    def test_fallbacks_counted_by_reason(self):
        telemetry = ServingTelemetry()
        telemetry.record_fallback("challenger_error")
        telemetry.record_fallback("challenger_error")
        telemetry.record_fallback("drift_guard")
        assert telemetry.fallbacks == {"challenger_error": 2,
                                       "drift_guard": 1}

    def test_snapshot_schema(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(10, 0.01)
        telemetry.record_request(0.001)
        telemetry.record_cache(hits=3, misses=7)
        snap = telemetry.snapshot()
        assert set(snap) == {
            "rows_scored", "batches", "requests", "throughput_rows_per_s",
            "fallbacks", "cache", "batch_latency", "request_latency",
        }
        assert snap["cache"] == {"hits": 3, "misses": 7}
        assert snap["batch_latency"]["count"] == 1
        assert snap["request_latency"]["count"] == 1

    def test_summary_mentions_headline_numbers(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(42, 0.01)
        telemetry.record_fallback("drift_guard")
        telemetry.record_cache(hits=1, misses=1)
        summary = telemetry.summary()
        assert "rows scored     42" in summary
        assert "drift_guard=1" in summary
        assert "cache hit rate  50.0%" in summary
