"""Tests for serving telemetry (repro.serve.telemetry)."""

import bisect

import numpy as np
import pytest

from repro.obs.metrics import Histogram
from repro.serve.telemetry import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    ServingTelemetry,
)


class TestLatencyHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        assert list(hist.counts) == [1, 2, 1, 1]   # last = overflow
        assert hist.count == 5

    def test_boundary_value_goes_to_lower_bucket(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01))
        hist.observe(0.001)   # le_0.001 is inclusive
        assert hist.counts[0] == 1

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        hist.observe(0.1)
        hist.observe(0.3)
        assert hist.mean_seconds == pytest.approx(0.2)

    def test_percentile_is_conservative_upper_bound(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            hist.observe(0.0005)
        hist.observe(0.05)
        assert hist.percentile(50) == 0.001
        assert hist.percentile(100) == 0.1

    def test_percentile_empty_is_zero(self):
        assert LatencyHistogram().percentile(95) == 0.0

    def test_percentile_validates_q(self):
        hist = LatencyHistogram()
        for q in (0, -1, 101):
            with pytest.raises(ValueError):
                hist.percentile(q)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-1e-9)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())

    def test_snapshot_schema(self):
        hist = LatencyHistogram()
        hist.observe(0.002)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert set(snap) == {"count", "mean_s", "p50_s", "p95_s", "p99_s",
                             "buckets"}
        assert len(snap["buckets"]) == len(DEFAULT_BUCKETS) + 1
        assert sum(snap["buckets"].values()) == 1


class _ReferenceLatencyHistogram:
    """The pre-refactor standalone implementation, kept as the oracle.

    :class:`LatencyHistogram` is now a subclass of the shared
    :class:`repro.obs.metrics.Histogram`; this reference pins the exact
    bucketing, mean and percentile semantics (and the snapshot schema)
    the serving docs promise, independent of the shared code path.
    """

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.total_seconds = 0.0

    def observe(self, seconds):
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.total_seconds += seconds

    @property
    def count(self):
        return int(self.counts.sum())

    def percentile(self, q):
        n = self.count
        if n == 0:
            return 0.0
        rank = int(np.ceil(q / 100.0 * n))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self.bounds[min(bucket, len(self.bounds) - 1)]

    def snapshot(self):
        n = self.count
        return {
            "count": n,
            "mean_s": self.total_seconds / n if n else 0.0,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "buckets": {
                f"le_{bound:g}": int(c)
                for bound, c in zip(self.bounds, self.counts)
            } | {"overflow": int(self.counts[-1])},
        }


class TestSharedHistogramEquivalence:
    """LatencyHistogram == the seed implementation, observation for
    observation, on the shared-Histogram code path."""

    def test_is_a_shared_histogram(self):
        assert issubclass(LatencyHistogram, Histogram)

    def test_snapshot_byte_compatible_on_random_stream(self):
        rng = np.random.default_rng(42)
        # Latencies spanning every bucket, plus exact bucket boundaries
        # and overflow values.
        stream = np.concatenate([
            10 ** rng.uniform(-6, 1.5, size=500),
            np.array(DEFAULT_BUCKETS),
            np.array([0.0, 15.0, 100.0]),
        ])
        ours = LatencyHistogram()
        reference = _ReferenceLatencyHistogram()
        for seconds in stream:
            ours.observe(float(seconds))
            reference.observe(float(seconds))
        assert ours.snapshot() == reference.snapshot()
        assert ours.count == reference.count
        assert ours.total_seconds == pytest.approx(
            reference.total_seconds
        )
        assert list(ours.counts) == list(reference.counts)

    def test_snapshot_byte_compatible_on_custom_buckets(self):
        buckets = (0.001, 0.01, 0.1, 1.0)
        ours = LatencyHistogram(buckets=buckets)
        reference = _ReferenceLatencyHistogram(buckets=buckets)
        for seconds in (0.0005, 0.001, 0.0011, 0.5, 2.0):
            ours.observe(seconds)
            reference.observe(seconds)
        assert ours.snapshot() == reference.snapshot()

    def test_empty_snapshots_match(self):
        assert (LatencyHistogram().snapshot()
                == _ReferenceLatencyHistogram().snapshot())

    def test_total_seconds_alias_tracks_shared_total(self):
        hist = LatencyHistogram()
        hist.observe(0.25)
        assert hist.total_seconds == hist.total == 0.25


class TestServingTelemetry:
    def test_batch_accounting_and_throughput(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(100, 0.5)
        telemetry.record_batch(300, 0.5)
        assert telemetry.rows_scored == 400
        assert telemetry.batches == 2
        assert telemetry.throughput_rows_per_s == pytest.approx(400.0)

    def test_throughput_zero_before_traffic(self):
        assert ServingTelemetry().throughput_rows_per_s == 0.0

    def test_fallbacks_counted_by_reason(self):
        telemetry = ServingTelemetry()
        telemetry.record_fallback("challenger_error")
        telemetry.record_fallback("challenger_error")
        telemetry.record_fallback("drift_guard")
        assert telemetry.fallbacks == {"challenger_error": 2,
                                       "drift_guard": 1}

    def test_snapshot_schema(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(10, 0.01)
        telemetry.record_request(0.001)
        telemetry.record_cache(hits=3, misses=7)
        snap = telemetry.snapshot()
        assert set(snap) == {
            "rows_scored", "batches", "requests", "throughput_rows_per_s",
            "fallbacks", "cache", "batch_latency", "request_latency",
        }
        assert snap["cache"] == {"hits": 3, "misses": 7}
        assert snap["batch_latency"]["count"] == 1
        assert snap["request_latency"]["count"] == 1

    def test_summary_mentions_headline_numbers(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(42, 0.01)
        telemetry.record_fallback("drift_guard")
        telemetry.record_cache(hits=1, misses=1)
        summary = telemetry.summary()
        assert "rows scored     42" in summary
        assert "drift_guard=1" in summary
        assert "cache hit rate  50.0%" in summary


class TestFrontendTelemetryConcurrency:
    """FrontendTelemetry is written from two threads (caller + collector).

    ``x += 1`` is not atomic in CPython; without the internal mutex these
    loops visibly lose increments.  The acceptance criterion for the live
    plane is EXACT aggregation, so the regression test demands equality,
    not approximation.
    """

    def test_no_lost_increments_under_contention(self):
        import threading

        from repro.serve.telemetry import FrontendTelemetry

        telemetry = FrontendTelemetry()
        per_thread, n_threads = 5000, 8

        def hammer():
            for _ in range(per_thread):
                telemetry.record_admitted()
                telemetry.record_shed()
                telemetry.record_request(0.001)

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = per_thread * n_threads
        assert telemetry.admitted == expected
        assert telemetry.shed == expected
        assert telemetry.request_latency.count == expected

    def test_snapshot_consistent_while_writers_run(self):
        import threading

        from repro.serve.telemetry import FrontendTelemetry

        telemetry = FrontendTelemetry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                telemetry.record_admitted()
                telemetry.record_request(0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                snap = telemetry.snapshot()
                # Resolution never outruns admission in a snapshot.
                assert snap["request_latency"]["count"] <= snap["admitted"]
        finally:
            stop.set()
            thread.join()
