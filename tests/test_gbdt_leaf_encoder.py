"""Unit tests for the leaf one-hot encoder (the GBDT+LR bridge)."""

import numpy as np
import pytest
from scipy import sparse

from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.leaf_encoder import LeafIndexEncoder


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((500, 4))
    logit = x[:, 0] - 0.5 * x[:, 1]
    y = (rng.random(500) < 1 / (1 + np.exp(-logit))).astype(float)
    model = GBDTClassifier(GBDTParams(n_trees=6)).fit(x, y)
    return model, x


class TestTransform:
    def test_output_is_csr(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x)
        assert sparse.issparse(out)
        assert out.shape == (500, encoder.n_output_features)

    def test_exactly_one_hot_per_tree(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x)
        row_sums = np.asarray(out.sum(axis=1)).ravel()
        np.testing.assert_array_equal(row_sums, encoder.n_trees)
        assert out.data.max() == 1.0

    def test_block_structure(self, fitted):
        """Each tree's indicator lands in its own column block."""
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x).toarray()
        offsets = np.concatenate(([0], np.cumsum(model.leaves_per_tree())))
        for t in range(encoder.n_trees):
            block = out[:, offsets[t]:offsets[t + 1]]
            np.testing.assert_array_equal(block.sum(axis=1), 1.0)

    def test_consistent_with_predict_leaves(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        leaves = model.predict_leaves(x)
        out = encoder.transform(x)
        rebuilt = encoder.encode_leaves(leaves)
        assert (out != rebuilt).nnz == 0

    def test_column_origin_round_trip(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        offsets = np.concatenate(([0], np.cumsum(model.leaves_per_tree())))
        for col in (0, encoder.n_output_features - 1,
                    encoder.n_output_features // 2):
            tree, leaf = encoder.column_origin(col)
            assert offsets[tree] + leaf == col

    def test_out_of_range_column_origin_raises(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        with pytest.raises(IndexError):
            encoder.column_origin(encoder.n_output_features)


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            LeafIndexEncoder(GBDTClassifier())

    def test_bad_leaf_matrix_shape(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        with pytest.raises(ValueError):
            encoder.encode_leaves(np.zeros((3, encoder.n_trees + 1), dtype=int))

    def test_out_of_range_leaf_raises(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        bad = np.zeros((1, encoder.n_trees), dtype=int)
        bad[0, 0] = 10_000
        with pytest.raises(ValueError):
            encoder.encode_leaves(bad)


class TestIndexDtype:
    """int32 CSR indices where ranges allow (scipy's native dtype)."""

    def test_small_matrices_use_int32(self, fitted):
        model, x = fitted
        out = LeafIndexEncoder(model).transform(x)
        assert out.indices.dtype == np.int32
        assert out.indptr.dtype == np.int32

    def test_leaf_matrix_output_is_int32(self, fitted):
        model, x = fitted
        leaves = model.predict_leaves(x)
        assert leaves.dtype == np.int32

    def test_int32_product_matches_int64_reference(self, fitted):
        from repro.gbdt.leaf_encoder import encode_leaf_matrix

        model, x = fitted
        encoder = LeafIndexEncoder(model)
        leaves = model.predict_leaves(x)
        offsets = np.concatenate(([0], np.cumsum(model.leaves_per_tree())))
        narrow = encoder.encode_leaves(leaves)

        # Hand-built int64 CSR with the same structure.
        indices = (leaves.astype(np.int64)
                   + offsets[:-1][None, :]).ravel()
        indptr = np.arange(leaves.shape[0] + 1, dtype=np.int64) * leaves.shape[1]
        wide = sparse.csr_matrix(
            (np.ones(indices.size, dtype=np.float32), indices, indptr),
            shape=narrow.shape,
        )
        rng = np.random.default_rng(3)
        theta = rng.standard_normal(narrow.shape[1])
        np.testing.assert_array_equal(narrow @ theta, wide @ theta)
        assert (narrow != wide).nnz == 0

    def test_int64_when_ranges_demand_it(self):
        from repro.gbdt.leaf_encoder import encode_leaf_matrix

        # Fake offsets whose final column count exceeds int32.
        offsets = np.array([0, 2**31 + 8], dtype=np.int64)
        leaf_matrix = np.zeros((4, 1), dtype=np.int64)
        out = encode_leaf_matrix(leaf_matrix, offsets)
        assert out.indices.dtype == np.int64

    def test_encode_leaves_accepts_int32_without_upcast(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        leaves32 = model.predict_leaves(x)
        leaves64 = leaves32.astype(np.int64)
        a = encoder.encode_leaves(leaves32)
        b = encoder.encode_leaves(leaves64)
        assert (a != b).nnz == 0
