"""Unit tests for the leaf one-hot encoder (the GBDT+LR bridge)."""

import numpy as np
import pytest
from scipy import sparse

from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.leaf_encoder import LeafIndexEncoder


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((500, 4))
    logit = x[:, 0] - 0.5 * x[:, 1]
    y = (rng.random(500) < 1 / (1 + np.exp(-logit))).astype(float)
    model = GBDTClassifier(GBDTParams(n_trees=6)).fit(x, y)
    return model, x


class TestTransform:
    def test_output_is_csr(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x)
        assert sparse.issparse(out)
        assert out.shape == (500, encoder.n_output_features)

    def test_exactly_one_hot_per_tree(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x)
        row_sums = np.asarray(out.sum(axis=1)).ravel()
        np.testing.assert_array_equal(row_sums, encoder.n_trees)
        assert out.data.max() == 1.0

    def test_block_structure(self, fitted):
        """Each tree's indicator lands in its own column block."""
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        out = encoder.transform(x).toarray()
        offsets = np.concatenate(([0], np.cumsum(model.leaves_per_tree())))
        for t in range(encoder.n_trees):
            block = out[:, offsets[t]:offsets[t + 1]]
            np.testing.assert_array_equal(block.sum(axis=1), 1.0)

    def test_consistent_with_predict_leaves(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        leaves = model.predict_leaves(x)
        out = encoder.transform(x)
        rebuilt = encoder.encode_leaves(leaves)
        assert (out != rebuilt).nnz == 0

    def test_column_origin_round_trip(self, fitted):
        model, x = fitted
        encoder = LeafIndexEncoder(model)
        offsets = np.concatenate(([0], np.cumsum(model.leaves_per_tree())))
        for col in (0, encoder.n_output_features - 1,
                    encoder.n_output_features // 2):
            tree, leaf = encoder.column_origin(col)
            assert offsets[tree] + leaf == col

    def test_out_of_range_column_origin_raises(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        with pytest.raises(IndexError):
            encoder.column_origin(encoder.n_output_features)


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            LeafIndexEncoder(GBDTClassifier())

    def test_bad_leaf_matrix_shape(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        with pytest.raises(ValueError):
            encoder.encode_leaves(np.zeros((3, encoder.n_trees + 1), dtype=int))

    def test_out_of_range_leaf_raises(self, fitted):
        model, _ = fitted
        encoder = LeafIndexEncoder(model)
        bad = np.zeros((1, encoder.n_trees), dtype=int)
        bad[0, 0] = 10_000
        with pytest.raises(ValueError):
            encoder.encode_leaves(bad)
