"""Unit tests for the typed HPSpace API and its parameter descriptors."""

import numpy as np
import pytest

from repro.train.registry import make_trainer, trainer_names
from repro.tune import (
    Choice,
    HPSpace,
    IntRange,
    LogUniform,
    SpaceError,
    Uniform,
    default_space,
    register_space,
)
from repro.tune.space import config_class_for

ALL_TRAINERS = [info.name for info in trainer_names()]


class TestDescriptors:
    def test_uniform_bounds(self, rng):
        spec = Uniform(0.25, 0.75)
        values = [spec.sample(rng) for _ in range(50)]
        assert all(0.25 <= v <= 0.75 for v in values)
        assert all(isinstance(v, float) for v in values)

    def test_uniform_rejects_empty_interval(self):
        with pytest.raises(SpaceError, match="low < high"):
            Uniform(1.0, 1.0)

    def test_loguniform_bounds(self, rng):
        spec = LogUniform(1e-4, 1e-1)
        values = [spec.sample(rng) for _ in range(50)]
        assert all(1e-4 <= v <= 1e-1 for v in values)

    def test_loguniform_rejects_nonpositive_low(self):
        with pytest.raises(SpaceError, match="low > 0"):
            LogUniform(0.0, 1.0)

    def test_loguniform_spans_decades(self, rng):
        # The point of log sampling: both ends of a 3-decade range show up.
        spec = LogUniform(1e-3, 1.0)
        values = [spec.sample(rng) for _ in range(200)]
        assert min(values) < 1e-2 and max(values) > 1e-1

    def test_choice(self, rng):
        spec = Choice(("a", "b"))
        assert spec.sample(rng) in ("a", "b")
        assert spec.contains("a") and not spec.contains("c")
        assert spec.grid_values() == ("a", "b")

    def test_choice_coerces_sequences(self):
        assert Choice([1, 2]).values == (1, 2)

    def test_choice_rejects_empty(self):
        with pytest.raises(SpaceError, match="at least one"):
            Choice(())

    def test_intrange(self, rng):
        spec = IntRange(2, 5)
        values = [spec.sample(rng) for _ in range(50)]
        assert all(isinstance(v, int) and 2 <= v <= 5 for v in values)
        assert spec.grid_values() == (2, 3, 4, 5)
        assert spec.contains(3) and not spec.contains(6)
        assert not spec.contains(True)  # bools are not valid ints here

    def test_intrange_rejects_inverted(self):
        with pytest.raises(SpaceError, match="low <= high"):
            IntRange(5, 2)

    def test_continuous_has_no_grid(self):
        with pytest.raises(SpaceError, match="continuous"):
            Uniform(0.0, 1.0).grid_values()

    def test_to_json(self):
        assert Uniform(0.0, 1.0).to_json()["kind"] == "uniform"
        assert LogUniform(0.1, 1.0).to_json()["kind"] == "loguniform"
        assert Choice((1,)).to_json() == {"kind": "choice", "values": [1]}
        assert IntRange(1, 3).to_json()["kind"] == "intrange"


class TestHPSpace:
    def test_sample_in_sorted_order(self, rng):
        space = HPSpace("ERM", {
            "learning_rate": LogUniform(0.1, 1.0),
            "l2": LogUniform(1e-5, 1e-1),
        })
        params = space.sample(rng)
        assert list(params) == ["l2", "learning_rate"]
        assert space.contains(params)

    def test_sample_deterministic_per_stream(self):
        space = default_space("LightMIRM")
        a = space.sample(np.random.default_rng(42))
        b = space.sample(np.random.default_rng(42))
        assert a == b

    def test_unknown_param_lists_valid_fields(self):
        with pytest.raises(SpaceError, match="valid fields") as excinfo:
            HPSpace("ERM", {"leaning_rate": Uniform(0.0, 1.0)})
        assert "learning_rate" in str(excinfo.value)

    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_unknown_param_rejected_for_every_trainer(self, trainer):
        with pytest.raises(SpaceError, match="unknown parameter"):
            HPSpace(trainer, {"definitely_not_a_field": Uniform(0.0, 1.0)})

    @pytest.mark.parametrize("reserved", ["seed", "n_epochs"])
    def test_reserved_fields_rejected(self, reserved):
        with pytest.raises(SpaceError, match="reserved"):
            HPSpace("ERM", {reserved: IntRange(1, 5)})

    def test_non_spec_value_rejected(self):
        with pytest.raises(SpaceError, match="ParamSpec"):
            HPSpace("ERM", {"learning_rate": [0.1, 0.2]})

    def test_empty_space_rejected(self):
        with pytest.raises(SpaceError, match="at least one"):
            HPSpace("ERM", {})

    def test_unknown_trainer_rejected(self):
        with pytest.raises(KeyError):
            HPSpace("LightFIRM", {"learning_rate": Uniform(0.0, 1.0)})

    def test_unbound_space_skips_validation(self):
        space = HPSpace(None, {"whatever": Choice((1, 2))})
        assert space.grid_points() == [{"whatever": 1}, {"whatever": 2}]

    def test_grid_classmethod_and_points(self):
        space = HPSpace.grid("ERM", {"learning_rate": [0.1, 0.5],
                                     "l2": [1e-4]})
        points = space.grid_points()
        assert points == [
            {"l2": 1e-4, "learning_rate": 0.1},
            {"l2": 1e-4, "learning_rate": 0.5},
        ]

    def test_contains_rejects_missing_and_out_of_range(self):
        space = HPSpace("ERM", {"learning_rate": Uniform(0.1, 0.5)})
        assert not space.contains({})
        assert not space.contains({"learning_rate": 0.9})
        assert space.contains({"learning_rate": 0.3})

    def test_to_json_round_trip_names(self):
        space = default_space("LightMIRM")
        payload = space.to_json()
        assert payload["trainer"] == "LightMIRM"
        assert list(payload["params"]) == space.names()


class TestDefaultSpaces:
    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_registered_for_every_trainer(self, trainer):
        space = default_space(trainer)
        assert space.trainer == trainer

    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_samples_build_real_trainers(self, trainer, rng):
        # Every sampled configuration must be constructible through the
        # registry — the contract run_asha relies on.
        params = default_space(trainer).sample(rng)
        trainer_obj = make_trainer(trainer, seed=0, n_epochs=2, **params)
        assert trainer_obj.name == trainer

    def test_alias_resolution(self):
        assert default_space("lightmirm").trainer == "LightMIRM"
        assert default_space("meta-IRM(5)").trainer == "meta-IRM"

    def test_config_class_for_matches_registry(self):
        for info in trainer_names():
            assert config_class_for(info.name).__name__ == info.config_class

    def test_register_space_overrides(self):
        original = default_space("ERM")
        try:
            replacement = HPSpace("ERM", {"l2": LogUniform(1e-6, 1e-2)})
            register_space("ERM", replacement)
            assert default_space("erm") is replacement
        finally:
            register_space("ERM", original)
