"""Tests for the metamorphic/property harness itself.

The harness assertions are trusted by the rest of the suite, so these tests
check both directions: they hold on correct implementations, and they *fail*
on deliberately broken ones (an assertion that can't fail verifies nothing).
"""

import numpy as np
import pytest

from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.train.registry import make_trainer
from repro.verify.harness import (
    assert_deterministic,
    assert_environment_permutation_invariant,
    assert_label_flip_symmetry,
    assert_monotone_transform_invariant,
    assert_persist_round_trip,
    monotone_transforms,
    random_environments,
    random_labels_and_scores,
)


class TestGenerators:
    def test_labels_have_both_classes(self, rng):
        for _ in range(20):
            y, s = random_labels_and_scores(rng, n=10)
            assert 0 < y.sum() < y.size
            assert np.all(np.isfinite(s))

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            random_labels_and_scores(rng, n=1)

    def test_random_environments_shape(self, rng):
        envs = random_environments(rng, n_envs=4, n_per_env=30, n_features=6)
        assert len(envs) == 4
        for env in envs:
            assert env.features.shape == (30, 6)
            assert 0 < env.labels.sum() < 30

    def test_transforms_strictly_increasing(self, rng):
        _, s = random_labels_and_scores(rng, n=200)
        s = np.unique(s)
        for name, transform in monotone_transforms():
            out = transform(s)
            assert np.all(np.diff(out) > 0), f"{name} not strictly increasing"


class TestMetricAssertions:
    def test_rank_metrics_pass(self, rng):
        for _ in range(10):
            y, s = random_labels_and_scores(rng)
            assert_monotone_transform_invariant(ks_score, y, s)
            assert_monotone_transform_invariant(auc_score, y, s)
            assert_label_flip_symmetry(y, s)

    def test_non_rank_metric_caught(self, rng):
        """A metric depending on score magnitudes must trip the assertion."""
        y, s = random_labels_and_scores(rng)

        def mean_score(labels, scores):
            return float(np.mean(scores))

        with pytest.raises(AssertionError, match="monotone transform"):
            assert_monotone_transform_invariant(mean_score, y, s)

    def test_broken_flip_symmetry_caught(self, rng, monkeypatch):
        """If AUC ignored the flip, the symmetry assertion must fire."""
        y, s = random_labels_and_scores(rng)
        import repro.verify.harness as harness_module

        monkeypatch.setattr(
            harness_module, "auc_score", lambda labels, scores: 0.75
        )
        with pytest.raises(AssertionError, match="label-flip"):
            assert_label_flip_symmetry(y, s)


#: Trainers whose objective is a symmetric function of the environment set.
ORDER_INSENSITIVE = (
    "ERM", "Up Sampling", "Group DRO", "V-REx", "IRMv1", "meta-IRM",
)


class TestTrainerAssertions:
    @pytest.mark.parametrize("name", ORDER_INSENSITIVE)
    def test_environment_permutation_invariance(self, name, rng):
        envs = random_environments(rng)
        assert_environment_permutation_invariant(
            lambda: make_trainer(name, n_epochs=8),
            envs,
            np.random.default_rng(1),
        )

    def test_order_sensitive_trainer_caught(self, rng):
        """LightMIRM samples partners by index, so permuting environments
        legitimately changes the fit — the assertion must detect that."""
        envs = random_environments(rng)
        with pytest.raises(AssertionError, match="permutation"):
            assert_environment_permutation_invariant(
                lambda: make_trainer("LightMIRM", n_epochs=8),
                envs,
                np.random.default_rng(1),
            )

    def test_determinism_assertion_passes(self, rng):
        envs = random_environments(rng)
        assert_deterministic(lambda: make_trainer("ERM", n_epochs=5), envs)

    def test_seed_dependence_caught(self, rng):
        """Feeding it fits with different seeds must raise."""
        envs = random_environments(rng)
        seeds = iter((0, 1))
        with pytest.raises(AssertionError):
            assert_deterministic(
                lambda: make_trainer("ERM", n_epochs=5, seed=next(seeds)),
                envs,
            )


class TestPersistAssertion:
    def test_round_trip_passes(self, small_split, tmp_path):
        pipeline = LoanDefaultPipeline(make_trainer("ERM", n_epochs=10))
        pipeline.fit(small_split.train)
        assert_persist_round_trip(
            pipeline, small_split.test, tmp_path / "model.json"
        )
