"""Failure-injection tests: malformed inputs must fail loudly and early."""

import json

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.data.dataset import EnvironmentData
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.train.base import BaseTrainConfig


class TestNaNAndInfInputs:
    def test_gbdt_rejects_nan_features(self, rng):
        x = rng.standard_normal((50, 3))
        x[3, 1] = np.nan
        y = rng.integers(0, 2, 50).astype(float)
        with pytest.raises(ValueError, match="finite"):
            GBDTClassifier(GBDTParams(n_trees=2)).fit(x, y)

    def test_gbdt_rejects_inf_at_predict(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 2, 100).astype(float)
        y[:2] = [0, 1]
        model = GBDTClassifier(GBDTParams(n_trees=2)).fit(x, y)
        bad = x.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            model.predict_proba(bad)

    def test_metrics_reject_nan_scores(self, rng):
        from repro.metrics.auc import auc_score

        y = np.array([0.0, 1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            auc_score(y, np.array([0.1, np.nan, 0.3, 0.4]))


class TestDegenerateEnvironments:
    def test_single_class_environment_trains_without_crash(self, rng):
        """A province with zero defaults must not break training (it is
        skipped at evaluation time instead)."""
        envs = [
            EnvironmentData("ok", rng.standard_normal((80, 4)),
                            rng.integers(0, 2, 80).astype(float)),
            EnvironmentData("no_defaults", rng.standard_normal((40, 4)),
                            np.zeros(40)),
        ]
        envs[0].labels.setflags(write=True)
        envs[0].labels[:2] = [0, 1]
        for trainer in (
            ERMTrainer(BaseTrainConfig(n_epochs=5)),
            MetaIRMTrainer(MetaIRMConfig(n_epochs=5)),
            LightMIRMTrainer(LightMIRMConfig(n_epochs=5)),
        ):
            result = trainer.fit(envs)
            assert np.isfinite(result.theta).all()

    def test_one_row_environment(self, rng):
        envs = [
            EnvironmentData("big", rng.standard_normal((80, 4)),
                            rng.integers(0, 2, 80).astype(float)),
            EnvironmentData("one", rng.standard_normal((1, 4)),
                            np.ones(1)),
        ]
        result = LightMIRMTrainer(LightMIRMConfig(n_epochs=3)).fit(envs)
        assert np.isfinite(result.theta).all()


class TestCorruptedArtifacts:
    def test_truncated_json_raises(self, small_split, tmp_path):
        from repro.persist import save_pipeline, load_pipeline
        from repro.pipeline.pipeline import LoanDefaultPipeline

        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=2)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        path.write_text(path.read_text()[:100])
        with pytest.raises(json.JSONDecodeError):
            load_pipeline(path)

    def test_theta_dimension_mismatch_detected(self, small_split, tmp_path):
        from repro.persist import load_pipeline, save_pipeline
        from repro.pipeline.pipeline import LoanDefaultPipeline

        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=2)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        payload = json.loads(path.read_text())
        payload["theta"] = payload["theta"][:-3]  # corrupt the head
        path.write_text(json.dumps(payload))
        scorer = load_pipeline(path)
        with pytest.raises(ValueError):
            scorer.predict_proba(small_split.test.features[:5])


class TestExtractorMisuse:
    def test_transform_wrong_width(self, fitted_extractor, rng):
        from repro.data.generator import GeneratorConfig, LoanDataGenerator

        other = LoanDataGenerator(
            GeneratorConfig(n_samples=300, total_features=60, seed=1)
        ).generate()
        with pytest.raises(ValueError):
            fitted_extractor.transform(other)

    def test_head_theta_wrong_dim(self, fitted_extractor, train_envs):
        from repro.models.logistic import LogisticModel

        model = LogisticModel(fitted_extractor.n_output_features)
        with pytest.raises(ValueError):
            model.predict_proba(
                np.zeros(3), train_envs[0].features
            )


class TestCLIFailures:
    def test_missing_data_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(["train", "--method", "ERM",
                  "--data", str(tmp_path / "absent.npz")])

    def test_unknown_method(self, tmp_path):
        from repro.cli import main
        from repro.data.generator import GeneratorConfig, LoanDataGenerator

        path = tmp_path / "d.npz"
        LoanDataGenerator(GeneratorConfig.small(seed=0)).generate().save(path)
        with pytest.raises(KeyError):
            main(["train", "--method", "XGBoost", "--data", str(path)])
