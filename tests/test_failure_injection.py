"""Failure-injection tests: malformed inputs must fail loudly and early."""

import json

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.data.dataset import EnvironmentData
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.train.base import BaseTrainConfig


class TestNaNAndInfInputs:
    def test_gbdt_rejects_nan_features(self, rng):
        x = rng.standard_normal((50, 3))
        x[3, 1] = np.nan
        y = rng.integers(0, 2, 50).astype(float)
        with pytest.raises(ValueError, match="finite"):
            GBDTClassifier(GBDTParams(n_trees=2)).fit(x, y)

    def test_gbdt_rejects_inf_at_predict(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 2, 100).astype(float)
        y[:2] = [0, 1]
        model = GBDTClassifier(GBDTParams(n_trees=2)).fit(x, y)
        bad = x.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            model.predict_proba(bad)

    def test_metrics_reject_nan_scores(self, rng):
        from repro.metrics.auc import auc_score

        y = np.array([0.0, 1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            auc_score(y, np.array([0.1, np.nan, 0.3, 0.4]))


class TestDegenerateEnvironments:
    def test_single_class_environment_trains_without_crash(self, rng):
        """A province with zero defaults must not break training (it is
        skipped at evaluation time instead)."""
        envs = [
            EnvironmentData("ok", rng.standard_normal((80, 4)),
                            rng.integers(0, 2, 80).astype(float)),
            EnvironmentData("no_defaults", rng.standard_normal((40, 4)),
                            np.zeros(40)),
        ]
        envs[0].labels.setflags(write=True)
        envs[0].labels[:2] = [0, 1]
        for trainer in (
            ERMTrainer(BaseTrainConfig(n_epochs=5)),
            MetaIRMTrainer(MetaIRMConfig(n_epochs=5)),
            LightMIRMTrainer(LightMIRMConfig(n_epochs=5)),
        ):
            result = trainer.fit(envs)
            assert np.isfinite(result.theta).all()

    def test_one_row_environment(self, rng):
        envs = [
            EnvironmentData("big", rng.standard_normal((80, 4)),
                            rng.integers(0, 2, 80).astype(float)),
            EnvironmentData("one", rng.standard_normal((1, 4)),
                            np.ones(1)),
        ]
        result = LightMIRMTrainer(LightMIRMConfig(n_epochs=3)).fit(envs)
        assert np.isfinite(result.theta).all()


class TestCorruptedArtifacts:
    def test_truncated_json_raises(self, small_split, tmp_path):
        from repro.persist import save_pipeline, load_pipeline
        from repro.pipeline.pipeline import LoanDefaultPipeline

        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=2)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        path.write_text(path.read_text()[:100])
        with pytest.raises(json.JSONDecodeError):
            load_pipeline(path)

    def test_theta_dimension_mismatch_detected(self, small_split, tmp_path):
        from repro.persist import load_pipeline, save_pipeline
        from repro.pipeline.pipeline import LoanDefaultPipeline

        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=2)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        payload = json.loads(path.read_text())
        payload["theta"] = payload["theta"][:-3]  # corrupt the head
        path.write_text(json.dumps(payload))
        scorer = load_pipeline(path)
        with pytest.raises(ValueError):
            scorer.predict_proba(small_split.test.features[:5])


class TestExtractorMisuse:
    def test_transform_wrong_width(self, fitted_extractor, rng):
        from repro.data.generator import GeneratorConfig, LoanDataGenerator

        other = LoanDataGenerator(
            GeneratorConfig(n_samples=300, total_features=60, seed=1)
        ).generate()
        with pytest.raises(ValueError):
            fitted_extractor.transform(other)

    def test_head_theta_wrong_dim(self, fitted_extractor, train_envs):
        from repro.models.logistic import LogisticModel

        model = LogisticModel(fitted_extractor.n_output_features)
        with pytest.raises(ValueError):
            model.predict_proba(
                np.zeros(3), train_envs[0].features
            )


def _fake_report(ks: float, auc: float = 0.9):
    """A minimal FairnessReport with a chosen mean KS/AUC."""
    from repro.metrics.fairness import EnvironmentScores, FairnessReport

    return FairnessReport(per_environment={
        "P": EnvironmentScores("P", ks, auc, 100, 30),
    })


class TestServingLifecycleFaults:
    """Every failure inside the drift-recovery loop must abort cleanly:
    the champion slot is untouched, the outcome names the failing stage,
    and the report carries the error context."""

    @pytest.fixture()
    def seeded_registry(self, tmp_path, fitted_pipeline):
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "registry")
        registry.save(fitted_pipeline, metadata={"run": "seed"})
        return registry

    @pytest.fixture()
    def tiny_retrain(self):
        from repro.serve.lifecycle import RetrainConfig

        return RetrainConfig(
            trainer="ERM",
            trainer_overrides={"n_epochs": 2},
            gbdt={"n_trees": 4, "max_bins": 16},
            tree={"max_leaves": 4, "min_child_samples": 5},
        )

    def test_challenger_eval_failure_aborts_promotion(
            self, tmp_path, seeded_registry, tiny_retrain, small_split):
        from repro.serve.lifecycle import LifecycleController

        def broken_eval(model, dataset):
            raise RuntimeError("eval exploded")

        controller = LifecycleController(
            seeded_registry, holdout=small_split.test, retrain=tiny_retrain,
            evaluate_fn=broken_eval, workdir=tmp_path / "work",
        )
        report = controller.run_recovery(small_split.train)

        assert report["outcome"] == "eval_failed"
        assert "eval exploded" in report["error"]
        assert report["stages"][-1] == "aborted"
        # Champion untouched; the failed challenger is parked, not serving.
        assert seeded_registry.slots()["champion"] == "v0001"

    def test_retrain_failure_leaves_registry_untouched(
            self, tmp_path, seeded_registry, small_split):
        from repro.serve.lifecycle import LifecycleController, RetrainConfig

        controller = LifecycleController(
            seeded_registry, holdout=small_split.test,
            retrain=RetrainConfig(trainer="definitely-not-a-trainer"),
            workdir=tmp_path / "work",
        )
        report = controller.run_recovery(small_split.train)

        assert report["outcome"] == "retrain_failed"
        assert report["stages"] == ["drift_detected", "retraining",
                                    "aborted"]
        # No challenger was ever registered.
        assert [v.version for v in seeded_registry.versions()] == ["v0001"]
        assert seeded_registry.slots()["champion"] == "v0001"

    def test_gates_failure_parks_challenger_without_promoting(
            self, tmp_path, seeded_registry, tiny_retrain, small_split):
        from repro.serve.lifecycle import LifecycleController, PromotionGates

        controller = LifecycleController(
            seeded_registry, holdout=small_split.test, retrain=tiny_retrain,
            gates=PromotionGates(min_mean_ks=2.0),  # unsatisfiable
            workdir=tmp_path / "work",
        )
        report = controller.run_recovery(small_split.train)

        assert report["outcome"] == "gates_failed"
        assert not report["gates"]["passed"]
        assert "below floor" in report["gates"]["reason"]
        slots = seeded_registry.slots()
        assert slots["champion"] == "v0001"
        assert slots["challenger"] == report["challenger_version"] == "v0002"

    def test_post_promote_regression_rolls_back(
            self, tmp_path, seeded_registry, tiny_retrain, small_split):
        from repro.serve.lifecycle import LifecycleController

        calls = {"n": 0}

        def flaky_eval(model, dataset):
            # Challenger looks great, champion baseline is fine, but the
            # post-promotion re-check collapses: the loop must roll back.
            calls["n"] += 1
            if calls["n"] == 1:
                return _fake_report(ks=0.8)
            if calls["n"] == 2:
                return _fake_report(ks=0.5)
            return _fake_report(ks=0.1)

        controller = LifecycleController(
            seeded_registry, holdout=small_split.test, retrain=tiny_retrain,
            evaluate_fn=flaky_eval, workdir=tmp_path / "work",
        )
        report = controller.run_recovery(small_split.train)

        assert report["outcome"] == "rolled_back"
        assert report["stages"][-1] == "rolled_back"
        assert report["restored_version"] == "v0001"
        assert seeded_registry.slots()["champion"] == "v0001"


class TestCLIFailures:
    def test_missing_data_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(["train", "--method", "ERM",
                  "--data", str(tmp_path / "absent.npz")])

    def test_unknown_method(self, tmp_path):
        from repro.cli import main
        from repro.data.generator import GeneratorConfig, LoanDataGenerator

        path = tmp_path / "d.npz"
        LoanDataGenerator(GeneratorConfig.small(seed=0)).generate().save(path)
        with pytest.raises(KeyError):
            main(["train", "--method", "XGBoost", "--data", str(path)])
