"""Unit tests for the trainer base plumbing."""

import numpy as np
import pytest
from scipy import sparse

from repro.baselines.erm import ERMTrainer
from repro.data.dataset import EnvironmentData
from repro.train.base import BaseTrainConfig, stack_environments


class TestConfigValidation:
    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            BaseTrainConfig(n_epochs=0)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            BaseTrainConfig(learning_rate=0)

    def test_bad_l2(self):
        with pytest.raises(ValueError):
            BaseTrainConfig(l2=-0.1)


class TestFitValidation:
    def test_empty_environment_list(self):
        with pytest.raises(ValueError, match="at least one"):
            ERMTrainer(BaseTrainConfig(n_epochs=1)).fit([])

    def test_dimension_mismatch(self, rng):
        envs = [
            EnvironmentData("a", rng.standard_normal((10, 3)),
                            np.ones(10)),
            EnvironmentData("b", rng.standard_normal((10, 4)),
                            np.ones(10)),
        ]
        with pytest.raises(ValueError, match="feature dim"):
            ERMTrainer(BaseTrainConfig(n_epochs=1)).fit(envs)

    def test_empty_environment_rejected(self, rng):
        envs = [
            EnvironmentData("a", rng.standard_normal((10, 3)), np.ones(10)),
            EnvironmentData("b", np.zeros((0, 3)), np.zeros(0)),
        ]
        with pytest.raises(ValueError, match="empty"):
            ERMTrainer(BaseTrainConfig(n_epochs=1)).fit(envs)


class TestStackEnvironments:
    def test_dense_stack(self, rng):
        envs = [
            EnvironmentData("a", rng.standard_normal((4, 3)), np.zeros(4)),
            EnvironmentData("b", rng.standard_normal((6, 3)), np.ones(6)),
        ]
        x, y = stack_environments(envs)
        assert x.shape == (10, 3)
        np.testing.assert_array_equal(y, [0] * 4 + [1] * 6)

    def test_sparse_stack(self, rng):
        envs = [
            EnvironmentData("a", sparse.csr_matrix(np.eye(3)), np.zeros(3)),
            EnvironmentData("b", sparse.csr_matrix(np.eye(3)), np.ones(3)),
        ]
        x, y = stack_environments(envs)
        assert sparse.issparse(x)
        assert x.shape == (6, 3)


class TestTrainResult:
    def test_timer_attached(self, tiny_envs):
        from repro.timing import StepTimer

        timer = StepTimer(enabled=True)
        result = ERMTrainer(BaseTrainConfig(n_epochs=3)).fit(
            tiny_envs, timer=timer
        )
        assert result.timer is timer
        assert len(timer.epoch_seconds) == 3

    def test_disabled_timer_default(self, tiny_envs):
        result = ERMTrainer(BaseTrainConfig(n_epochs=2)).fit(tiny_envs)
        assert not result.timer.enabled
