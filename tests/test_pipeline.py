"""Integration tests for the GBDT+LR pipeline and the feature extractor."""

import numpy as np
import pytest
from scipy import sparse

from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
from repro.core.config import LightMIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.gbdt.boosting import GBDTParams
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.train.base import BaseTrainConfig


class TestExtractor:
    def test_fit_and_transform(self, small_split, fitted_extractor):
        encoded = fitted_extractor.transform(small_split.test)
        assert sparse.issparse(encoded)
        assert encoded.shape == (
            small_split.test.n_samples,
            fitted_extractor.n_output_features,
        )

    def test_environments_cover_all_rows(self, small_split, fitted_extractor):
        envs = fitted_extractor.encode_environments(small_split.train)
        assert sum(e.n_samples for e in envs) == small_split.train.n_samples
        assert [e.name for e in envs] == sorted(e.name for e in envs)

    def test_unfitted_raises(self, small_split):
        extractor = GBDTFeatureExtractor()
        with pytest.raises(RuntimeError):
            extractor.transform(small_split.test)


class TestPipelineFit:
    def test_fit_evaluate_erm(self, small_split, fitted_extractor):
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=30)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        report = pipeline.evaluate(small_split.test)
        assert 0 < report.mean_ks <= 1
        assert report.worst_ks <= report.mean_ks

    def test_predict_proba_shape_and_range(self, small_split,
                                           fitted_extractor):
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=10)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        probs = pipeline.predict_proba(small_split.test)
        assert probs.shape == (small_split.test.n_samples,)
        assert np.all((probs > 0) & (probs < 1))

    def test_lightmirm_pipeline_end_to_end(self, small_split,
                                           fitted_extractor):
        pipeline = LoanDefaultPipeline(
            LightMIRMTrainer(LightMIRMConfig(n_epochs=20)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        report = pipeline.evaluate(small_split.test)
        assert report.mean_ks > 0.2  # clearly better than chance

    def test_finetune_pipeline_uses_env_thetas(self, small_split,
                                               fitted_extractor):
        pipeline = LoanDefaultPipeline(
            FineTuneTrainer(FineTuneConfig(n_epochs=20)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        probs = pipeline.predict_proba(small_split.test)
        assert probs.shape == (small_split.test.n_samples,)

    def test_own_gbdt_params(self, small_split):
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=5)),
            gbdt_params=GBDTParams(n_trees=5, learning_rate=0.2),
        )
        pipeline.fit(small_split.train)
        assert pipeline.gbdt_.n_trees_fitted <= 5

    def test_params_and_extractor_conflict(self, fitted_extractor):
        with pytest.raises(ValueError):
            LoanDefaultPipeline(
                ERMTrainer(BaseTrainConfig(n_epochs=1)),
                gbdt_params=GBDTParams(n_trees=2),
                extractor=fitted_extractor,
            )

    def test_unfitted_pipeline_raises(self, small_split):
        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=1)))
        with pytest.raises(RuntimeError):
            pipeline.evaluate(small_split.test)

    def test_refit_without_reset_raises(self, small_split, fitted_extractor):
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=2)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        with pytest.raises(RuntimeError, match="already fitted"):
            pipeline.fit(small_split.train)

    def test_reset_allows_deliberate_refit(self, small_split,
                                           fitted_extractor):
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=2)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        first = pipeline.predict_proba(small_split.test)
        assert pipeline.reset() is pipeline
        assert not pipeline.is_fitted
        assert pipeline.extractor.is_fitted   # extraction stage survives
        pipeline.fit(small_split.train)
        np.testing.assert_array_equal(
            pipeline.predict_proba(small_split.test), first
        )

    def test_timer_records_transform_step(self, small_split,
                                          fitted_extractor):
        from repro.timing import StepTimer

        timer = StepTimer(enabled=True)
        pipeline = LoanDefaultPipeline(
            ERMTrainer(BaseTrainConfig(n_epochs=2)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train, timer=timer)
        assert "transforming_format" in timer.stats
