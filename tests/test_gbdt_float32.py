"""The opt-in float32 hot path: golden-tolerance vs float64, dtype plumbing."""

import dataclasses

import numpy as np
import pytest

from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.metrics import auc_score, ks_score
from repro.perfbench.scale import (
    AUC_TOLERANCE,
    KS_TOLERANCE,
    dtype_tolerance_check,
    ScaleBenchConfig,
)


@pytest.fixture(scope="module")
def problem(small_split):
    return small_split.train, small_split.test


def _fit(train, dtype, **overrides):
    params = GBDTParams(n_trees=8, max_bins=32, dtype=dtype, **overrides)
    return GBDTClassifier(params).fit(train.features, train.labels)


class TestOptIn:
    def test_default_is_float64(self):
        assert GBDTParams().dtype == "float64"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            GBDTParams(dtype="float16")

    def test_float64_path_unchanged_by_dtype_plumbing(self, problem):
        """Explicit float64 must equal the default bit for bit."""
        train, test = problem
        explicit = _fit(train, "float64")
        default = GBDTClassifier(
            GBDTParams(n_trees=8, max_bins=32)
        ).fit(train.features, train.labels)
        np.testing.assert_array_equal(
            explicit.predict_proba(test.features),
            default.predict_proba(test.features),
        )


class TestGoldenTolerance:
    def test_metrics_within_documented_tolerance(self, problem):
        train, test = problem
        scores = {
            dtype: _fit(train, dtype).predict_proba(test.features)
            for dtype in ("float64", "float32")
        }
        auc_delta = abs(auc_score(test.labels, scores["float64"])
                        - auc_score(test.labels, scores["float32"]))
        ks_delta = abs(ks_score(test.labels, scores["float64"])
                       - ks_score(test.labels, scores["float32"]))
        assert auc_delta <= AUC_TOLERANCE
        assert ks_delta <= KS_TOLERANCE

    def test_train_loss_trajectories_close(self, problem):
        train, _ = problem
        m64 = _fit(train, "float64")
        m32 = _fit(train, "float32")
        np.testing.assert_allclose(m64.train_losses_, m32.train_losses_,
                                   atol=5e-2)

    def test_tolerance_check_helper(self):
        config = ScaleBenchConfig.smoke()
        config = dataclasses.replace(config, row_counts=(4_000,))
        report = dtype_tolerance_check(config)
        assert report["passed"]
        assert report["auc_delta"] <= report["auc_tolerance"]
        assert set(report["float32"]) == {"auc", "ks"}


class TestDtypePlumbing:
    def test_float32_leaf_values_and_histograms(self, problem):
        train, _ = problem
        model = _fit(train, "float32")
        for tree in model.trees_:
            assert tree.flat.value.dtype == np.float32

    def test_float64_leaf_values_by_default(self, problem):
        train, _ = problem
        model = _fit(train, "float64")
        for tree in model.trees_:
            assert tree.flat.value.dtype == np.float64

    def test_predictions_are_finite_and_probabilistic(self, problem):
        train, test = problem
        proba = _fit(train, "float32").predict_proba(test.features)
        assert np.isfinite(proba).all()
        assert ((proba > 0) & (proba < 1)).all()

    def test_histogram_builder_validates_dtype(self, rng):
        from repro.gbdt.histogram import HistogramBuilder

        binned = rng.integers(0, 8, size=(64, 3)).astype(np.uint8)
        with pytest.raises(ValueError):
            HistogramBuilder(binned, 8, hist_dtype=np.int32)


class TestFitBinned:
    def test_matches_fit_on_same_binned_matrix(self, problem):
        train, test = problem
        reference = _fit(train, "float64")
        binned = reference.binner.transform(train.features)

        model = GBDTClassifier(GBDTParams(n_trees=8, max_bins=32))
        model.fit_binned(binned, train.labels, reference.binner)
        np.testing.assert_array_equal(
            model.predict_proba(test.features),
            reference.predict_proba(test.features),
        )

    def test_supports_early_stopping_on_binned_validation(self, problem):
        train, test = problem
        seed_model = _fit(train, "float64")
        train_binned = seed_model.binner.transform(train.features)
        valid_binned = seed_model.binner.transform(test.features)

        params = GBDTParams(n_trees=30, max_bins=32,
                            early_stopping_rounds=3)
        model = GBDTClassifier(params).fit_binned(
            train_binned, train.labels, seed_model.binner,
            valid_binned=valid_binned, valid_labels=test.labels,
        )
        assert model.is_fitted
        assert len(model.valid_losses_) == model.n_trees_fitted

    def test_rejects_unfitted_or_mismatched_binner(self, problem, rng):
        from repro.gbdt.binning import QuantileBinner

        train, _ = problem
        fitted = _fit(train, "float64")
        binned = fitted.binner.transform(train.features)

        model = GBDTClassifier(GBDTParams(n_trees=2, max_bins=32))
        with pytest.raises(ValueError, match="fitted"):
            model.fit_binned(binned, train.labels, QuantileBinner(32))
        with pytest.raises(ValueError, match="max_bins"):
            wrong = GBDTClassifier(GBDTParams(n_trees=2, max_bins=16))
            wrong.fit_binned(binned, train.labels, fitted.binner)
        with pytest.raises(ValueError, match="uint8"):
            model.fit_binned(binned.astype(np.int64), train.labels,
                             fitted.binner)
