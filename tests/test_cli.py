"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.data.dataset import LoanDataset


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    """A small platform saved to disk once for all CLI tests."""
    path = tmp_path_factory.mktemp("cli") / "platform.npz"
    code = main([
        "generate", "--n-samples", "5000", "--seed", "3",
        "--total-features", "40", "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_every_experiment_id_parseable(self):
        parser = build_parser()
        for key in EXPERIMENTS:
            args = parser.parse_args(["experiment", key])
            assert args.id == key

    def test_scale_bench_args(self):
        args = build_parser().parse_args([
            "scale-bench", "--smoke", "--rows", "20000", "50000",
            "--dtype", "float64", "--chunk-rows", "4096",
            "--no-isolate", "--out", "b.json", "--save-model", "m.json",
        ])
        assert args.smoke is True
        assert args.rows == [20000, 50000]
        assert args.dtype == "float64"
        assert args.chunk_rows == 4096
        assert args.no_isolate is True
        assert args.save_model == "m.json"

    def test_scale_bench_rejects_bad_dtype(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale-bench", "--dtype", "float16"])

    def test_serve_bench_accepts_model(self):
        args = build_parser().parse_args(
            ["serve-bench", "--quick", "--model", "m.json"]
        )
        assert args.model == "m.json"


class TestGenerate:
    def test_round_trip(self, dataset_file):
        dataset = LoanDataset.load(dataset_file)
        assert dataset.n_samples == 5000
        assert dataset.n_features == 40

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        for out in (a, b):
            main(["generate", "--n-samples", "1000", "--seed", "9",
                  "--total-features", "40", "--out", str(out)])
        da, db = LoanDataset.load(a), LoanDataset.load(b)
        np.testing.assert_array_equal(da.features, db.features)


class TestTrainEvaluate:
    def test_train_prints_metrics(self, dataset_file, capsys):
        code = main(["train", "--method", "ERM", "--data", str(dataset_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "mKS=" in out
        assert "worst province" in out

    def test_train_save_then_evaluate(self, dataset_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        code = main([
            "train", "--method", "LightMIRM", "--data", str(dataset_file),
            "--out", str(model_path),
        ])
        assert code == 0
        assert model_path.exists()
        code = main(["evaluate", "--model", str(model_path),
                     "--data", str(dataset_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "LightMIRM" in out
        assert "KS=" in out


class TestExperimentAndList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "LightMIRM" in out
        assert "table1" in out

    def test_fig10_experiment_runs(self, capsys):
        code = main([
            "experiment", "fig10", "--n-samples", "4000",
            "--trainer-seeds", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out

    def test_fig4_experiment_runs(self, capsys):
        code = main([
            "experiment", "fig4", "--n-samples", "4000",
            "--trainer-seeds", "0",
        ])
        assert code == 0
        assert "Fig 4" in capsys.readouterr().out


class TestTune:
    def test_tune_parser_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.trainers == ["LightMIRM"]
        assert args.trials == 9 and args.eta == 3
        assert args.min_epochs == 5 and args.max_epochs == 45
        assert args.objective == "blend"
        assert args.jobs == 1 and args.seed == 0
        assert args.out == "TUNE_leaderboard.json"

    def test_tune_parser_shares_common_flags(self):
        args = build_parser().parse_args([
            "tune", "--trainers", "ERM", "IRMv1", "--jobs", "4",
            "--seed", "5", "--trace", "t.jsonl", "--registry", "reg",
            "--resume", "old.jsonl", "--smoke",
        ])
        assert args.trainers == ["ERM", "IRMv1"]
        assert args.jobs == 4 and args.seed == 5
        assert args.trace == "t.jsonl" and args.registry == "reg"
        assert args.resume == "old.jsonl" and args.smoke is True

    def test_tune_rejects_bad_objective(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--objective", "accuracy"])

    def test_tune_end_to_end(self, tmp_path, capsys):
        import json

        from repro.tune import ranked_trials, validate_leaderboard

        out = tmp_path / "lb.json"
        trace = tmp_path / "tune.jsonl"
        argv = [
            "tune", "--trainers", "ERM", "--trials", "2", "--eta", "2",
            "--min-epochs", "3", "--max-epochs", "3",
            "--n-samples", "3000", "--seed", "1",
            "--out", str(out), "--trace", str(trace),
        ]
        assert main(argv) == 0
        payload = validate_leaderboard(json.loads(out.read_text()))
        assert len(payload["leaderboard"]) == 2
        assert payload["leaderboard"][0]["trainer"] == "ERM"
        assert "best" in capsys.readouterr().out

        # Resuming from the trace replays every trial to the identical
        # ranking (the acceptance criterion for interrupted searches).
        out2 = tmp_path / "lb2.json"
        code = main(argv[:-4] + ["--out", str(out2),
                                 "--resume", str(trace)])
        assert code == 0
        resumed = json.loads(out2.read_text())
        assert ranked_trials(resumed) == ranked_trials(payload)
