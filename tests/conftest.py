"""Shared fixtures: small synthetic datasets and encoded environments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import EnvironmentData
from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.data.splits import temporal_split
from repro.pipeline.extractor import GBDTFeatureExtractor


@pytest.fixture(scope="session")
def small_dataset():
    """A 4k-row, 40-feature dataset shared (read-only) by many tests."""
    return LoanDataGenerator(GeneratorConfig.small(seed=3)).generate()


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return temporal_split(small_dataset)


@pytest.fixture(scope="session")
def fitted_extractor(small_split):
    return GBDTFeatureExtractor().fit(small_split.train)


@pytest.fixture(scope="session")
def train_envs(fitted_extractor, small_split):
    return fitted_extractor.encode_environments(small_split.train)


@pytest.fixture(scope="session")
def test_envs(fitted_extractor, small_split):
    return fitted_extractor.encode_environments(small_split.test)


@pytest.fixture(scope="session")
def fitted_pipeline(small_split, fitted_extractor):
    """An ERM pipeline fitted once, shared read-only by serving tests."""
    from repro.baselines.erm import ERMTrainer
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.train.base import BaseTrainConfig

    pipeline = LoanDefaultPipeline(
        ERMTrainer(BaseTrainConfig(n_epochs=10)),
        extractor=fitted_extractor,
    )
    return pipeline.fit(small_split.train)


@pytest.fixture(scope="session")
def scoring_model(fitted_pipeline):
    """The fitted pipeline as a restored ScoringModel (serving tests)."""
    from repro.persist.artifacts import (
        pipeline_to_payload,
        scoring_model_from_payload,
    )

    return scoring_model_from_payload(pipeline_to_payload(fitted_pipeline))


@pytest.fixture(scope="session")
def scoring_model_alt(small_split, fitted_extractor):
    """A second scorer (different LR head) for model-swap tests."""
    from repro.baselines.erm import ERMTrainer
    from repro.persist.artifacts import (
        pipeline_to_payload,
        scoring_model_from_payload,
    )
    from repro.pipeline.pipeline import LoanDefaultPipeline
    from repro.train.base import BaseTrainConfig

    pipeline = LoanDefaultPipeline(
        ERMTrainer(BaseTrainConfig(n_epochs=4, learning_rate=1.0, seed=9)),
        extractor=fitted_extractor,
    ).fit(small_split.train)
    return scoring_model_from_payload(pipeline_to_payload(pipeline))


@pytest.fixture(scope="session")
def request_rows(small_split):
    """A contiguous block of held-out raw rows to score."""
    return np.ascontiguousarray(small_split.test.features[:300])


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def tiny_envs(rng):
    """Three tiny dense environments with a learnable signal."""
    envs = []
    for name, shift in (("A", 0.0), ("B", 0.5), ("C", -0.5)):
        n = 120
        x = rng.standard_normal((n, 5))
        logit = 1.5 * x[:, 0] - x[:, 1] + shift
        y = (rng.random(n) < 1 / (1 + np.exp(-logit))).astype(float)
        # Guarantee both classes so KS/AUC are defined.
        y[0], y[1] = 0.0, 1.0
        envs.append(EnvironmentData(name, x, y))
    return envs
