"""Unit tests for the online replay simulator (Fig 5 machinery)."""

import numpy as np
import pytest

from repro.eval.online import replay_online_test


class TestReplay:
    def test_baseline_is_stream_default_rate(self, rng):
        y = rng.integers(0, 2, 1000).astype(float)
        s = rng.random(1000)
        replay = replay_online_test(y, s)
        assert replay.baseline_bad_debt_rate == pytest.approx(y.mean())

    def test_good_model_reduces_bad_debt(self, rng):
        y = rng.integers(0, 2, 2000).astype(float)
        # Scores strongly correlated with defaults.
        s = np.clip(0.8 * y + 0.2 * rng.random(2000), 0, 1)
        replay = replay_online_test(y, s, operating_threshold=0.5)
        assert replay.companion_bad_debt_rate < replay.baseline_bad_debt_rate
        assert replay.reduction_fraction > 0.5

    def test_useless_model_no_reduction(self, rng):
        y = rng.integers(0, 2, 3000).astype(float)
        s = rng.random(3000)
        replay = replay_online_test(y, s, operating_threshold=0.5)
        assert abs(replay.reduction_fraction) < 0.15

    def test_curve_shapes(self, rng):
        y = rng.integers(0, 2, 200).astype(float)
        s = rng.random(200)
        replay = replay_online_test(y, s)
        assert set(replay.curves) == {
            "thresholds",
            "false_positive_rate",
            "bad_debt_rate",
            "refusal_rate",
        }

    def test_refusal_at_threshold(self, rng):
        y = rng.integers(0, 2, 500).astype(float)
        s = rng.random(500)
        replay = replay_online_test(y, s, operating_threshold=0.5)
        # At threshold 0.5 with uniform scores, about half are refused.
        assert 0.35 < replay.refusal_at_threshold < 0.65

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError):
            replay_online_test(np.array([]), np.array([]))

    def test_zero_baseline_reduction_zero(self):
        y = np.zeros(100)
        s = np.random.default_rng(0).random(100)
        replay = replay_online_test(y, s)
        assert replay.reduction_fraction == 0.0
