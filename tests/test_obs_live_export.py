"""Tests for exposition (repro.obs.live.export) and obs top rendering.

The exporter is stdlib-only (``http.server``), so these tests exercise a
real HTTP round trip on an ephemeral port; the Prometheus renderer and
terminal renderer are pure functions tested directly.
"""

import json
import urllib.request

import pytest

from repro.obs.live.export import (
    MetricsExporter,
    SnapshotFileWriter,
    render_prometheus,
)
from repro.obs.live.top import fetch_snapshot, read_snapshot_file, render_top


def sample_snapshot(state="healthy"):
    return {
        "unix": 1700000000.0,
        "generation": 3,
        "pending": 2,
        "workers_alive": 2,
        "frontend": {
            "admitted": 100, "shed": 5, "refused": 0, "errors": 1,
            "resolved": 99, "requeued": 0, "worker_deaths": 0,
            "request_latency": {
                "count": 99, "mean_s": 0.002, "p50_s": 0.001,
                "p95_s": 0.01, "p99_s": 0.01,
                "buckets": {"le_0.001": 50, "le_0.01": 49, "overflow": 0},
            },
        },
        "workers": {
            "counters": {"rows_scored": 99, "batches": 10},
            "gauges": {"busy_seconds": 0.5},
            "histograms": {
                "batch_latency": {
                    "count": 10, "mean": 0.005, "p50": 0.003,
                    "p95": 0.01, "p99": 0.01, "total": 0.05,
                    "buckets": {"le_0.003": 5, "le_0.01": 5, "overflow": 0},
                },
            },
            "workers_reporting": 2,
            "cache_hit_rate": 0.25,
        },
        "liveness": {
            "0": {"reporting": True, "age_s": 0.1, "stale": False},
            "1": {"reporting": True, "age_s": 9.0, "stale": True},
        },
        "monitors": {
            "score_drift": {"window_rows": 500, "global_psi": 0.02,
                            "worst_province": "Gansu", "worst_psi": 0.31,
                            "provinces": {"Gansu": {"psi": 0.31,
                                                    "windows_completed": 2,
                                                    "pending_rows": 10}}},
            "calibration": {"reference_mean": 0.18, "window_rows": 1000,
                            "n_seen": 99, "score_mean": 0.19,
                            "mean_shift": 0.01, "calibration_gap": None,
                            "n_labelled": 0},
            "slo": {"admission": {"error_budget": 0.01,
                                  "events_tracked": 105, "bad_tracked": 5,
                                  "burn_rates": {"60s": 4.76,
                                                 "600s": 4.76}}},
        },
        "health": {"state": state,
                   "active_breaches": {"score_psi": "critical"},
                   "n_alerts": 2, "n_transitions": 1, "recovery_polls": 3},
    }


class TestRenderPrometheus:
    def test_renders_worker_counters_and_histograms(self):
        text = render_prometheus(sample_snapshot())
        assert "repro_worker_rows_scored_total 99" in text
        assert "repro_worker_batches_total 10" in text
        assert 'repro_worker_batch_latency_bucket{le="0.003"} 5' in text
        assert 'repro_worker_batch_latency_bucket{le="+Inf"} 10' in text
        assert "repro_worker_batch_latency_count 10" in text
        assert "repro_worker_batch_latency_sum 0.05" in text

    def test_bucket_counts_are_cumulative(self):
        text = render_prometheus(sample_snapshot())
        # le=0.01 must include the le=0.003 bucket (Prometheus contract).
        assert 'repro_worker_batch_latency_bucket{le="0.01"} 10' in text

    def test_renders_frontend_and_monitors(self):
        text = render_prometheus(sample_snapshot())
        assert "repro_frontend_admitted_total 100" in text
        assert "repro_frontend_shed_total 5" in text
        assert "repro_score_psi 0.02" in text
        assert 'repro_score_psi_province{province="Gansu"} 0.31' in text
        assert ('repro_slo_burn_rate{objective="admission",window="60s"} '
                "4.76") in text

    def test_health_state_is_one_hot(self):
        text = render_prometheus(sample_snapshot(state="degraded"))
        assert 'repro_health_state{state="degraded"} 1' in text
        assert 'repro_health_state{state="healthy"} 0' in text
        assert 'repro_health_state{state="critical"} 0' in text

    def test_liveness_gauges(self):
        text = render_prometheus(sample_snapshot())
        assert "repro_workers_stale 1" in text
        assert ('repro_worker_heartbeat_age_seconds{worker="1"} 9'
                in text)

    def test_tolerates_minimal_snapshot(self):
        # A frontend with no live plane still exposes its own telemetry.
        text = render_prometheus({"frontend": {"admitted": 1}})
        assert "repro_frontend_admitted_total 1" in text

    def test_custom_prefix(self):
        text = render_prometheus(sample_snapshot(), prefix="loan")
        assert "loan_worker_rows_scored_total 99" in text
        assert "repro_" not in text


class TestMetricsExporter:
    def test_http_round_trip(self):
        with MetricsExporter(sample_snapshot, port=0) as exporter:
            base = f"http://127.0.0.1:{exporter.port}"
            metrics = urllib.request.urlopen(f"{base}/metrics").read()
            assert b"repro_worker_rows_scored_total 99" in metrics
            snap = json.loads(
                urllib.request.urlopen(f"{base}/snapshot").read()
            )
            assert snap["workers"]["counters"]["rows_scored"] == 99
            health = urllib.request.urlopen(f"{base}/healthz")
            assert health.status == 200

    def test_healthz_503_when_critical(self):
        with MetricsExporter(lambda: sample_snapshot("critical"),
                             port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/healthz"
                )
            assert err.value.code == 503

    def test_unknown_path_404(self):
        with MetricsExporter(sample_snapshot, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/nope"
                )
            assert err.value.code == 404

    def test_snapshot_failure_surfaces_as_500(self):
        def boom():
            raise RuntimeError("collector gone")

        with MetricsExporter(boom, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/metrics"
                )
            assert err.value.code == 500

    def test_stop_is_idempotent(self):
        exporter = MetricsExporter(sample_snapshot, port=0)
        exporter.start()
        exporter.stop()
        exporter.stop()


class TestSnapshotFileWriter:
    def test_flush_appends_json_lines(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        writer = SnapshotFileWriter(sample_snapshot, path)
        writer.flush()
        writer.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["generation"] == 3

    def test_periodic_writes_and_final_flush(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        writer = SnapshotFileWriter(sample_snapshot, path, interval_s=0.05)
        writer.start()
        import time

        time.sleep(0.2)
        writer.stop()
        assert writer.n_written >= 2
        lines = path.read_text().splitlines()
        assert len(lines) == writer.n_written


class TestTopRendering:
    def test_renders_the_headline_sections(self):
        text = render_top(sample_snapshot(state="critical"))
        assert "health: CRITICAL" in text
        assert "score_psi:critical" in text
        assert "rows" in text and "99" in text
        assert "w0:ok" in text and "w1:stale" in text
        assert "Gansu" in text
        assert "burn admission" in text

    def test_renders_without_live_sections(self):
        # serve-run without monitors still renders the frontend block.
        text = render_top({"unix": 0.0, "generation": 0, "pending": 0,
                           "workers_alive": 1,
                           "frontend": {"admitted": 4}})
        assert "admitted" in text

    def test_fetch_snapshot_round_trip(self):
        with MetricsExporter(sample_snapshot, port=0) as exporter:
            snap = fetch_snapshot(f"http://127.0.0.1:{exporter.port}")
        assert snap["generation"] == 3

    def test_read_snapshot_file_takes_last_complete_line(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"generation": 1}) + "\n")
            fh.write(json.dumps({"generation": 2}) + "\n")
            fh.write('{"generation": 3, "trunc')   # torn final line
        assert read_snapshot_file(path)["generation"] == 2
