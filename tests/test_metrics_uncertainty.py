"""Unit tests for bootstrap uncertainty intervals."""

import numpy as np
import pytest

from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score
from repro.metrics.uncertainty import (
    bootstrap_auc,
    bootstrap_ks,
    bootstrap_metric,
    paired_bootstrap_difference,
)


@pytest.fixture(scope="module")
def informative():
    rng = np.random.default_rng(0)
    n = 1_500
    y = rng.integers(0, 2, n).astype(float)
    scores = y + rng.standard_normal(n)
    return y, scores


class TestBootstrapMetric:
    def test_interval_brackets_estimate(self, informative):
        y, s = informative
        interval = bootstrap_ks(y, s, n_resamples=200)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.estimate == pytest.approx(ks_score(y, s))

    def test_auc_variant(self, informative):
        y, s = informative
        interval = bootstrap_auc(y, s, n_resamples=200)
        assert interval.estimate == pytest.approx(auc_score(y, s))
        assert 0 < interval.width < 0.15

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)

        def width(n):
            y = rng.integers(0, 2, n).astype(float)
            y[:2] = [0, 1]
            s = y + rng.standard_normal(n)
            return bootstrap_ks(y, s, n_resamples=200).width

        assert width(4_000) < width(200)

    def test_deterministic_given_seed(self, informative):
        y, s = informative
        a = bootstrap_ks(y, s, n_resamples=100, seed=7)
        b = bootstrap_ks(y, s, n_resamples=100, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_confidence_levels_nest(self, informative):
        y, s = informative
        narrow = bootstrap_ks(y, s, n_resamples=300, confidence=0.5)
        wide = bootstrap_ks(y, s, n_resamples=300, confidence=0.99)
        assert wide.width > narrow.width

    def test_invalid_args(self, informative):
        y, s = informative
        with pytest.raises(ValueError):
            bootstrap_ks(y, s, confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ks(y, s, n_resamples=5)

    def test_str_rendering(self, informative):
        y, s = informative
        text = str(bootstrap_ks(y, s, n_resamples=50))
        assert "[" in text and "@95%" in text


class TestPairedDifference:
    def test_clearly_better_model_resolvable(self, informative):
        y, s_good = informative
        rng = np.random.default_rng(2)
        s_bad = 0.2 * y + rng.standard_normal(y.size)
        diff = paired_bootstrap_difference(y, s_good, s_bad,
                                           n_resamples=200)
        assert diff.estimate > 0
        assert diff.lower > 0  # zero excluded: a resolvable win

    def test_identical_models_unresolvable(self, informative):
        y, s = informative
        diff = paired_bootstrap_difference(y, s, s.copy(), n_resamples=100)
        assert diff.estimate == 0.0
        assert diff.contains(0.0)

    def test_tiny_perturbation_unresolvable(self, informative):
        """Adding negligible noise must not produce a confident win."""
        y, s = informative
        rng = np.random.default_rng(3)
        s_jittered = s + 1e-3 * rng.standard_normal(s.size)
        diff = paired_bootstrap_difference(y, s, s_jittered,
                                           n_resamples=200)
        assert diff.contains(0.0)

    def test_antisymmetry(self, informative):
        y, s_good = informative
        rng = np.random.default_rng(4)
        s_bad = 0.3 * y + rng.standard_normal(y.size)
        ab = paired_bootstrap_difference(y, s_good, s_bad, n_resamples=150,
                                         seed=5)
        ba = paired_bootstrap_difference(y, s_bad, s_good, n_resamples=150,
                                         seed=5)
        assert ab.estimate == pytest.approx(-ba.estimate)
        assert ab.lower == pytest.approx(-ba.upper)
