"""Unit tests for the KS statistic."""

import numpy as np
import pytest
from scipy import stats

from repro.metrics.ks import ks_curve, ks_score, two_sample_ks


class TestKsScore:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert ks_score(y, s) == 1.0

    def test_uninformative_scores_low(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000).astype(float)
        s = rng.random(4000)
        assert ks_score(y, s) < 0.08

    def test_equals_two_sample_ks_on_class_split(self):
        """For a positively-oriented score the signed and unsigned KS agree."""
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 500).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(500) + 0.7 * y
        expected = two_sample_ks(s[y == 1], s[y == 0])
        assert ks_score(y, s) == pytest.approx(expected, abs=1e-12)

    def test_inverted_ranking_scores_near_zero(self):
        """The signed convention: anti-ranking is a failure, not a win."""
        rng = np.random.default_rng(7)
        y = rng.integers(0, 2, 500).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(500) - 2.0 * y  # defaulters scored LOWER
        assert ks_score(y, s) < 0.1
        assert two_sample_ks(s[y == 1], s[y == 0]) > 0.5

    def test_matches_scipy_ks_2samp(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 300).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(300) + y
        expected = stats.ks_2samp(s[y == 1], s[y == 0]).statistic
        assert ks_score(y, s) == pytest.approx(expected, abs=1e-12)

    def test_invariant_to_increasing_monotone_transform(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, 200).astype(float)
        y[:2] = [0, 1]
        s = rng.random(200)
        assert ks_score(y, s) == pytest.approx(ks_score(y, np.exp(3 * s)))

    def test_bounds(self):
        rng = np.random.default_rng(4)
        for seed in range(5):
            r = np.random.default_rng(seed)
            y = r.integers(0, 2, 50).astype(float)
            y[:2] = [0, 1]
            s = r.random(50)
            assert 0.0 <= ks_score(y, s) <= 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            ks_score(np.zeros(10), np.arange(10.0))


class TestKsCurve:
    def test_max_of_curve_is_ks(self):
        rng = np.random.default_rng(5)
        y = rng.integers(0, 2, 400).astype(float)
        y[:2] = [0, 1]
        s = rng.standard_normal(400) + y
        thresholds, separation = ks_curve(y, s)
        assert np.max(np.abs(separation)) == pytest.approx(ks_score(y, s))
        assert thresholds.shape == separation.shape


class TestTwoSampleKs:
    def test_identical_samples_zero(self):
        a = np.arange(10.0)
        assert two_sample_ks(a, a) == 0.0

    def test_disjoint_samples_one(self):
        assert two_sample_ks(np.zeros(5), np.ones(5)) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal(40)
        b = rng.standard_normal(60) + 0.5
        assert two_sample_ks(a, b) == pytest.approx(two_sample_ks(b, a))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            two_sample_ks(np.array([]), np.array([1.0]))
