"""Unit tests for the outer-loop optimizers."""

import numpy as np
import pytest

from repro.train.optimizers import SGD, Adam, Momentum, make_optimizer


def _quadratic(theta, scales):
    """Ill-conditioned quadratic: loss and gradient."""
    loss = 0.5 * float(scales @ theta**2)
    return loss, scales * theta


class TestSGD:
    def test_exact_step(self):
        opt = SGD(learning_rate=0.5)
        theta = np.array([1.0, -2.0])
        grad = np.array([0.2, 0.4])
        np.testing.assert_allclose(opt.step(theta, grad), [0.9, -2.2])

    def test_does_not_mutate_inputs(self):
        opt = SGD(learning_rate=0.5)
        theta = np.array([1.0])
        grad = np.array([1.0])
        opt.step(theta, grad)
        assert theta[0] == 1.0


class TestMomentum:
    def test_first_step_matches_sgd(self):
        theta = np.array([1.0, 1.0])
        grad = np.array([0.5, -0.5])
        np.testing.assert_allclose(
            Momentum(0.1, momentum=0.9).step(theta, grad),
            SGD(0.1).step(theta, grad),
        )

    def test_velocity_accumulates(self):
        opt = Momentum(0.1, momentum=0.5)
        theta = np.zeros(1)
        grad = np.ones(1)
        theta = opt.step(theta, grad)        # v=1,   theta=-0.1
        theta = opt.step(theta, grad)        # v=1.5, theta=-0.25
        assert theta[0] == pytest.approx(-0.25)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(0.1, momentum=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction the first Adam step has magnitude ~lr."""
        opt = Adam(learning_rate=0.1)
        theta = np.zeros(3)
        grad = np.array([5.0, -0.01, 1.0])
        new = opt.step(theta, grad)
        np.testing.assert_allclose(np.abs(new), 0.1, rtol=1e-3)

    def test_converges_on_ill_conditioned_problem_faster_than_sgd(self):
        scales = np.array([100.0, 1.0])
        theta_sgd = np.array([1.0, 1.0])
        theta_adam = np.array([1.0, 1.0])
        sgd = SGD(learning_rate=0.005)  # stability-limited by the 100 axis
        adam = Adam(learning_rate=0.1)
        for _ in range(200):
            _, g = _quadratic(theta_sgd, scales)
            theta_sgd = sgd.step(theta_sgd, g)
            _, g = _quadratic(theta_adam, scales)
            theta_adam = adam.step(theta_adam, g)
        assert _quadratic(theta_adam, scales)[0] < _quadratic(
            theta_sgd, scales
        )[0]

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_optimizer("sgd", 0.1), SGD)
        assert isinstance(make_optimizer("momentum", 0.1), Momentum)
        assert isinstance(make_optimizer("adam", 0.1), Adam)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_optimizer("lbfgs", 0.1)

    def test_kwargs_forwarded(self):
        opt = make_optimizer("momentum", 0.1, momentum=0.5)
        assert opt.momentum == 0.5

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            make_optimizer("sgd", 0.0)


class TestTrainerIntegration:
    def test_adam_trains_erm(self, tiny_envs):
        from repro.baselines.erm import ERMTrainer
        from repro.train.base import BaseTrainConfig

        result = ERMTrainer(
            BaseTrainConfig(n_epochs=60, learning_rate=0.1,
                            optimizer="adam")
        ).fit(tiny_envs)
        assert result.theta[0] > 0.3

    def test_adam_trains_lightmirm(self, tiny_envs):
        from repro.core.config import LightMIRMConfig
        from repro.core.lightmirm import LightMIRMTrainer

        result = LightMIRMTrainer(
            LightMIRMConfig(n_epochs=60, learning_rate=0.05,
                            optimizer="adam")
        ).fit(tiny_envs)
        assert np.isfinite(result.theta).all()

    def test_bad_optimizer_name_rejected_in_config(self):
        from repro.train.base import BaseTrainConfig

        with pytest.raises(ValueError):
            BaseTrainConfig(optimizer="sophia")

    def test_sgd_default_backwards_compatible(self, tiny_envs):
        """The default config still produces the paper's plain-GD path."""
        from repro.baselines.erm import ERMTrainer
        from repro.train.base import BaseTrainConfig

        result = ERMTrainer(BaseTrainConfig(n_epochs=5)).fit(tiny_envs)
        manual = result.model.init_params(seed=0, scale=0.01)
        from repro.train.base import stack_environments

        x, y = stack_environments(tiny_envs)
        for _ in range(5):
            manual = manual - 2.0 * result.model.gradient(manual, x, y)
        np.testing.assert_allclose(result.theta, manual, atol=1e-12)