"""Unit tests for the leaf-wise decision tree."""

import numpy as np
import pytest

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.tree import DecisionTree, TreeParams


def _regression_setup(rng, n=400, d=3, max_bins=16):
    """Binned features plus gradient/hessian stats of a squared loss."""
    x = rng.standard_normal((n, d))
    target = np.where(x[:, 0] > 0, 2.0, -1.0) + 0.1 * rng.standard_normal(n)
    # Squared loss around 0: gradient = -target, hessian = 1.
    gradients = -target
    hessians = np.ones(n)
    binner = QuantileBinner(max_bins=max_bins).fit(x)
    return binner.transform(x), gradients, hessians, target


class TestGrowth:
    def test_respects_max_leaves(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        tree = DecisionTree(TreeParams(max_leaves=6, min_child_samples=5))
        tree.fit(binned, g, h, max_bins=16)
        assert 2 <= tree.n_leaves <= 6

    def test_respects_max_depth(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        tree = DecisionTree(TreeParams(max_leaves=31, max_depth=1,
                                       min_child_samples=5))
        tree.fit(binned, g, h, max_bins=16)
        assert tree.n_leaves <= 2

    def test_min_child_samples_respected(self, rng):
        binned, g, h, _ = _regression_setup(rng, n=60)
        tree = DecisionTree(TreeParams(max_leaves=31, min_child_samples=25))
        tree.fit(binned, g, h, max_bins=16)
        leaves = tree.predict_leaf(binned)
        counts = np.bincount(leaves)
        assert counts[counts > 0].min() >= 25

    def test_finds_the_signal_split(self, rng):
        binned, g, h, target = _regression_setup(rng)
        tree = DecisionTree(TreeParams(max_leaves=2, min_child_samples=5))
        tree.fit(binned, g, h, max_bins=16)
        predictions = tree.predict_value(binned)
        # A single split on x0 should separate the two target levels.
        corr = np.corrcoef(predictions, target)[0, 1]
        assert corr > 0.9

    def test_no_valid_split_keeps_single_leaf(self, rng):
        binned = np.zeros((50, 2), dtype=np.uint8)  # constant features
        g = rng.standard_normal(50)
        h = np.ones(50)
        tree = DecisionTree(TreeParams())
        tree.fit(binned, g, h, max_bins=4)
        assert tree.n_leaves == 1

    def test_zero_samples_raises(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        with pytest.raises(ValueError):
            DecisionTree().fit(binned, g, h, max_bins=16,
                               sample_indices=np.array([], dtype=int))


class TestPrediction:
    def test_leaf_indices_dense(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        tree = DecisionTree(TreeParams(max_leaves=8, min_child_samples=5))
        tree.fit(binned, g, h, max_bins=16)
        leaves = tree.predict_leaf(binned)
        present = np.unique(leaves)
        assert present.min() == 0
        assert present.max() == tree.n_leaves - 1
        # Training rows should reach every leaf.
        assert present.size == tree.n_leaves

    def test_leaf_value_is_newton_step(self, rng):
        """Leaf value must equal -G/(H + lambda) over the leaf's rows."""
        binned, g, h, _ = _regression_setup(rng)
        lam = 1.0
        tree = DecisionTree(TreeParams(max_leaves=4, min_child_samples=5,
                                       reg_lambda=lam))
        tree.fit(binned, g, h, max_bins=16)
        leaves = tree.predict_leaf(binned)
        values = tree.predict_value(binned)
        for leaf in range(tree.n_leaves):
            mask = leaves == leaf
            expected = -g[mask].sum() / (h[mask].sum() + lam)
            np.testing.assert_allclose(values[mask], expected, atol=1e-10)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict_leaf(np.zeros((1, 1), dtype=np.uint8))

    def test_deterministic(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        t1 = DecisionTree(TreeParams(max_leaves=8, min_child_samples=5))
        t1.fit(binned, g, h, max_bins=16)
        t2 = DecisionTree(TreeParams(max_leaves=8, min_child_samples=5))
        t2.fit(binned, g, h, max_bins=16)
        np.testing.assert_array_equal(
            t1.predict_leaf(binned), t2.predict_leaf(binned)
        )


class TestFeatureImportance:
    def test_signal_feature_dominates(self, rng):
        binned, g, h, _ = _regression_setup(rng)
        tree = DecisionTree(TreeParams(max_leaves=8, min_child_samples=5))
        tree.fit(binned, g, h, max_bins=16)
        importance = tree.feature_importance(binned.shape[1])
        assert importance.argmax() == 0
        assert np.all(importance >= 0)


class TestParams:
    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            TreeParams(max_leaves=1)
        with pytest.raises(ValueError):
            TreeParams(min_child_samples=0)
        with pytest.raises(ValueError):
            TreeParams(reg_lambda=-1)
