"""End-to-end tests for `--trace` and the `repro obs` subcommand.

The acceptance path of the observability layer: a traced ``repro train``
leaves a JSONL run log from which ``repro obs report`` reconstructs the
Table III step timings and the per-epoch convergence curves without
re-running anything.
"""

import pytest

from repro.cli import main
from repro.obs.report import timing_tables
from repro.obs.runlog import RunLogReader
from repro.timing import STEP_NAMES


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-cli") / "platform.npz"
    code = main([
        "generate", "--n-samples", "2500", "--seed", "3",
        "--total-features", "40", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory, dataset_file):
    """One traced LightMIRM training run, shared by the read-side tests."""
    trace = tmp_path_factory.mktemp("obs-cli-run") / "run.jsonl"
    code = main([
        "train", "--method", "lightmirm", "--data", str(dataset_file),
        "--epochs", "6", "--seed", "1", "--trace", str(trace),
    ])
    assert code == 0
    return trace


class TestTracedTrain:
    def test_log_validates_against_schema(self, traced_run):
        run = RunLogReader.read(traced_run)  # validates every line
        assert len(run) > 0

    def test_manifest_identity_fields(self, traced_run, dataset_file):
        manifest = RunLogReader.read(traced_run).manifest
        assert manifest is not None
        fields = manifest["fields"]
        assert fields["command"] == "train"
        assert fields["method"] == "lightmirm"
        assert fields["seed"] == 1
        assert fields["data"] == str(dataset_file)
        assert fields["config"] == {"method": "lightmirm", "n_epochs": 6}
        assert set(fields["dataset"]) == {
            "n_samples", "n_features", "sha256"
        }

    def test_table_iii_reconstructable_offline(self, traced_run):
        run = RunLogReader.read(traced_run)
        by_label = {t.label: t for t in timing_tables(run)}
        assert "LightMIRM" in by_label
        table = by_label["LightMIRM"]
        assert table.n_epochs == 6
        assert set(table.mean_step_seconds) == set(STEP_NAMES)
        assert table.mean_step_seconds["inner_optimization"] > 0
        assert table.mean_step_seconds["calculating_meta_losses"] > 0
        assert table.mean_step_seconds["backward_propagation"] > 0
        assert table.mean_epoch_seconds > 0

    def test_convergence_curves_in_log(self, traced_run):
        run = RunLogReader.read(traced_run)
        for field in ("objective", "penalty", "meta_loss_total", "grad_norm"):
            curve = run.curve("epoch", field)
            assert [epoch for epoch, _ in curve] == list(range(6)), field

    def test_gbdt_profile_event_present(self, traced_run):
        run = RunLogReader.read(traced_run)
        (profile,) = run.events("gbdt_profile")
        sections = profile["fields"]["sections"]
        assert {"boosting_round", "histogram_build", "leaf_encode"} \
            <= set(sections)
        assert sections["leaf_encode"]["rows"] > 0

    def test_untraced_train_writes_no_log(self, dataset_file, capsys):
        code = main([
            "train", "--method", "ERM", "--data", str(dataset_file),
            "--epochs", "2",
        ])
        assert code == 0
        assert "wrote run log" not in capsys.readouterr().out


class TestObsReport:
    def test_report_renders_table_and_curves(self, traced_run, capsys):
        assert main(["obs", "report", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        for step in STEP_NAMES:
            assert step in out
        assert "the whole epoch" in out
        assert "Convergence of LightMIRM" in out
        assert "meta_loss_total" in out
        assert "GBDT kernel profile" in out

    def test_summary_renders_headline(self, traced_run, capsys):
        assert main(["obs", "summary", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "LightMIRM: 6 epochs" in out
        assert "dominant step" in out
        assert "objective" in out

    def test_max_curve_rows_limits_output(self, traced_run, capsys):
        assert main(["obs", "report", str(traced_run),
                     "--max-curve-rows", "3"]) == 0
        out = capsys.readouterr().out
        assert "6 epochs, 3 shown" in out

    def test_diff_of_run_against_itself(self, traced_run, capsys):
        code = main(["obs", "diff", str(traced_run), str(traced_run)])
        assert code == 0
        out = capsys.readouterr().out
        assert "LightMIRM" in out
        assert "B/A" in out

    def test_diff_requires_two_paths(self, traced_run, capsys):
        assert main(["obs", "diff", str(traced_run)]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_report_requires_one_path(self, traced_run, capsys):
        code = main(["obs", "report", str(traced_run), str(traced_run)])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_report_rejects_malformed_log(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"mystery"}\n')
        from repro.obs.runlog import SchemaError

        with pytest.raises(SchemaError):
            main(["obs", "report", str(bad)])


class TestTracedVerify:
    def test_verify_smoke_trace_has_fit_per_trainer(self, tmp_path, capsys):
        trace = tmp_path / "verify.jsonl"
        main([
            "verify", "--smoke", "--epochs", "3",
            "--out", str(tmp_path / "VERIFY.json"), "--trace", str(trace),
        ])
        run = RunLogReader.read(trace)
        assert run.manifest["fields"]["command"] == "verify"
        fit_trainers = {
            s["fields"]["trainer"] for s in run.spans("fit")
        }
        from repro.train.registry import available_trainers

        assert set(available_trainers()) <= fit_trainers
        # Penalty sweeps re-fit penalised trainers: more fits than trainers.
        assert len(run.spans("fit")) > len(available_trainers())
