"""Tests for the versioned model registry (repro.serve.registry)."""

import json

import numpy as np
import pytest

from repro.serve.registry import CHALLENGER, CHAMPION, ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "reg")


class TestSaveLoad:
    def test_first_save_auto_promotes_champion(self, registry,
                                               fitted_pipeline):
        version = registry.save(fitted_pipeline)
        assert version == "v0001"
        assert registry.slots() == {CHAMPION: "v0001"}

    def test_versions_are_sequential(self, registry, fitted_pipeline):
        assert registry.save(fitted_pipeline) == "v0001"
        assert registry.save(fitted_pipeline) == "v0002"
        assert [v.version for v in registry.versions()] == ["v0001", "v0002"]

    def test_round_trip_scores_bit_identical(self, registry, fitted_pipeline,
                                             small_split):
        registry.save(fitted_pipeline)
        model = registry.load(CHAMPION)
        restored = model.predict_proba(small_split.test.features)
        original = fitted_pipeline.predict_proba(small_split.test)
        np.testing.assert_array_equal(restored, original)

    def test_load_by_version_id(self, registry, fitted_pipeline, small_split):
        version = registry.save(fitted_pipeline)
        by_slot = registry.load(CHAMPION)
        by_version = registry.load(version)
        np.testing.assert_array_equal(
            by_slot.predict_proba(small_split.test.features),
            by_version.predict_proba(small_split.test.features),
        )

    def test_save_into_challenger_slot(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        registry.save(fitted_pipeline, slot=CHALLENGER)
        assert registry.slots() == {CHAMPION: "v0001", CHALLENGER: "v0002"}

    def test_metadata_round_trips(self, registry, fitted_pipeline):
        version = registry.save(fitted_pipeline, metadata={"run": "weekly"})
        assert registry.describe(version).metadata == {"run": "weekly"}
        assert registry.load(version).metadata == {"run": "weekly"}

    def test_unknown_ref_raises(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        with pytest.raises(KeyError):
            registry.load("v0099")

    def test_empty_slot_raises(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        with pytest.raises(KeyError):
            registry.load(CHALLENGER)

    def test_bad_slot_name_rejected(self, registry, fitted_pipeline):
        with pytest.raises(ValueError):
            registry.save(fitted_pipeline, slot="production")


class TestLifecycle:
    def test_promote_then_rollback(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)  # v0001, auto champion
        v2 = registry.save(fitted_pipeline)
        registry.promote(v2)
        assert registry.slots()[CHAMPION] == "v0002"
        assert registry.rollback() == "v0001"
        assert registry.slots()[CHAMPION] == "v0001"

    def test_rollback_without_history_raises(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        with pytest.raises(KeyError):
            registry.rollback()

    def test_rollback_walks_history_backwards(self, registry,
                                              fitted_pipeline):
        for _ in range(3):
            registry.save(fitted_pipeline)
        registry.promote("v0002")
        registry.promote("v0003")
        assert registry.rollback() == "v0002"
        assert registry.rollback() == "v0001"

    def test_promote_unknown_version_raises(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        with pytest.raises(KeyError):
            registry.promote("v0042")

    def test_repeated_promote_same_version_no_history(self, registry,
                                                      fitted_pipeline):
        registry.save(fitted_pipeline)
        registry.promote("v0001")
        with pytest.raises(KeyError):
            registry.rollback()


class TestOnDisk:
    def test_layout_and_no_temp_leftovers(self, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        registry.save(fitted_pipeline, slot=CHALLENGER)
        assert (registry.root / "registry.json").exists()
        assert (registry.root / "models" / "v0001.json").exists()
        assert not list(registry.root.rglob("*.tmp"))

    def test_unsupported_index_format_rejected(self, registry,
                                               fitted_pipeline):
        registry.save(fitted_pipeline)
        index = json.loads(registry.index_path.read_text())
        index["format"] = 99
        registry.index_path.write_text(json.dumps(index))
        with pytest.raises(ValueError):
            registry.slots()


class TestSingleFileSurface:
    def test_save_file_load_file_round_trip(self, tmp_path, fitted_pipeline,
                                            small_split):
        path = tmp_path / "model.json"
        ModelRegistry.save_file(fitted_pipeline, path, metadata={"a": 1})
        model = ModelRegistry.load_file(path)
        assert model.metadata == {"a": 1}
        np.testing.assert_array_equal(
            model.predict_proba(small_split.test.features),
            fitted_pipeline.predict_proba(small_split.test),
        )

    def test_file_and_registry_artifacts_interchange(self, tmp_path, registry,
                                                     fitted_pipeline):
        version = registry.save(fitted_pipeline)
        entry = registry.describe(version)
        model = ModelRegistry.load_file(registry.root / entry.path)
        assert model.trainer_name == entry.trainer_name


class TestImportFile:
    def test_import_registers_and_promotes(self, tmp_path, registry,
                                           fitted_pipeline, small_split):
        path = tmp_path / "external.json"
        ModelRegistry.save_file(fitted_pipeline, path, metadata={"a": 1})
        version = registry.import_file(path, metadata={"bench": "scale"})
        assert version == "v0001"
        assert registry.slots() == {CHAMPION: "v0001"}
        model = registry.load(CHAMPION)
        assert model.metadata == {"a": 1, "bench": "scale"}
        np.testing.assert_array_equal(
            model.predict_proba(small_split.test.features),
            fitted_pipeline.predict_proba(small_split.test),
        )

    def test_import_into_slot(self, tmp_path, registry, fitted_pipeline):
        registry.save(fitted_pipeline)
        path = tmp_path / "external.json"
        ModelRegistry.save_file(fitted_pipeline, path)
        registry.import_file(path, slot=CHALLENGER)
        assert registry.slots() == {CHAMPION: "v0001", CHALLENGER: "v0002"}

    def test_import_rejects_invalid_payload(self, tmp_path, registry):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a model"}))
        with pytest.raises((KeyError, ValueError)):
            registry.import_file(path)
        assert registry.versions() == []


# ------------------------- multiprocess contention (module-level workers)


def _contend_worker(root, artifact_path, n_rounds, worker_idx, errors):
    """Import/promote/rollback in a tight loop from one competing process.

    Each round promotes two fresh versions before rolling back once, so
    under any interleaving the shared slot history holds at least one
    entry whenever a rollback pops it — every failure the queue reports
    is therefore a real registry race, not test scheduling.
    """
    registry = ModelRegistry(root)
    try:
        for round_idx in range(n_rounds):
            for step in range(2):
                version = registry.import_file(
                    artifact_path,
                    metadata={"worker": worker_idx, "round": round_idx,
                              "step": step},
                )
                registry.promote(version)
            registry.rollback()
    except Exception as exc:  # noqa: BLE001 - surfaced to the test
        errors.put(f"worker {worker_idx}: {exc!r}")


def _torn_read_detector(root, stop, errors):
    """Hammer the index with reads; any torn/inconsistent view is a bug."""
    import pathlib

    index_path = pathlib.Path(root) / "registry.json"
    while not stop.is_set():
        if not index_path.exists():
            continue
        try:
            index = json.loads(index_path.read_text())
        except json.JSONDecodeError as exc:
            errors.put(f"torn index read: {exc!r}")
            return
        versions = index.get("versions", {})
        for slot, version in index.get("slots", {}).items():
            if version not in versions:
                errors.put(f"slot {slot!r} dangles at {version!r}")
                return


class TestMultiprocessContention:
    def test_concurrent_import_promote_rollback_never_tears(
            self, tmp_path, fitted_pipeline):
        """N processes import/promote/rollback at once; the ``os.replace``
        index must never expose a torn or inconsistent read, and no
        version id may be lost or duplicated (the race the registry lock
        exists to prevent)."""
        import multiprocessing

        context = multiprocessing.get_context()
        root = tmp_path / "contended"
        artifact = tmp_path / "artifact.json"
        ModelRegistry.save_file(fitted_pipeline, artifact)

        n_workers, n_rounds = 3, 4
        errors = context.Queue()
        stop = context.Event()
        reader = context.Process(
            target=_torn_read_detector, args=(root, stop, errors)
        )
        reader.start()
        writers = [
            context.Process(
                target=_contend_worker,
                args=(root, artifact, n_rounds, idx, errors),
            )
            for idx in range(n_workers)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
        stop.set()
        reader.join(timeout=30)

        problems = []
        while not errors.empty():
            problems.append(errors.get())
        assert problems == []

        registry = ModelRegistry(root)
        versions = [entry.version for entry in registry.versions()]
        expected = n_workers * n_rounds * 2  # two imports per round
        assert len(versions) == expected
        assert versions == [f"v{i:04d}" for i in range(1, expected + 1)]
        # Every artifact is intact and loadable, and the slots resolve.
        for version in versions:
            registry.load(version)
        slots = registry.slots()
        assert slots[CHAMPION] in versions
