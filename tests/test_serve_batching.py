"""Tests for the micro-batching queue (repro.serve.batching)."""

import numpy as np
import pytest

from repro.serve.batching import MicroBatcher, Ticket


def _sum_scorer(rows: np.ndarray) -> np.ndarray:
    return rows.sum(axis=1)


class TestTicket:
    def test_starts_unresolved(self):
        ticket = Ticket()
        assert not ticket.done
        with pytest.raises(RuntimeError):
            ticket.score

    def test_resolves_once_flushed(self):
        batcher = MicroBatcher(_sum_scorer, max_batch_size=8)
        ticket = batcher.submit(np.array([1.0, 2.0]))
        assert not ticket.done
        batcher.flush()
        assert ticket.done
        assert ticket.score == 3.0


class TestMicroBatcher:
    def test_scores_match_vectorized_call(self, rng):
        rows = rng.standard_normal((17, 4))
        batcher = MicroBatcher(_sum_scorer, max_batch_size=100)
        tickets = [batcher.submit(row) for row in rows]
        batcher.flush()
        got = np.array([t.score for t in tickets])
        np.testing.assert_array_equal(got, _sum_scorer(rows))

    def test_auto_flush_at_max_batch_size(self, rng):
        calls = []

        def scorer(rows):
            calls.append(rows.shape[0])
            return _sum_scorer(rows)

        batcher = MicroBatcher(scorer, max_batch_size=4)
        tickets = [batcher.submit(row)
                   for row in rng.standard_normal((10, 3))]
        assert calls == [4, 4]          # two automatic flushes
        assert batcher.pending == 2
        assert all(t.done for t in tickets[:8])
        batcher.flush()
        assert calls == [4, 4, 2]
        assert all(t.done for t in tickets)

    def test_flush_empty_queue_returns_zero(self):
        batcher = MicroBatcher(_sum_scorer)
        assert batcher.flush() == 0
        assert batcher.batches_flushed == 0

    def test_counters(self, rng):
        batcher = MicroBatcher(_sum_scorer, max_batch_size=5)
        for row in rng.standard_normal((7, 2)):
            batcher.submit(row)
        batcher.flush()
        assert batcher.batches_flushed == 2
        assert batcher.rows_scored == 7
        assert batcher.pending == 0

    def test_rejects_non_row_input(self):
        batcher = MicroBatcher(_sum_scorer)
        with pytest.raises(ValueError):
            batcher.submit(np.zeros((2, 2)))

    def test_rejects_bad_scorer_shape(self):
        batcher = MicroBatcher(lambda rows: np.zeros(99), max_batch_size=8)
        batcher.submit(np.zeros(3))
        with pytest.raises(RuntimeError):
            batcher.flush()

    def test_rejects_bad_max_batch_size(self):
        with pytest.raises(ValueError):
            MicroBatcher(_sum_scorer, max_batch_size=0)
