"""Property-based tests (hypothesis) for the metric implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score, two_sample_ks
from repro.verify.harness import (
    assert_label_flip_symmetry,
    assert_monotone_transform_invariant,
    monotone_transforms,
)


def _labels_and_scores(min_size=4, max_size=120):
    """Strategy: binary labels with both classes + finite scores."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_size, max_size))
        labels = draw(
            hnp.arrays(np.int8, n, elements=st.integers(0, 1)).filter(
                lambda a: 0 < a.sum() < a.size
            )
        )
        scores = draw(
            hnp.arrays(
                np.float64,
                n,
                # Round to 6 decimals so affine transforms stay strictly
                # monotone in float arithmetic (no tiny-value collapse).
                elements=st.floats(-50, 50, allow_nan=False,
                                   allow_infinity=False).map(
                    lambda v: round(v, 6)
                ),
            )
        )
        return labels.astype(np.float64), scores

    return build()


class TestAucProperties:
    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_bounds(self, data):
        y, s = data
        assert 0.0 <= auc_score(y, s) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_score_negation_complements(self, data):
        """AUC(y, -s) == 1 - AUC(y, s)."""
        y, s = data
        assert auc_score(y, -s) == np.float64(1.0) - auc_score(y, s) or abs(
            auc_score(y, -s) - (1.0 - auc_score(y, s))
        ) < 1e-10

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_monotone_transform_invariance(self, data):
        y, s = data
        transformed = 2.0 * s + 7.0
        assert abs(auc_score(y, s) - auc_score(y, transformed)) < 1e-12

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_label_flip_complements(self, data):
        """Swapping the classes mirrors the AUC."""
        y, s = data
        assert abs(auc_score(1.0 - y, s) - (1.0 - auc_score(y, s))) < 1e-10

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_permutation_invariance(self, data):
        y, s = data
        perm = np.random.default_rng(0).permutation(y.size)
        assert abs(auc_score(y, s) - auc_score(y[perm], s[perm])) < 1e-12


class TestKsProperties:
    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_bounds(self, data):
        y, s = data
        assert 0.0 <= ks_score(y, s) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_best_orientation_recovers_two_sample_ks(self, data):
        """The signed KS of the better-oriented score equals the unsigned
        two-sample distance between the class score distributions."""
        y, s = data
        expected = two_sample_ks(s[y == 1], s[y == 0])
        best = max(ks_score(y, s), ks_score(y, -s))
        assert abs(best - expected) < 1e-10

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_signed_ks_below_two_sample(self, data):
        """The signed KS never exceeds the unsigned CDF distance."""
        y, s = data
        assert ks_score(y, s) <= two_sample_ks(s[y == 1], s[y == 0]) + 1e-10

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_perfect_auc_implies_perfect_ks(self, data):
        """When the classes are perfectly separated, KS is also 1."""
        y, s = data
        if auc_score(y, s) == 1.0:
            assert ks_score(y, s) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_ks_positive_when_auc_above_half(self, data):
        """A positively-informative AUC requires a non-zero signed KS."""
        y, s = data
        if auc_score(y, s) > 0.5 + 1e-9:
            assert ks_score(y, s) > 0.0


class TestMetamorphicRelations:
    """The shared `repro.verify.harness` relations over randomized fixtures.

    These go beyond the single affine transform above: every transform in
    the harness catalogue (affine, cubic, scaled exponential, rank) must
    leave KS and AUC unchanged, and both label-flip identities must hold.
    """

    def test_transform_catalogue_is_nontrivial(self):
        names = [name for name, _ in monotone_transforms()]
        assert "affine" in names
        assert len(names) >= 3

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_ks_invariant_under_monotone_transforms(self, data):
        assert_monotone_transform_invariant(ks_score, *data)

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_auc_invariant_under_monotone_transforms(self, data):
        assert_monotone_transform_invariant(auc_score, *data)

    @settings(max_examples=60, deadline=None)
    @given(_labels_and_scores())
    def test_label_flip_antisymmetry(self, data):
        """AUC(1-y, s) = 1 - AUC(y, s) and KS(1-y, s) = KS(y, -s)."""
        assert_label_flip_symmetry(*data)
