"""Tests for the save_pipeline/load_pipeline deprecation shims."""

import warnings

import numpy as np
import pytest

from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
from repro.persist import (
    load_pipeline,
    pipeline_to_payload,
    save_pipeline,
    scoring_model_from_payload,
)
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.serve.registry import ModelRegistry


class TestShimsWarnButWork:
    def test_save_pipeline_warns(self, tmp_path, fitted_pipeline):
        with pytest.warns(DeprecationWarning, match="save_pipeline"):
            save_pipeline(fitted_pipeline, tmp_path / "m.json")
        assert (tmp_path / "m.json").exists()

    def test_load_pipeline_warns(self, tmp_path, fitted_pipeline):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            save_pipeline(fitted_pipeline, tmp_path / "m.json")
        with pytest.warns(DeprecationWarning, match="load_pipeline"):
            load_pipeline(tmp_path / "m.json")

    def test_shim_scores_match_canonical_surface(self, tmp_path,
                                                 fitted_pipeline,
                                                 small_split):
        path = tmp_path / "m.json"
        with pytest.warns(DeprecationWarning):
            save_pipeline(fitted_pipeline, path, metadata={"via": "shim"})
        with pytest.warns(DeprecationWarning):
            via_shim = load_pipeline(path)
        via_registry = ModelRegistry.load_file(path)
        assert via_shim.metadata == via_registry.metadata == {"via": "shim"}
        np.testing.assert_array_equal(
            via_shim.predict_proba(small_split.test.features),
            via_registry.predict_proba(small_split.test.features),
        )

    def test_old_artifact_loads_on_new_surface(self, tmp_path,
                                               fitted_pipeline, small_split):
        """Files written pre-registry keep working (format unchanged)."""
        old_path = tmp_path / "legacy.json"
        with pytest.warns(DeprecationWarning):
            save_pipeline(fitted_pipeline, old_path)
        model = ModelRegistry.load_file(old_path)
        np.testing.assert_array_equal(
            model.predict_proba(small_split.test.features),
            fitted_pipeline.predict_proba(small_split.test),
        )


class TestPayloadCodecs:
    def test_payload_round_trip(self, fitted_pipeline, small_split):
        payload = pipeline_to_payload(fitted_pipeline, metadata={"k": "v"})
        model = scoring_model_from_payload(payload)
        assert model.metadata == {"k": "v"}
        np.testing.assert_array_equal(
            model.predict_proba(small_split.test.features),
            fitted_pipeline.predict_proba(small_split.test),
        )

    def test_unfitted_pipeline_rejected(self, fitted_pipeline):
        fresh = LoanDefaultPipeline(fitted_pipeline.trainer,
                                    extractor=fitted_pipeline.extractor)
        with pytest.raises(RuntimeError):
            pipeline_to_payload(fresh)

    def test_per_environment_head_rejected(self, small_split,
                                           fitted_extractor):
        pipeline = LoanDefaultPipeline(
            FineTuneTrainer(FineTuneConfig(n_epochs=2)),
            extractor=fitted_extractor,
        )
        pipeline.fit(small_split.train)
        with pytest.raises(ValueError, match="per-environment"):
            pipeline_to_payload(pipeline)

    def test_bad_version_rejected(self, fitted_pipeline):
        payload = pipeline_to_payload(fitted_pipeline)
        payload["version"] = -1
        with pytest.raises(ValueError):
            scoring_model_from_payload(payload)
