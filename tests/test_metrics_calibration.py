"""Unit tests for threshold/operating metrics (Fig 5 machinery)."""

import numpy as np
import pytest

from repro.metrics.calibration import (
    bad_debt_rate,
    confusion_at_threshold,
    false_positive_rate,
    refusal_rate,
    threshold_sweep,
)

Y = np.array([0, 0, 0, 0, 1, 1])
S = np.array([0.1, 0.2, 0.6, 0.3, 0.7, 0.4])


class TestConfusion:
    def test_counts_at_half(self):
        c = confusion_at_threshold(Y, S, 0.5)
        assert (c.true_positive, c.false_positive) == (1, 1)
        assert (c.true_negative, c.false_negative) == (3, 1)
        assert c.total == 6
        assert c.n_refused == 2
        assert c.n_approved == 4

    def test_threshold_zero_refuses_all(self):
        c = confusion_at_threshold(Y, S, 0.0)
        assert c.n_refused == 6
        assert c.n_approved == 0

    def test_threshold_above_max_approves_all(self):
        c = confusion_at_threshold(Y, S, 1.1)
        assert c.n_approved == 6


class TestRates:
    def test_false_positive_rate(self):
        assert false_positive_rate(Y, S, 0.5) == pytest.approx(1 / 4)

    def test_bad_debt_rate(self):
        # One default among 4 approved loans.
        assert bad_debt_rate(Y, S, 0.5) == pytest.approx(1 / 4)

    def test_bad_debt_zero_when_all_refused(self):
        assert bad_debt_rate(Y, S, 0.0) == 0.0

    def test_bad_debt_equals_base_rate_when_all_approved(self):
        assert bad_debt_rate(Y, S, 1.1) == pytest.approx(Y.mean())

    def test_refusal_rate(self):
        assert refusal_rate(Y, S, 0.5) == pytest.approx(2 / 6)

    def test_good_model_cuts_bad_debt(self, rng):
        y = rng.integers(0, 2, 2000).astype(float)
        scores = np.clip(0.7 * y + 0.3 * rng.random(2000), 0, 1)
        assert bad_debt_rate(y, scores, 0.5) < y.mean()


class TestThresholdSweep:
    def test_sweep_shapes_and_monotonicity(self):
        curves = threshold_sweep(Y, S)
        n = curves["thresholds"].size
        assert all(curves[k].size == n for k in curves)
        # Raising the threshold can only approve more loans.
        assert np.all(np.diff(curves["refusal_rate"]) <= 1e-12)

    def test_custom_thresholds(self):
        curves = threshold_sweep(Y, S, thresholds=np.array([0.25, 0.5]))
        assert curves["thresholds"].tolist() == [0.25, 0.5]
        assert curves["bad_debt_rate"][1] == pytest.approx(1 / 4)
