"""Unit tests for the dataset containers."""

import numpy as np
import pytest

from repro.data.dataset import EnvironmentData, LoanDataset, group_by_environment
from repro.data.schema import build_schema


def _tiny_dataset():
    schema = build_schema(total_features=30, n_spurious=2)
    n = 20
    rng = np.random.default_rng(0)
    return LoanDataset(
        features=rng.standard_normal((n, schema.n_features)),
        labels=rng.integers(0, 2, n).astype(float),
        provinces=np.array(["A"] * 12 + ["B"] * 8, dtype=object),
        years=np.array([2016] * 10 + [2020] * 10),
        halves=np.array([1, 2] * 10),
        schema=schema,
    )


class TestLoanDataset:
    def test_basic_properties(self):
        data = _tiny_dataset()
        assert data.n_samples == 20
        assert data.n_features == 30
        assert data.province_names() == ["A", "B"]
        assert 0 <= data.default_rate <= 1

    def test_immutable(self):
        data = _tiny_dataset()
        with pytest.raises(ValueError):
            data.features[0, 0] = 99.0
        with pytest.raises(ValueError):
            data.labels[0] = 1.0

    def test_filter_years(self):
        data = _tiny_dataset()
        assert data.filter_years((2016,)).n_samples == 10
        assert data.filter_years((2016, 2020)).n_samples == 20

    def test_filter_province(self):
        data = _tiny_dataset()
        assert data.filter_province("B").n_samples == 8

    def test_filter_half(self):
        data = _tiny_dataset()
        assert data.filter_half(1).n_samples == 10

    def test_environments_partition_rows(self):
        data = _tiny_dataset()
        envs = data.environments()
        assert sum(e.n_samples for e in envs) == data.n_samples
        assert [e.name for e in envs] == ["A", "B"]

    def test_select_by_mask_and_indices(self):
        data = _tiny_dataset()
        by_mask = data.select(data.provinces == "A")
        by_idx = data.select(np.flatnonzero(data.provinces == "A"))
        np.testing.assert_array_equal(by_mask.features, by_idx.features)

    def test_province_share_by_year_sums_to_one(self):
        data = _tiny_dataset()
        for year, shares in data.province_share_by_year().items():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_shape_validation(self):
        schema = build_schema(total_features=30, n_spurious=2)
        good = np.zeros((5, schema.n_features))
        with pytest.raises(ValueError, match="labels"):
            LoanDataset(good, np.zeros(4), np.array(["A"] * 5),
                        np.full(5, 2016), np.ones(5, dtype=int), schema)
        with pytest.raises(ValueError, match="columns"):
            LoanDataset(np.zeros((5, 3)), np.zeros(5), np.array(["A"] * 5),
                        np.full(5, 2016), np.ones(5, dtype=int), schema)
        with pytest.raises(ValueError, match="halves"):
            LoanDataset(good, np.zeros(5), np.array(["A"] * 5),
                        np.full(5, 2016), np.full(5, 3), schema)

    def test_repr_readable(self):
        assert "LoanDataset" in repr(_tiny_dataset())


class TestEnvironmentData:
    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            EnvironmentData("x", np.zeros((3, 2)), np.zeros(4))

    def test_default_rate(self):
        env = EnvironmentData("x", np.zeros((4, 2)),
                              np.array([0.0, 1.0, 1.0, 0.0]))
        assert env.default_rate == 0.5


class TestGroupByEnvironment:
    def test_groups_and_sorts(self):
        x = np.arange(12.0).reshape(6, 2)
        y = np.array([0, 1, 0, 1, 0, 1], dtype=float)
        g = np.array(["b", "a", "b", "a", "b", "a"])
        grouped = group_by_environment(x, y, g)
        assert list(grouped) == ["a", "b"]
        assert grouped["a"].n_samples == 3
        np.testing.assert_array_equal(grouped["a"].labels, [1, 1, 1])
