"""Unit tests for the joint-search benchmark payload and validation."""

import json

import pytest

from repro.perfbench.tune import (
    TUNE_BENCH_FORMAT,
    TuneBenchConfig,
    summarize_tune,
    validate_tune_payload,
)


def make_payload():
    joint = {
        "trainer": "ERM",
        "n_trials": 8,
        "n_extractors": 2,
        "trial_evaluations": 12,
        "trials_per_extractor": 6.0,
        "cached": {
            "wall_s": 1.0, "encode_s": 0.4, "hits": 10, "misses": 2,
            "hit_rate": 10 / 12, "published_bytes": 300_000,
            "evictions": 0,
        },
        "uncached": {"wall_s": 2.5, "encode_s": 2.4},
        "encode_seconds_saved": 2.0,
        "encode_speedup": 6.0,
        "wall_speedup": 2.5,
        "bit_identical": True,
    }
    return {
        "format": TUNE_BENCH_FORMAT,
        "config": {"n_trials": 8},
        "machine": {"python": "3.x"},
        "benchmarks": {"joint_search": joint},
    }


class TestValidation:
    def test_valid_payload_passes(self):
        payload = make_payload()
        assert validate_tune_payload(payload) is payload

    def test_round_trips_through_json(self):
        payload = json.loads(json.dumps(make_payload()))
        validate_tune_payload(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="not a JSON object"):
            validate_tune_payload([1, 2])

    def test_missing_top_keys_rejected(self):
        payload = make_payload()
        payload.pop("machine")
        with pytest.raises(ValueError, match="missing keys.*machine"):
            validate_tune_payload(payload)

    def test_wrong_format_rejected(self):
        payload = make_payload()
        payload["format"] = 99
        with pytest.raises(ValueError, match="format"):
            validate_tune_payload(payload)

    def test_missing_joint_fields_rejected(self):
        payload = make_payload()
        payload["benchmarks"]["joint_search"].pop("encode_speedup")
        with pytest.raises(ValueError, match="encode_speedup"):
            validate_tune_payload(payload)

    def test_mismatched_leaderboards_rejected(self):
        payload = make_payload()
        payload["benchmarks"]["joint_search"]["bit_identical"] = False
        with pytest.raises(ValueError, match="disagree"):
            validate_tune_payload(payload)

    def test_inert_cache_rejected(self):
        payload = make_payload()
        payload["benchmarks"]["joint_search"]["cached"]["hits"] = 0
        with pytest.raises(ValueError, match="zero hits"):
            validate_tune_payload(payload)


class TestConfig:
    def test_tracked_config_amortises_enough(self):
        """The tracked configuration must give the cache >= 4 trials per
        distinct extractor (the acceptance floor for the 2x claim)."""
        config = TuneBenchConfig()
        # eta=2 over budgets [4, 8]: rung 0 evaluates all trials, rung 1
        # the surviving half.
        evaluations = config.n_trials + config.n_trials // config.eta
        assert evaluations / config.n_extractors >= 4

    def test_smoke_shrinks_but_keeps_shape(self):
        smoke = TuneBenchConfig.smoke()
        assert smoke.n_samples < TuneBenchConfig().n_samples
        assert smoke.n_extractors >= 2
        assert smoke.n_trials / smoke.n_extractors >= 2


class TestSummary:
    def test_summary_renders(self):
        text = summarize_tune(make_payload()["benchmarks"])
        assert "bit-identical" in text
        assert "hit-rate 0.83" in text
        assert "encode speedup  6.00x" in text
