"""Smoke tests for the paper-scale benchmark suite and its JSON schema."""

import dataclasses
import json

import pytest

from repro.perfbench.scale import (
    ScaleBenchConfig,
    run_scale_point,
    run_scale_suite,
    summarize_scale,
    validate_scale_payload,
    write_scale_bench_json,
)


@pytest.fixture(scope="module")
def tiny_config():
    return dataclasses.replace(
        ScaleBenchConfig.smoke(),
        row_counts=(3_000,),
        total_features=26,
        n_spurious=4,
        chunk_rows=512,
        sample_rows=2_000,
    )


@pytest.fixture(scope="module")
def point(tiny_config):
    return run_scale_point(3_000, tiny_config)


class TestScalePoint:
    def test_stage_timings_present_and_positive(self, point):
        for stage in ("generate_pack_s", "gbdt_fit_s", "leaf_encode_s",
                      "lr_head_s", "total_s"):
            assert point[stage] >= 0.0
        total = (point["generate_pack_s"] + point["gbdt_fit_s"]
                 + point["leaf_encode_s"] + point["lr_head_s"])
        assert point["total_s"] == pytest.approx(total, rel=1e-6)

    def test_memory_fields(self, point):
        assert point["packed_bytes"] > 0
        assert point["naive_materialised_bytes"] == 3_000 * 26 * 8
        assert point["rss_source"] in ("getrusage", "tracemalloc")
        # The packed uint8 layout beats the float64 matrix by ~8x.
        assert point["packed_bytes"] < point["naive_materialised_bytes"]

    def test_design_and_environments(self, point):
        assert point["design_nnz"] == 3_000 * 3  # n_rows * n_trees
        assert point["design_index_dtype"] == "int32"
        assert point["n_environments"] >= 2
        assert point["dtype"] == "float32"


class TestScaleSuite:
    def test_in_process_suite_and_payload_round_trip(self, tiny_config,
                                                     tmp_path):
        results = run_scale_suite(tiny_config, isolate=False)
        assert set(results) == {"3000"}
        assert results["3000"]["isolated"] is False

        tolerance = {"passed": True, "auc_delta": 0.0, "ks_delta": 0.0}
        path = tmp_path / "BENCH_scale.json"
        payload = write_scale_bench_json(path, results, tiny_config,
                                         tolerance)
        validate_scale_payload(payload)
        validate_scale_payload(json.loads(path.read_text()))
        assert "rows" in summarize_scale(results)

    def test_isolated_point_measures_its_own_process(self, tiny_config):
        results = run_scale_suite(tiny_config, isolate=True)
        entry = results["3000"]
        assert entry["isolated"] is True
        if entry["rss_source"] == "getrusage":
            # A fresh subprocess peak: far below this (pytest) process.
            assert entry["peak_rss_bytes"] > 0

    def test_save_model_produces_a_servable_artifact(self, tiny_config,
                                                     tmp_path):
        from repro.serve.registry import ModelRegistry

        artifact = tmp_path / "scale_model.json"
        run_scale_suite(tiny_config, isolate=False,
                        save_model=str(artifact))
        model = ModelRegistry.load_file(artifact)
        assert model.metadata["bench"] == "scale"
        assert model.metadata["scale_rows"] == 3_000

        import numpy as np
        rows = np.zeros((5, 26))
        proba = model.predict_proba(rows)
        assert proba.shape == (5,)
        assert np.isfinite(proba).all()


class TestValidation:
    def test_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="format"):
            validate_scale_payload({"format": 99})
        with pytest.raises(ValueError, match="no benchmark points"):
            validate_scale_payload({
                "format": 1, "config": {}, "machine": {},
                "tolerance": {"passed": True}, "benchmarks": {},
            })
        with pytest.raises(ValueError, match="missing"):
            validate_scale_payload({
                "format": 1, "config": {}, "machine": {},
                "tolerance": {"passed": True},
                "benchmarks": {"100": {"n_rows": 100}},
            })
