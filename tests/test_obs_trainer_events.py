"""Every registered trainer must leave a schema-conforming trace.

The observability contract: fitting any trainer from the registry with a
tracer attached produces (a) a ``fit`` span labelled with the trainer
name, (b) one ``epoch`` event per epoch carrying the convergence fields,
and (c) ``step:<name>`` spans that let the report layer reconstruct the
Table III per-step timings.  Tracing must never perturb the training
itself.
"""

import collections

import numpy as np
import pytest

from repro.eval.tracking import KSTrackingCallback
from repro.models.logistic import LogisticModel
from repro.obs.report import timing_tables
from repro.obs.runlog import RunLog, validate_record
from repro.obs.tracer import Tracer
from repro.timing import STEP_NAMES
from repro.train.registry import (
    available_trainers,
    make_trainer,
    penalty_parameter,
)

N_EPOCHS = 3


def _traced_fit(name, tiny_envs, n_epochs=N_EPOCHS, **overrides):
    trainer = make_trainer(name, n_epochs=n_epochs, seed=0, **overrides)
    tracer = Tracer()
    result = trainer.fit(tiny_envs, tracer=tracer)
    return result, tracer


class TestEventSchemaAllTrainers:
    @pytest.mark.parametrize("name", available_trainers())
    def test_fit_span_and_epoch_events(self, name, tiny_envs):
        _, tracer = _traced_fit(name, tiny_envs)
        records = tracer.records
        for record in records:
            validate_record(record)

        fit_spans = [
            r for r in records if r["kind"] == "span" and r["name"] == "fit"
        ]
        assert len(fit_spans) == 1
        assert fit_spans[0]["fields"]["trainer"] == name
        assert fit_spans[0]["fields"]["n_environments"] == len(tiny_envs)

        epoch_events = [
            r for r in records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        assert len(epoch_events) == N_EPOCHS
        env_names = {env.name for env in tiny_envs}
        for i, event in enumerate(epoch_events):
            fields = event["fields"]
            assert fields["trainer"] == name
            assert fields["epoch"] == i
            assert np.isfinite(fields["objective"])
            assert set(fields["env_losses"]) == env_names
            assert all(np.isfinite(v) for v in fields["env_losses"].values())
            assert np.isfinite(fields["grad_norm"])

    @pytest.mark.parametrize("name", available_trainers())
    def test_penalty_field_present_for_penalised_trainers(
        self, name, tiny_envs
    ):
        _, tracer = _traced_fit(name, tiny_envs)
        epoch_fields = [
            r["fields"] for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        if penalty_parameter(name) is not None:
            assert all("penalty" in f for f in epoch_fields)
            assert all(f["penalty"] >= 0 for f in epoch_fields)
        else:
            assert all("penalty" not in f for f in epoch_fields)

    @pytest.mark.parametrize("name", available_trainers())
    def test_epoch_events_mirror_history(self, name, tiny_envs):
        result, tracer = _traced_fit(name, tiny_envs)
        epoch_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        for event, objective in zip(epoch_events, result.history.objective):
            assert event["fields"]["objective"] == pytest.approx(objective)


class TestTimingReconstruction:
    def test_lightmirm_table_iii_from_log_alone(self, tiny_envs):
        _, tracer = _traced_fit("LightMIRM", tiny_envs, n_epochs=4)
        tables = timing_tables(RunLog(tracer.records))
        by_label = {t.label: t for t in tables}
        assert "LightMIRM" in by_label
        table = by_label["LightMIRM"]
        assert table.n_epochs == 4
        assert set(table.mean_step_seconds) == set(STEP_NAMES)
        # The three substantive Algorithm 2 steps must have measured time.
        for step in ("inner_optimization", "calculating_meta_losses",
                     "backward_propagation"):
            assert table.mean_step_seconds[step] > 0
        assert table.mean_epoch_seconds > 0

    def test_epoch_time_events_emitted(self, tiny_envs):
        _, tracer = _traced_fit("LightMIRM", tiny_envs, n_epochs=4)
        epoch_times = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch_time"
        ]
        assert len(epoch_times) == 4
        assert all(r["fields"]["seconds"] > 0 for r in epoch_times)


class TestLightMIRMExtras:
    def test_meta_fields_present(self, tiny_envs):
        _, tracer = _traced_fit("LightMIRM", tiny_envs)
        env_names = {env.name for env in tiny_envs}
        epoch_fields = [
            r["fields"] for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        assert len(epoch_fields) == N_EPOCHS
        for fields in epoch_fields:
            assert np.isfinite(fields["meta_loss_total"])
            assert set(fields["meta_losses"]) == env_names
            assert len(fields["sampled_envs"]) == len(tiny_envs)
            assert 0 < fields["mrq_occupancy"] <= 1
            assert fields["mrq_decay_mass"] > 0

    def test_mrq_diagnostics_monotone_while_filling(self, tiny_envs):
        """Occupancy and decay mass grow until the queues saturate."""
        _, tracer = _traced_fit("LightMIRM", tiny_envs, n_epochs=8,
                                queue_length=5)
        epoch_fields = [
            r["fields"] for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        occupancy = [f["mrq_occupancy"] for f in epoch_fields]
        mass = [f["mrq_decay_mass"] for f in epoch_fields]
        assert occupancy == sorted(occupancy)
        assert mass == sorted(mass)
        # 8 epochs with queue length 5: every queue is full at the end.
        assert occupancy[-1] == pytest.approx(1.0)
        assert occupancy[4] == pytest.approx(1.0)

    def test_sampled_env_never_self(self, tiny_envs):
        _, tracer = _traced_fit("LightMIRM", tiny_envs, n_epochs=20)
        names = [env.name for env in tiny_envs]
        for record in tracer.records:
            if record["kind"] == "event" and record["name"] == "epoch":
                sampled = record["fields"]["sampled_envs"]
                for own, other in zip(names, sampled):
                    assert other != own
                    assert other in names

    def test_sampling_is_uniform_over_other_environments(self, tiny_envs):
        """Algorithm 2 line 8: s_m is uniform over the other environments.

        With 3 environments and E epochs, each (m, other) pair is a
        Binomial(E, 1/2): E=240 keeps a +-25% band at more than 5 sigma,
        so this is a deterministic regression test, not a flaky one.
        """
        n_epochs = 240
        _, tracer = _traced_fit("LightMIRM", tiny_envs, n_epochs=n_epochs)
        names = [env.name for env in tiny_envs]
        pair_counts: collections.Counter = collections.Counter()
        for record in tracer.records:
            if record["kind"] == "event" and record["name"] == "epoch":
                for own, other in zip(names, record["fields"]["sampled_envs"]):
                    pair_counts[(own, other)] += 1
        assert sum(pair_counts.values()) == n_epochs * len(names)
        for own in names:
            for other in names:
                if other == own:
                    assert (own, other) not in pair_counts
                    continue
                count = pair_counts[(own, other)]
                assert 0.75 * n_epochs / 2 <= count <= 1.25 * n_epochs / 2, (
                    f"sampling of {other} from {own} not uniform: "
                    f"{count}/{n_epochs}"
                )


class TestFineTuneTrace:
    def test_finetune_span_and_env_events(self, tiny_envs):
        _, tracer = _traced_fit("ERM + fine-tuning", tiny_envs)
        spans = [r for r in tracer.records if r["kind"] == "span"]
        assert any(
            s["name"] == "finetune"
            and s["fields"]["trainer"] == "ERM + fine-tuning"
            for s in spans
        )
        env_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "finetune_env"
        ]
        assert [e["fields"]["environment"] for e in env_events] == [
            env.name for env in tiny_envs
        ]
        assert all(
            np.isfinite(e["fields"]["final_loss"]) for e in env_events
        )

    def test_base_phase_attributed_to_finetune_name(self, tiny_envs):
        _, tracer = _traced_fit("ERM + fine-tuning", tiny_envs)
        epoch_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        assert epoch_events
        assert all(
            e["fields"]["trainer"] == "ERM + fine-tuning"
            for e in epoch_events
        )


class TestTracingDoesNotPerturbTraining:
    @pytest.mark.parametrize(
        "name", ["ERM", "Group DRO", "meta-IRM", "LightMIRM"]
    )
    def test_theta_identical_with_and_without_tracer(self, name, tiny_envs):
        plain = make_trainer(name, n_epochs=5, seed=0).fit(tiny_envs)
        traced, _ = _traced_fit(name, tiny_envs, n_epochs=5)
        np.testing.assert_array_equal(plain.theta, traced.theta)


class TestKSTrackingEvents:
    def test_tracked_epochs_emit_events(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        tracer = Tracer()
        callback = KSTrackingCallback(model, tiny_envs, every=2,
                                      tracer=tracer)
        theta = model.init_params(0)
        for epoch in range(5):
            callback(epoch, theta)
        events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "ks_tracking"
        ]
        assert [e["fields"]["epoch"] for e in events] == [0, 2, 4]
        assert all(e["fields"]["statistic"] == "mean" for e in events)
        assert [e["fields"]["ks"] for e in events] == [
            value for _, value in callback.curve
        ]

    def test_default_callback_stays_silent(self, tiny_envs):
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs)
        assert callback.tracer.enabled is False
        assert callback(0, model.init_params(0)) is not None

    def test_through_trainer_fit(self, tiny_envs):
        tracer = Tracer()
        trainer = make_trainer("ERM", n_epochs=4, seed=0)
        model = LogisticModel(tiny_envs[0].features.shape[1])
        callback = KSTrackingCallback(model, tiny_envs, tracer=tracer)
        trainer.fit(tiny_envs, callback=callback, tracer=tracer)
        ks_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "ks_tracking"
        ]
        assert len(ks_events) == 4
        # Tracked values also land in the epoch events' "tracked" field.
        epoch_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch"
        ]
        assert all("tracked" in e["fields"] for e in epoch_events)
