"""Unit tests for the shared metric primitives (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_VALUE_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="counters only go up"):
            Counter().inc(-1)

    def test_zero_increment_allowed(self):
        counter = Counter()
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_overwrites_and_casts_to_float(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(3)
        assert gauge.value == 3.0
        assert isinstance(gauge.value, float)
        gauge.set(-1.5)
        assert gauge.value == -1.5


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="non-empty and increasing"):
            Histogram(())
        with pytest.raises(ValueError, match="non-empty and increasing"):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="non-empty and increasing"):
            Histogram((2.0, 1.0))

    def test_bucketing_is_inclusive_of_upper_bound(self):
        hist = Histogram((1.0, 2.0, 3.0))
        hist.observe(0.5)   # below first bound -> bucket 0
        hist.observe(1.0)   # on the bound -> that bucket
        hist.observe(2.5)
        hist.observe(99.0)  # above last bound -> overflow
        buckets = hist.bucket_counts()
        assert buckets == {
            "le_1": 2, "le_2": 0, "le_3": 1, "overflow": 1
        }

    def test_count_mean_total_exact(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.25, 0.5, 4.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(4.75)
        assert hist.mean == pytest.approx(4.75 / 3)

    def test_empty_histogram_reads_zero(self):
        hist = Histogram((1.0,))
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_rejects_non_finite(self):
        hist = Histogram((1.0,))
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="non-finite"):
                hist.observe(bad)
        assert hist.count == 0

    def test_percentile_is_conservative_upper_bound(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(3.0)
        assert hist.percentile(50) == 1.0
        assert hist.percentile(99) == 1.0
        assert hist.percentile(100) == 4.0

    def test_percentile_overflow_reports_last_finite_bound(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(50.0)
        assert hist.percentile(50) == 2.0

    def test_percentile_validates_q(self):
        hist = Histogram((1.0,))
        for bad in (0, -5, 101):
            with pytest.raises(ValueError, match="q must be in"):
                hist.percentile(bad)

    def test_snapshot_shape(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean", "p50", "p95", "p99", "buckets"}
        assert snap["count"] == 1
        assert len(snap["buckets"]) == 3  # two finite buckets + overflow

    def test_default_value_buckets_are_increasing(self):
        assert list(DEFAULT_VALUE_BUCKETS) == sorted(DEFAULT_VALUE_BUCKETS)
        Histogram(DEFAULT_VALUE_BUCKETS)  # must construct


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_cross_kind_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("shared")
        with pytest.raises(ValueError, match="already exists as a counter"):
            registry.gauge("shared")
        with pytest.raises(ValueError, match="already exists as a counter"):
            registry.histogram("shared")
        registry.gauge("g")
        with pytest.raises(ValueError, match="already exists as a gauge"):
            registry.counter("g")

    def test_snapshot_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc()
        registry.gauge("level").set(0.5)
        registry.histogram("lat").observe(0.01)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"level": 0.5}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
