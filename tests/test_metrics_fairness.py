"""Unit tests for per-environment fairness aggregation."""

import numpy as np
import pytest

from repro.metrics.fairness import (
    EnvironmentScores,
    FairnessReport,
    evaluate_environments,
    scorable_environments,
)


def _make_env(rng, n, signal):
    y = rng.integers(0, 2, n).astype(float)
    y[:2] = [0, 1]
    s = signal * y + rng.standard_normal(n)
    return y, s


class TestEvaluateEnvironments:
    def test_mean_and_worst_aggregation(self, rng):
        labels, scores = {}, {}
        for name, signal in (("good", 5.0), ("bad", 0.2)):
            y, s = _make_env(rng, 400, signal)
            labels[name], scores[name] = y, s
        report = evaluate_environments(labels, scores)
        per = report.per_environment
        assert report.mean_ks == pytest.approx(
            (per["good"].ks + per["bad"].ks) / 2
        )
        assert report.worst_ks == per["bad"].ks
        assert report.worst_ks_environment == "bad"
        assert report.worst_auc == per["bad"].auc
        assert 0 < report.ks_spread() < 1

    def test_summary_keys(self, rng):
        y, s = _make_env(rng, 100, 1.0)
        report = evaluate_environments({"e": y}, {"e": s})
        assert set(report.summary()) == {"mKS", "wKS", "mAUC", "wAUC"}

    def test_single_class_env_skipped(self, rng):
        y, s = _make_env(rng, 100, 1.0)
        labels = {"ok": y, "degenerate": np.zeros(50)}
        scores = {"ok": s, "degenerate": np.zeros(50)}
        report = evaluate_environments(labels, scores)
        assert report.skipped == ("degenerate",)
        assert list(report.per_environment) == ["ok"]

    def test_all_degenerate_raises(self):
        with pytest.raises(ValueError, match="no environment"):
            evaluate_environments({"a": np.zeros(10)}, {"a": np.zeros(10)})

    def test_mismatched_keys_raise(self, rng):
        y, s = _make_env(rng, 100, 1.0)
        with pytest.raises(ValueError, match="disagree"):
            evaluate_environments({"a": y}, {"b": s})

    def test_environments_sorted_by_name(self, rng):
        labels, scores = {}, {}
        for name in ("zeta", "alpha", "mid"):
            y, s = _make_env(rng, 80, 2.0)
            labels[name], scores[name] = y, s
        report = evaluate_environments(labels, scores)
        assert list(report.per_environment) == ["alpha", "mid", "zeta"]


class TestScorableEnvironments:
    def test_filters_by_min_class_count(self):
        labels = {
            "full": np.array([0, 0, 1, 1]),
            "one_pos": np.array([0, 0, 0, 1]),
            "empty_pos": np.zeros(4),
        }
        assert scorable_environments(labels, min_class_count=2) == ["full"]
        assert set(scorable_environments(labels, min_class_count=1)) == {
            "full",
            "one_pos",
        }


class TestFairnessReport:
    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            FairnessReport(per_environment={})

    def test_default_rate(self):
        scores = EnvironmentScores("e", ks=0.5, auc=0.7, n_samples=10,
                                   n_positive=3)
        assert scores.default_rate == pytest.approx(0.3)
