"""Unit tests for the IRMv1 baseline."""

import numpy as np
import pytest

from repro.baselines.irmv1 import (
    IRMv1Config,
    IRMv1Trainer,
    dummy_gradient_and_penalty_grad,
)
from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel, sigmoid


def _env(rng, n=80, d=5, coef_scale=1.0):
    x = rng.standard_normal((n, d))
    logit = coef_scale * (1.5 * x[:, 0] - x[:, 1])
    y = (rng.random(n) < sigmoid(logit)).astype(float)
    y[:2] = [0, 1]
    return EnvironmentData("e", x, y)


class TestDummyGradient:
    def test_matches_finite_difference(self, rng):
        """D_e must equal d/dw R(w*theta) at w = 1 by finite differences."""
        env = _env(rng)
        model = LogisticModel(5, l2=0.0)
        theta = 0.4 * rng.standard_normal(5)
        dummy, _ = dummy_gradient_and_penalty_grad(model, theta, env)

        def risk_at_w(w):
            return model.loss(w * theta, env.features, env.labels)

        eps = 1e-6
        fd = (risk_at_w(1 + eps) - risk_at_w(1 - eps)) / (2 * eps)
        assert dummy == pytest.approx(fd, abs=1e-6)

    def test_penalty_gradient_matches_finite_difference(self, rng):
        env = _env(rng)
        model = LogisticModel(5, l2=0.0)
        theta = 0.4 * rng.standard_normal(5)
        _, penalty_grad = dummy_gradient_and_penalty_grad(model, theta, env)

        def penalty(t):
            d, _ = dummy_gradient_and_penalty_grad(model, t, env)
            return d**2

        eps = 1e-6
        fd = np.zeros_like(theta)
        for i in range(theta.size):
            up, down = theta.copy(), theta.copy()
            up[i] += eps
            down[i] -= eps
            fd[i] = (penalty(up) - penalty(down)) / (2 * eps)
        np.testing.assert_allclose(penalty_grad, fd, atol=1e-5)


class TestTraining:
    def test_learns_signal(self, tiny_envs):
        result = IRMv1Trainer(
            IRMv1Config(n_epochs=150, learning_rate=1.0, penalty_weight=1.0)
        ).fit(tiny_envs)
        assert result.theta[0] > 0.3
        assert result.theta[1] < -0.1

    def test_objective_decreases(self, tiny_envs):
        result = IRMv1Trainer(
            IRMv1Config(n_epochs=60, learning_rate=0.5)
        ).fit(tiny_envs)
        assert result.history.objective[-1] < result.history.objective[0]

    def test_zero_penalty_is_equal_weighted_erm(self, tiny_envs):
        from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer

        irm = IRMv1Trainer(
            IRMv1Config(n_epochs=40, learning_rate=0.5, penalty_weight=0.0)
        ).fit(tiny_envs)
        up = UpSamplingTrainer(
            UpSamplingConfig(n_epochs=40, learning_rate=0.5, power=0.0)
        ).fit(tiny_envs)
        np.testing.assert_allclose(irm.theta, up.theta, atol=1e-8)

    def test_penalty_weight_constrains_invariance_violation(self, tiny_envs):
        """A heavily-penalised run must end with a smaller invariance
        violation than an unpenalised run of the same budget."""

        def final_penalty(weight):
            result = IRMv1Trainer(
                IRMv1Config(n_epochs=120, learning_rate=0.5,
                            penalty_weight=weight)
            ).fit(tiny_envs)
            return sum(
                dummy_gradient_and_penalty_grad(
                    result.model, result.theta, e
                )[0] ** 2
                for e in tiny_envs
            )

        assert final_penalty(20.0) < final_penalty(0.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            IRMv1Config(penalty_weight=-1)

    def test_registry_integration(self):
        from repro.train.registry import make_trainer

        trainer = make_trainer("IRMv1", penalty_weight=5.0, n_epochs=2)
        assert isinstance(trainer, IRMv1Trainer)
        assert trainer.config.penalty_weight == 5.0
