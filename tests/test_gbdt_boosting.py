"""Unit tests for the boosted classifier."""

import numpy as np
import pytest

from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.tree import TreeParams
from repro.metrics.auc import auc_score


def _classification_problem(rng, n=800, d=5):
    x = rng.standard_normal((n, d))
    logit = 1.5 * x[:, 0] - x[:, 1] + 0.5 * x[:, 2] * x[:, 0]
    y = (rng.random(n) < 1 / (1 + np.exp(-logit))).astype(float)
    y[:2] = [0, 1]
    return x, y


class TestFit:
    def test_train_loss_decreases(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=20))
        model.fit(x, y)
        losses = model.train_losses_
        assert losses[-1] < losses[0]
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_learns_nonlinear_signal(self, rng):
        x, y = _classification_problem(rng, n=1600)
        train_x, train_y = x[:800], y[:800]
        holdout_x, holdout_y = x[800:], y[800:]
        model = GBDTClassifier(GBDTParams(n_trees=40))
        model.fit(train_x, train_y)
        assert auc_score(holdout_y, model.predict_proba(holdout_x)) > 0.8

    def test_early_stopping_triggers(self, rng):
        x, y = _classification_problem(rng, n=300)
        vx, vy = _classification_problem(np.random.default_rng(1), n=200)
        model = GBDTClassifier(
            GBDTParams(n_trees=200, early_stopping_rounds=5,
                       learning_rate=0.3)
        )
        model.fit(x, y, vx, vy)
        assert model.n_trees_fitted < 200

    def test_base_score_is_prior_log_odds(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=1))
        model.fit(x, y)
        prior = y.mean()
        assert model.base_score_ == pytest.approx(
            np.log(prior / (1 - prior))
        )

    def test_subsampling_reproducible(self, rng):
        x, y = _classification_problem(rng)
        params = GBDTParams(n_trees=10, subsample=0.6, colsample=0.6, seed=7)
        m1 = GBDTClassifier(params).fit(x, y)
        m2 = GBDTClassifier(params).fit(x, y)
        np.testing.assert_allclose(
            m1.predict_proba(x), m2.predict_proba(x)
        )

    def test_probabilities_in_unit_interval(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=15)).fit(x, y)
        p = model.predict_proba(x)
        assert np.all((p > 0) & (p < 1))


class TestLeaves:
    def test_leaf_matrix_shape_and_range(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=8)).fit(x, y)
        leaves = model.predict_leaves(x)
        assert leaves.shape == (x.shape[0], 8)
        for t, n_leaves in enumerate(model.leaves_per_tree()):
            assert leaves[:, t].min() >= 0
            assert leaves[:, t].max() < n_leaves

    def test_leaves_deterministic_for_same_input(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=5)).fit(x, y)
        np.testing.assert_array_equal(
            model.predict_leaves(x[:10]), model.predict_leaves(x[:10])
        )


class TestFeatureImportance:
    def test_signal_features_dominate_noise(self, rng):
        x, y = _classification_problem(rng)
        model = GBDTClassifier(GBDTParams(n_trees=20)).fit(x, y)
        importance = model.feature_importance()
        assert importance[:2].sum() > importance[3:].sum()


class TestValidation:
    def test_unfitted_raises(self):
        model = GBDTClassifier()
        with pytest.raises(RuntimeError):
            model.predict_proba(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            model.predict_leaves(np.zeros((1, 2)))

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            GBDTClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_non_binary_labels_raise(self, rng):
        with pytest.raises(ValueError):
            GBDTClassifier().fit(rng.standard_normal((10, 2)),
                                 np.arange(10.0))

    def test_mismatched_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            GBDTClassifier().fit(rng.standard_normal((10, 2)), np.zeros(9))

    def test_valid_features_without_labels_raise(self, rng):
        x, y = _classification_problem(rng, n=50)
        with pytest.raises(ValueError):
            GBDTClassifier().fit(x, y, valid_features=x)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GBDTParams(n_trees=0)
        with pytest.raises(ValueError):
            GBDTParams(learning_rate=0)
        with pytest.raises(ValueError):
            GBDTParams(subsample=1.5)
        with pytest.raises(ValueError):
            GBDTParams(colsample=0)


class TestSingleClassBehaviour:
    def test_single_class_labels_raise_nowhere_but_fit_is_degenerate(self):
        # All-negative labels are technically binary; the model should fit
        # without error and predict low probabilities.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3))
        y = np.zeros(50)
        model = GBDTClassifier(GBDTParams(n_trees=3,
                                          tree=TreeParams(min_child_samples=5)))
        model.fit(x, y)
        assert model.predict_proba(x).max() < 0.2


class TestStagedPredictions:
    def test_one_stage_per_tree(self, rng):
        x, y = _classification_problem(rng, n=300)
        model = GBDTClassifier(GBDTParams(n_trees=6)).fit(x, y)
        stages = list(model.staged_predict_proba(x))
        assert len(stages) == model.n_trees_fitted

    def test_final_stage_matches_predict_proba(self, rng):
        x, y = _classification_problem(rng, n=300)
        model = GBDTClassifier(GBDTParams(n_trees=6)).fit(x, y)
        *_, final = model.staged_predict_proba(x)
        np.testing.assert_allclose(final, model.predict_proba(x), atol=1e-12)

    def test_training_auc_improves_over_stages(self, rng):
        x, y = _classification_problem(rng, n=600)
        model = GBDTClassifier(GBDTParams(n_trees=25)).fit(x, y)
        stages = list(model.staged_predict_proba(x))
        first = auc_score(y, stages[0])
        last = auc_score(y, stages[-1])
        assert last > first

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            list(GBDTClassifier().staged_predict_proba(np.zeros((1, 2))))
