"""Streamed generation must be bit-identical to the one-shot path."""

import numpy as np
import pytest

from repro.data.generator import (
    DatasetChunk,
    GeneratorConfig,
    LoanDataGenerator,
)
from repro.data.provinces import ProvinceProfile, ProvinceRegistry


def _assemble(generator, chunk_rows):
    """Scatter chunks back into canonical row order, like generate()."""
    cfg = generator.config
    n, d = cfg.n_samples, generator.schema.n_features
    features = np.full((n, d), np.nan)
    labels = np.full(n, -1.0)
    provinces = np.empty(n, dtype=object)
    years = np.zeros(n, dtype=np.int64)
    halves = np.zeros(n, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    for chunk in generator.generate_chunks(chunk_rows):
        rows = chunk.row_indices
        assert not seen[rows].any(), "chunk rows overlap"
        seen[rows] = True
        features[rows] = chunk.features
        labels[rows] = chunk.labels
        provinces[rows] = chunk.province
        years[rows] = chunk.year
        halves[rows] = chunk.half
    assert seen.all(), "chunks did not cover every row"
    return features, labels, provinces, years, halves


class TestBitIdentity:
    @pytest.mark.parametrize("chunk_rows", [1, 997, None])
    def test_chunks_match_one_shot(self, chunk_rows):
        config = GeneratorConfig.small(seed=11)
        one_shot = LoanDataGenerator(config).generate()
        features, labels, provinces, years, halves = _assemble(
            LoanDataGenerator(config), chunk_rows
        )
        np.testing.assert_array_equal(features, one_shot.features)
        np.testing.assert_array_equal(labels, one_shot.labels)
        np.testing.assert_array_equal(provinces, one_shot.provinces)
        np.testing.assert_array_equal(years, one_shot.years)
        np.testing.assert_array_equal(halves, one_shot.halves)

    @pytest.mark.parametrize("chunk_rows", [1, 997, None])
    def test_generate_with_chunk_rows_is_identity(self, chunk_rows):
        """generate(chunk_rows=...) itself must not change the output."""
        config = GeneratorConfig.small(seed=2)
        reference = LoanDataGenerator(config).generate()
        chunked = LoanDataGenerator(config).generate(chunk_rows=chunk_rows)
        np.testing.assert_array_equal(chunked.features, reference.features)
        np.testing.assert_array_equal(chunked.labels, reference.labels)
        np.testing.assert_array_equal(chunked.provinces, reference.provinces)

    def test_custom_registry_and_shift_config(self):
        """Bit-identity holds for non-default province/shift settings."""
        registry = ProvinceRegistry([
            ProvinceProfile("Alpha", 5.0, 0.5, 1.0,
                            covid_exposure=0.8,
                            weight_by_year={2020: 0.5}),
            ProvinceProfile("Beta", 2.0, -0.4, -0.2, noise_scale=1.5),
            ProvinceProfile("Gamma", 1.0, 0.1, 0.0, truck_tilt=0.3),
        ])
        config = GeneratorConfig(
            n_samples=1_500,
            total_features=24,
            n_spurious=4,
            seed=99,
            spurious_base_strength=1.1,
            economic_effect=0.2,
            label_noise=0.5,
            registry=registry,
        )
        one_shot = LoanDataGenerator(config).generate()
        for chunk_rows in (1, 113, None):
            features, labels, provinces, _, _ = _assemble(
                LoanDataGenerator(config), chunk_rows
            )
            np.testing.assert_array_equal(features, one_shot.features)
            np.testing.assert_array_equal(labels, one_shot.labels)
            np.testing.assert_array_equal(provinces, one_shot.provinces)

    def test_restream_is_deterministic(self):
        """Two passes over generate_chunks yield identical chunks."""
        config = GeneratorConfig.small(seed=4)
        generator = LoanDataGenerator(config)
        first = list(generator.generate_chunks(257))
        second = list(generator.generate_chunks(257))
        assert len(first) == len(second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.features, b.features)
            np.testing.assert_array_equal(a.labels, b.labels)
            np.testing.assert_array_equal(a.row_indices, b.row_indices)
            assert (a.province, a.year, a.half) == (b.province, b.year, b.half)


class TestChunkShape:
    def test_chunk_rows_bounds_every_chunk(self):
        generator = LoanDataGenerator(GeneratorConfig.small(seed=7))
        for chunk in generator.generate_chunks(50):
            assert 1 <= chunk.n_rows <= 50
            assert chunk.features.shape == (chunk.n_rows,
                                            generator.schema.n_features)
            assert chunk.row_indices.shape == (chunk.n_rows,)

    def test_chunks_are_single_cell(self):
        """Each chunk belongs to exactly one (province, year, half) cell."""
        generator = LoanDataGenerator(GeneratorConfig.small(seed=7))
        dataset = LoanDataGenerator(GeneratorConfig.small(seed=7)).generate()
        for chunk in generator.generate_chunks(64):
            rows = chunk.row_indices
            assert set(dataset.provinces[rows]) == {chunk.province}
            assert set(dataset.years[rows]) == {chunk.year}
            assert set(dataset.halves[rows]) == {chunk.half}

    def test_memory_is_cell_bounded_not_dataset_bounded(self):
        """The iterator never materialises an (n, d) buffer."""
        generator = LoanDataGenerator(GeneratorConfig.small(seed=7))
        n = generator.config.n_samples
        for chunk in generator.generate_chunks(None):
            assert chunk.n_rows < n  # every cell is a strict subset

    def test_invalid_chunk_rows_rejected(self):
        generator = LoanDataGenerator(GeneratorConfig.small(seed=1))
        with pytest.raises(ValueError):
            next(generator.generate_chunks(0))
        with pytest.raises(ValueError):
            next(generator.generate_chunks(-3))

    def test_chunk_dataclass_fields(self):
        generator = LoanDataGenerator(GeneratorConfig.small(seed=1))
        chunk = next(generator.generate_chunks(10))
        assert isinstance(chunk, DatasetChunk)
        assert chunk.labels.shape[0] == chunk.n_rows
        assert isinstance(chunk.province, str)
        assert chunk.half in (1, 2)
