"""Tests for the shared-memory metrics slab (repro.obs.live.slab).

The slab is the cross-process leg of the live telemetry plane: one
fixed-layout row per worker, seqlock generations for torn-free parent
reads, and a parent-side aggregator whose merged output must be
byte-compatible with the single-process ``Histogram`` snapshot schema.
"""

import numpy as np
import pytest

from repro.obs.live.slab import (
    SERVING_SLAB_LAYOUT,
    MetricsAggregator,
    MetricsSlab,
    SlabLayout,
    telemetry_to_row,
)
from repro.obs.metrics import Histogram
from repro.serve.telemetry import ServingTelemetry

LAYOUT = SlabLayout(
    counters=("rows", "batches"),
    gauges=("busy",),
    histograms=(("lat", (0.001, 0.01, 0.1)),),
)


@pytest.fixture()
def slab():
    slab = MetricsSlab.allocate(LAYOUT, n_workers=3)
    yield slab
    slab.dispose()


class TestSlabLayout:
    def test_meta_roundtrip(self):
        rebuilt = SlabLayout.from_meta(LAYOUT.to_meta())
        assert rebuilt == LAYOUT

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SlabLayout(counters=("a",), gauges=("a",))

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SlabLayout()

    def test_attach_rebuilds_layout_from_spec_alone(self, slab):
        attached = MetricsSlab.attach(slab.spec)
        try:
            assert attached.layout == LAYOUT
            assert attached.n_workers == 3
        finally:
            attached.close()


class TestSeqlock:
    def test_unwritten_row_reads_none(self, slab):
        assert slab.read_worker(0) is None

    def test_publish_then_read_roundtrip(self, slab):
        writer = slab.writer(1)
        writer.publish(
            np.array([10, 2], dtype=np.int64),
            np.array([0.5]),
            [(np.array([1, 2, 0, 1], dtype=np.int64), 0.25)],
        )
        sample = slab.read_worker(1)
        assert sample["counters"] == {"rows": 10, "batches": 2}
        assert sample["gauges"]["busy"] == pytest.approx(0.5)
        hist = sample["histograms"]["lat"]
        assert list(hist["counts"]) == [1, 2, 0, 1]
        assert hist["total"] == pytest.approx(0.25)
        assert sample["generation"] == 2
        assert sample["heartbeat_unix"] > 0

    def test_other_rows_stay_untouched(self, slab):
        slab.writer(0).publish(np.array([1, 1], dtype=np.int64))
        assert slab.read_worker(1) is None
        assert slab.read_worker(2) is None

    def test_mid_write_row_is_not_consumed(self, slab):
        # Simulate a writer frozen mid-write: generation left odd.
        slab.writer(0).publish(np.array([5, 1], dtype=np.int64))
        slab._arrays["gen"][0] = 3
        assert slab.read_worker(0) is None

    def test_allow_torn_reads_through_odd_generation(self, slab):
        slab.writer(0).publish(np.array([5, 1], dtype=np.int64))
        slab._arrays["gen"][0] = 3   # writer died mid-write
        sample = slab.read_worker(0, allow_torn=True)
        assert sample is not None
        assert sample["counters"]["rows"] == 5

    def test_worker_id_bounds_checked(self, slab):
        with pytest.raises(ValueError, match="out of range"):
            slab.writer(3)

    def test_heartbeat_does_not_count_as_publish(self, slab):
        writer = slab.writer(2)
        writer.heartbeat()
        # Row has a generation now, but metrics are all zero and valid.
        sample = slab.read_worker(2)
        assert sample["counters"] == {"rows": 0, "batches": 0}
        assert writer.n_published == 0


class TestTelemetryToRow:
    def test_flattens_serving_telemetry(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(n_rows=8, seconds=0.002)
        telemetry.record_batch(n_rows=4, seconds=0.004)
        telemetry.record_cache(hits=3, misses=1)
        telemetry.record_fallback("drift")
        telemetry.record_fallback("challenger_error")
        counters, gauges, hists = telemetry_to_row(telemetry)
        names = dict(zip(SERVING_SLAB_LAYOUT.counters, counters))
        assert names["rows_scored"] == 12
        assert names["batches"] == 2
        assert names["cache_hits"] == 3
        assert names["cache_misses"] == 1
        assert names["fallbacks"] == 2          # per-reason dict flattened
        assert gauges[0] == pytest.approx(0.006)
        (counts, total), = hists
        assert counts.sum() == 2
        assert total == pytest.approx(0.006)

    def test_row_width_matches_layout(self):
        counters, gauges, hists = telemetry_to_row(ServingTelemetry())
        assert len(counters) == len(SERVING_SLAB_LAYOUT.counters)
        assert len(gauges) == len(SERVING_SLAB_LAYOUT.gauges)
        name, bounds = SERVING_SLAB_LAYOUT.histograms[0]
        assert len(hists[0][0]) == len(bounds) + 1


class TestAggregator:
    def test_counters_sum_across_workers(self, slab):
        agg = MetricsAggregator(slab)
        slab.writer(0).publish(np.array([10, 1], dtype=np.int64))
        slab.writer(2).publish(np.array([7, 2], dtype=np.int64))
        merged = agg.aggregate()
        assert merged["counters"] == {"rows": 17, "batches": 3}
        assert merged["workers_reporting"] == 2

    def test_histogram_snapshot_is_byte_compatible(self, slab):
        """Merged slab histograms == one Histogram fed every observation."""
        agg = MetricsAggregator(slab)
        reference = Histogram((0.001, 0.01, 0.1))
        per_worker = [(0.0005, 0.005), (0.05, 0.5)]
        for worker_id, values in enumerate(per_worker):
            local = Histogram((0.001, 0.01, 0.1))
            for value in values:
                local.observe(value)
                reference.observe(value)
            slab.writer(worker_id).publish(
                np.zeros(2, dtype=np.int64), None,
                [(local.counts, local.total)],
            )
        merged = agg.aggregate()["histograms"]["lat"]
        assert merged == reference.snapshot()

    def test_absolute_publishes_self_heal(self, slab):
        """Only the LAST publish matters: missed polls lose nothing."""
        agg = MetricsAggregator(slab)
        writer = slab.writer(0)
        for total in (5, 50, 500):   # parent never polled between these
            writer.publish(np.array([total, 1], dtype=np.int64))
        assert agg.aggregate()["counters"]["rows"] == 500

    def test_absorb_retired_preserves_totals_across_respawn(self, slab):
        agg = MetricsAggregator(slab)
        slab.writer(0).publish(np.array([100, 4], dtype=np.int64))
        agg.read_all()
        agg.absorb_retired(0)        # worker died, row zeroed
        assert slab.read_worker(0) is None
        # Replacement restarts its lifetime totals from zero.
        slab.writer(0).publish(np.array([30, 1], dtype=np.int64))
        merged = agg.aggregate()
        assert merged["counters"] == {"rows": 130, "batches": 5}

    def test_absorb_retired_falls_back_to_last_good(self, slab):
        agg = MetricsAggregator(slab)
        slab.writer(1).publish(np.array([40, 2], dtype=np.int64))
        agg.read_all()
        slab._arrays["gen"][1] = 0   # row lost entirely (e.g. re-init)
        agg.absorb_retired(1)
        assert agg.aggregate()["counters"]["rows"] == 40

    def test_liveness_reports_unwritten_and_stale_rows(self, slab):
        agg = MetricsAggregator(slab, liveness_timeout_s=5.0)
        slab.writer(0).publish(np.array([1, 1], dtype=np.int64))
        slab.writer(1).publish(np.array([1, 1], dtype=np.int64))
        slab._arrays["heartbeat_unix"][1] -= 60.0   # old heartbeat
        report = agg.liveness()
        assert report["0"] == {"reporting": True,
                               "age_s": report["0"]["age_s"],
                               "stale": False}
        assert report["1"]["reporting"] and report["1"]["stale"]
        assert report["2"] == {"reporting": False, "age_s": None,
                               "stale": True}

    def test_torn_poll_returns_last_good_sample(self, slab):
        agg = MetricsAggregator(slab)
        slab.writer(0).publish(np.array([10, 1], dtype=np.int64))
        agg.read_all()
        slab._arrays["gen"][0] = 5   # writer mid-publish at poll time
        merged = agg.aggregate()
        assert merged["counters"]["rows"] == 10
        assert merged["workers_reporting"] == 1
