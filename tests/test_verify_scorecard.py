"""Tests for the invariance scorecard and the `repro verify` CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.train.registry import available_trainers, penalty_parameter
from repro.verify.scorecard import (
    VerifyConfig,
    _is_monotone_decreasing,
    _slug,
    run_verification,
    summarize_verification,
    write_verify_json,
)


@pytest.fixture(scope="module")
def smoke_payload():
    """One CI-sized scorecard run shared by the schema/check tests."""
    return run_verification(VerifyConfig.smoke())


class TestConfig:
    def test_defaults_valid(self):
        VerifyConfig()

    @pytest.mark.parametrize("bad", [
        dict(n_epochs=0),
        dict(penalty_sweep=(1.0,)),
        dict(penalty_sweep=(2.0, 1.0)),
        dict(monotone_tolerance=-0.1),
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            VerifyConfig(**bad)

    def test_smoke_uses_smoke_bed(self):
        cfg = VerifyConfig.smoke()
        assert cfg.sem.n_per_env < VerifyConfig().sem.n_per_env


class TestMonotoneCheck:
    def test_strictly_decreasing_passes(self):
        assert _is_monotone_decreasing([0.3, 0.2, 0.1], tolerance=0.0)

    def test_small_bump_within_tolerance(self):
        assert _is_monotone_decreasing([0.3, 0.10, 0.11], tolerance=0.02)

    def test_large_bump_fails(self):
        assert not _is_monotone_decreasing([0.3, 0.10, 0.20], tolerance=0.02)

    def test_flat_fails(self):
        """No reduction at all means the penalty does nothing."""
        assert not _is_monotone_decreasing([0.2, 0.2, 0.2], tolerance=0.02)


class TestSlug:
    @pytest.mark.parametrize("name,expected", [
        ("ERM", "erm"),
        ("ERM + fine-tuning", "erm_fine_tuning"),
        ("Group DRO", "group_dro"),
        ("meta-IRM", "meta_irm"),
        ("LightMIRM", "lightmirm"),
    ])
    def test_slugs(self, name, expected):
        assert _slug(name) == expected


class TestScorecardPayload:
    def test_covers_every_registered_trainer(self, smoke_payload):
        assert set(smoke_payload["trainers"]) == set(available_trainers())

    def test_entry_schema(self, smoke_payload):
        for entry in smoke_payload["trainers"].values():
            for key in ("causal_cosine", "causal_mass", "spurious_mass",
                        "spurious_to_causal", "iid_auc", "ood_auc",
                        "ood_gap"):
                assert np.isfinite(entry[key])
            assert 0.0 <= entry["spurious_mass"] <= 1.0

    def test_sweeps_cover_penalised_trainers(self, smoke_payload):
        expected = {
            name for name in available_trainers()
            if penalty_parameter(name) is not None
        }
        assert set(smoke_payload["penalty_sweeps"]) == expected
        for name, sweep in smoke_payload["penalty_sweeps"].items():
            assert sweep["parameter"] == penalty_parameter(name)
            assert len(sweep["spurious_mass"]) == len(sweep["values"])

    def test_invariance_ordering_checks_pass(self, smoke_payload):
        """The acceptance criterion: the IRM-family methods keep less mass
        on the spurious block than ERM, with aligned causal weights."""
        checks = smoke_payload["checks"]
        assert checks["lightmirm_spurious_below_erm"]
        assert checks["meta_irm_spurious_below_erm"]
        assert checks["lightmirm_causal_alignment"]
        assert checks["meta_irm_causal_alignment"]
        assert smoke_payload["all_passed"]

    def test_erm_exploits_the_shortcut(self, smoke_payload):
        """The bed only verifies something if ERM actually falls for it."""
        erm = smoke_payload["trainers"]["ERM"]
        assert erm["spurious_mass"] > 0.1
        assert erm["ood_gap"] > 0.1

    def test_summary_renders_all_sections(self, smoke_payload):
        text = summarize_verification(smoke_payload)
        assert "LightMIRM" in text
        assert "lambda_penalty" in text
        assert "ALL CHECKS PASSED" in text

    def test_json_round_trip(self, smoke_payload, tmp_path):
        path = tmp_path / "VERIFY_invariance.json"
        written = write_verify_json(path, smoke_payload)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        for key in ("format", "config", "machine", "trainers",
                    "penalty_sweeps", "checks", "all_passed"):
            assert key in loaded

    def test_deterministic_given_config(self, smoke_payload):
        again = run_verification(VerifyConfig.smoke())
        assert again["trainers"] == smoke_payload["trainers"]


class TestCli:
    def test_verify_smoke_exit_code_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "VERIFY_invariance.json"
        code = main(["verify", "--smoke", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["all_passed"]
        assert "invariance scorecard" in capsys.readouterr().out

    def test_verify_overrides_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["verify", "--smoke", "--n-per-env", "200", "--epochs", "50"]
        )
        assert args.smoke and args.n_per_env == 200 and args.epochs == 50


@pytest.mark.slow
class TestTrackedScorecard:
    def test_full_config_all_checks_pass(self):
        payload = run_verification(VerifyConfig())
        assert payload["all_passed"], payload["checks"]
