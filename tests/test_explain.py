"""Unit + integration tests for head attribution explainability."""

import numpy as np
import pytest

from repro.data.schema import CausalRole
from repro.explain import (
    attribution_by_role,
    head_feature_attribution,
    leaf_path_features,
    spurious_reliance,
)
from repro.gbdt.binning import QuantileBinner
from repro.gbdt.tree import DecisionTree, TreeParams


class TestLeafPathFeatures:
    @pytest.fixture()
    def fitted_tree(self, rng):
        x = rng.standard_normal((400, 3))
        target = np.where(x[:, 0] > 0, 2.0, -1.0) + np.where(
            x[:, 1] > 0, 0.5, -0.5
        )
        binned = QuantileBinner(max_bins=16).fit_transform(x)
        tree = DecisionTree(TreeParams(max_leaves=6, min_child_samples=10))
        tree.fit(binned, -target, np.ones(400), max_bins=16)
        return tree

    def test_one_set_per_leaf(self, fitted_tree):
        paths = leaf_path_features(fitted_tree)
        assert len(paths) == fitted_tree.n_leaves

    def test_paths_contain_split_features_only(self, fitted_tree):
        used = {
            node.feature
            for node in fitted_tree._nodes
            if not node.is_leaf
        }
        for path in leaf_path_features(fitted_tree):
            assert path <= used

    def test_signal_feature_on_most_paths(self, fitted_tree):
        paths = leaf_path_features(fitted_tree)
        with_signal = sum(1 for p in paths if 0 in p)
        assert with_signal >= len(paths) - 1

    def test_unfitted_tree_raises(self):
        with pytest.raises(ValueError):
            leaf_path_features(DecisionTree())


class TestHeadAttribution:
    def test_shapes_and_nonnegativity(self, fitted_extractor):
        theta = np.random.default_rng(0).standard_normal(
            fitted_extractor.n_output_features
        )
        attribution = head_feature_attribution(fitted_extractor, theta)
        assert attribution.shape == (
            len(fitted_extractor.model_.binner.bin_edges_),
        )
        assert np.all(attribution >= 0)
        assert attribution.sum() > 0

    def test_zero_theta_zero_attribution(self, fitted_extractor):
        theta = np.zeros(fitted_extractor.n_output_features)
        attribution = head_feature_attribution(fitted_extractor, theta)
        assert attribution.sum() == 0.0

    def test_scaling_theta_scales_attribution(self, fitted_extractor):
        rng = np.random.default_rng(1)
        theta = rng.standard_normal(fitted_extractor.n_output_features)
        a1 = head_feature_attribution(fitted_extractor, theta)
        a2 = head_feature_attribution(fitted_extractor, 3.0 * theta)
        np.testing.assert_allclose(a2, 3.0 * a1)

    def test_leaf_frequencies_reweight(self, fitted_extractor, small_split):
        rng = np.random.default_rng(2)
        theta = rng.standard_normal(fitted_extractor.n_output_features)
        encoded = fitted_extractor.transform(small_split.train)
        frequencies = np.asarray(encoded.mean(axis=0)).ravel()
        weighted = head_feature_attribution(
            fitted_extractor, theta, leaf_frequencies=frequencies
        )
        plain = head_feature_attribution(fitted_extractor, theta)
        assert not np.allclose(weighted, plain)

    def test_wrong_theta_size_raises(self, fitted_extractor):
        with pytest.raises(ValueError):
            head_feature_attribution(fitted_extractor, np.zeros(3))


class TestRoleAggregation:
    def test_shares_sum_to_one(self, fitted_extractor, small_dataset):
        rng = np.random.default_rng(3)
        theta = rng.standard_normal(fitted_extractor.n_output_features)
        attribution = head_feature_attribution(fitted_extractor, theta)
        shares = attribution_by_role(attribution, small_dataset.schema)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == {r.value for r in CausalRole}

    def test_zero_attribution_zero_shares(self, small_dataset):
        shares = attribution_by_role(
            np.zeros(small_dataset.schema.n_features), small_dataset.schema
        )
        assert all(v == 0.0 for v in shares.values())

    def test_size_mismatch_raises(self, small_dataset):
        with pytest.raises(ValueError):
            attribution_by_role(np.zeros(3), small_dataset.schema)


class TestSpuriousRelianceRQ5:
    def test_lightmirm_relies_less_on_spurious_than_erm(
        self, fitted_extractor, train_envs, small_dataset
    ):
        """The RQ5 diagnostic: the invariant head puts a smaller share of
        its weight on the spurious regional signals than the ERM head."""
        from repro.train.registry import make_trainer

        erm = make_trainer("ERM", seed=0).fit(train_envs)
        light = make_trainer("LightMIRM", seed=0).fit(train_envs)
        erm_share = spurious_reliance(
            fitted_extractor, erm.theta, small_dataset.schema
        )
        light_share = spurious_reliance(
            fitted_extractor, light.theta, small_dataset.schema
        )
        assert 0 < light_share < 1
        assert light_share < erm_share
