"""Unit tests for probability-quality metrics."""

import numpy as np
import pytest

from repro.metrics.probability import (
    brier_score,
    calibration_gap_by_environment,
    expected_calibration_error,
    reliability_bins,
)


class TestBrier:
    def test_perfect_prediction_zero(self):
        y = np.array([0.0, 1.0, 1.0])
        assert brier_score(y, y) == 0.0

    def test_known_value(self):
        y = np.array([1.0, 0.0])
        p = np.array([0.8, 0.3])
        assert brier_score(y, p) == pytest.approx((0.04 + 0.09) / 2)

    def test_constant_half_is_quarter(self, rng):
        y = rng.integers(0, 2, 1000).astype(float)
        assert brier_score(y, np.full(1000, 0.5)) == pytest.approx(0.25)

    def test_out_of_range_probabilities_raise(self):
        with pytest.raises(ValueError):
            brier_score(np.array([0.0, 1.0]), np.array([0.5, 1.2]))


class TestReliabilityBins:
    def test_calibrated_probabilities_small_gaps(self, rng):
        p = rng.random(50_000)
        y = (rng.random(50_000) < p).astype(float)
        bins = reliability_bins(y, p, n_bins=10)
        assert len(bins) == 10
        assert all(b.gap < 0.02 for b in bins)

    def test_counts_sum_to_n(self, rng):
        p = rng.random(500)
        y = rng.integers(0, 2, 500).astype(float)
        bins = reliability_bins(y, p, n_bins=7)
        assert sum(b.count for b in bins) == 500

    def test_probability_one_lands_in_last_bin(self):
        y = np.array([1.0, 0.0])
        p = np.array([1.0, 0.0])
        bins = reliability_bins(y, p, n_bins=5)
        assert bins[0].lower == 0.0
        assert bins[-1].upper == 1.0

    def test_empty_bins_omitted(self):
        y = np.array([0.0, 1.0])
        p = np.array([0.05, 0.95])
        bins = reliability_bins(y, p, n_bins=10)
        assert len(bins) == 2

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_bins(np.array([0.0, 1.0]), np.array([0.1, 0.9]),
                             n_bins=0)


class TestECE:
    def test_calibrated_low(self, rng):
        p = rng.random(50_000)
        y = (rng.random(50_000) < p).astype(float)
        assert expected_calibration_error(y, p) < 0.01

    def test_overconfident_high(self, rng):
        # Predict near-certainty on coin flips.
        y = rng.integers(0, 2, 5_000).astype(float)
        p = np.where(y == 1, 0.99, 0.95)  # labels leak but badly calibrated
        assert expected_calibration_error(y, p) > 0.3

    def test_between_zero_and_one(self, rng):
        for seed in range(3):
            r = np.random.default_rng(seed)
            y = r.integers(0, 2, 200).astype(float)
            p = r.random(200)
            assert 0.0 <= expected_calibration_error(y, p) <= 1.0


class TestPerEnvironmentGap:
    def test_structure(self, rng):
        labels = {"a": rng.integers(0, 2, 300).astype(float),
                  "b": rng.integers(0, 2, 300).astype(float)}
        probs = {"a": rng.random(300), "b": rng.random(300)}
        gaps = calibration_gap_by_environment(labels, probs)
        assert set(gaps) == {"a", "b"}
        assert all(0 <= v <= 1 for v in gaps.values())

    def test_miscalibrated_env_detected(self, rng):
        n = 5_000
        p_good = rng.random(n)
        y_good = (rng.random(n) < p_good).astype(float)
        p_bad = rng.random(n)
        y_bad = (rng.random(n) < np.clip(p_bad + 0.3, 0, 1)).astype(float)
        gaps = calibration_gap_by_environment(
            {"good": y_good, "bad": y_bad},
            {"good": p_good, "bad": p_bad},
        )
        assert gaps["bad"] > gaps["good"] + 0.1

    def test_key_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            calibration_gap_by_environment(
                {"a": np.array([0.0, 1.0])}, {"b": np.array([0.5, 0.5])}
            )
