"""Integration tests for the experiment harness (tiny settings).

These check that every table/figure module runs end to end and produces
structurally valid output; the *shapes* against the paper are asserted in
the benchmark suite, which runs at full experiment scale.
"""

import numpy as np
import pytest

from repro.experiments.fig1_province_map import (
    format_fig1,
    relative_spread,
    run_fig1,
)
from repro.experiments.fig4_vehicle_mix import format_fig4, run_fig4
from repro.experiments.fig5_online import format_fig5, run_fig5
from repro.experiments.fig9_mrq_length import format_fig9, run_fig9
from repro.experiments.fig10_guangdong_share import (
    format_fig10,
    run_fig10,
    share_drop_ratio,
)
from repro.experiments.fig11_hubei import format_fig11, run_fig11
from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.experiments.table1_main import format_table1, run_table1
from repro.experiments.table2_sampling import (
    format_curves,
    format_table2,
    run_table2,
    run_training_curves,
    sampling_levels,
)
from repro.experiments.table3_timing import (
    format_table3,
    run_table3,
    step_proportions,
)
from repro.experiments.table4_gamma import format_table4, run_table4
from repro.experiments.table5_guangdong import format_table5, run_table5
from repro.experiments.table6_iid import format_table6, run_table6


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext(
        ExperimentSettings(n_samples=5_000, data_seed=1, trainer_seeds=(0,))
    )


@pytest.fixture(scope="module")
def tiny_iid_context():
    return ExperimentContext(
        ExperimentSettings(n_samples=5_000, data_seed=1, trainer_seeds=(0,),
                           split="iid")
    )


class TestRunnerPlumbing:
    def test_caches_dataset(self, tiny_context):
        assert tiny_context.dataset is tiny_context.dataset

    def test_environment_counts(self, tiny_context):
        assert len(tiny_context.train_environments) == 12
        assert len(tiny_context.test_environments) == 12

    def test_invalid_split_name(self):
        with pytest.raises(ValueError):
            ExperimentSettings(split="bootstrap")

    def test_score_method_structure(self, tiny_context):
        from repro.train.registry import make_trainer

        scores = tiny_context.score_method(
            "ERM", lambda seed: make_trainer("ERM", seed=seed, n_epochs=5)
        )
        row = scores.as_row()
        assert set(row) == {"method", "mKS", "wKS", "mAUC", "wAUC"}
        assert 0 <= row["wKS"] <= row["mKS"] <= 1


class TestFig1:
    def test_runs_and_formats(self, tiny_context):
        cells = run_fig1(tiny_context)
        assert len(cells) >= 10
        assert cells[0].ks >= cells[-1].ks
        assert 0 < relative_spread(cells) < 1
        assert "Fig 1" in format_fig1(cells)


class TestFig4:
    def test_runs_and_formats(self, tiny_context):
        mixes = run_fig4(tiny_context.dataset)
        for year_mix in mixes.values():
            assert sum(year_mix.values()) == pytest.approx(1.0)
        assert "Fig 4" in format_fig4(mixes)

    def test_unknown_year_raises(self, tiny_context):
        with pytest.raises(ValueError):
            run_fig4(tiny_context.dataset, years=(1999,))


class TestFig5:
    def test_runs_and_formats(self, tiny_context):
        replay = run_fig5(tiny_context, method="ERM")
        assert 0 <= replay.companion_bad_debt_rate <= 1
        assert "bad-debt" in format_fig5(replay)


class TestTable1:
    def test_two_method_subset(self, tiny_context):
        scores = run_table1(tiny_context, methods=("ERM", "LightMIRM"))
        assert [s.method for s in scores] == ["ERM", "LightMIRM"]
        out = format_table1(scores)
        assert "Table I" in out
        assert "best wKS" in out


class TestTable2:
    def test_sampling_levels_adapt(self):
        assert sampling_levels(26) == (20, 10, 5)
        small = sampling_levels(12)
        assert all(1 <= s <= 11 for s in small)
        assert sorted(small, reverse=True) == list(small)

    def test_curves_run(self, tiny_context):
        curves = run_training_curves(tiny_context, every=5, n_epochs=10)
        assert {c.method for c in curves} >= {"meta-IRM", "LightMIRM"}
        for curve in curves:
            assert len(curve.epochs) == len(curve.test_ks) == 2
        assert "Fig 6/8" in format_curves(curves)


class TestTable3:
    def test_timings_structure(self, tiny_context):
        timings = run_table3(tiny_context)
        assert [t.method for t in timings] == [
            "meta-IRM", "meta-IRM(5)", "LightMIRM",
        ]
        complete = timings[0]
        light = timings[2]
        # Complete meta-IRM's meta-loss step must dominate LightMIRM's.
        assert complete.step("calculating_meta_losses") > light.step(
            "calculating_meta_losses"
        )
        proportions = step_proportions(complete)
        assert sum(proportions.values()) == pytest.approx(1.0)
        assert "Table III" in format_table3(timings)


class TestFig9:
    def test_short_sweep(self, tiny_context):
        results = run_fig9(tiny_context, lengths=(1, 3))
        assert [r.length for r in results] == [1, 3]
        assert "Fig 9" in format_fig9(results)


class TestTable4:
    def test_short_sweep(self, tiny_context):
        scores = run_table4(tiny_context, gammas=(0.5, 1.0))
        assert [s.method for s in scores] == ["gamma=0.5", "gamma=1.0"]
        assert "Table IV" in format_table4(scores)


class TestFig10:
    def test_runs_and_formats(self, tiny_context):
        shares = run_fig10(tiny_context.dataset)
        assert set(shares) == {2016, 2017, 2018, 2019, 2020}
        assert 0.3 < share_drop_ratio(shares) < 0.8
        assert "Fig 10" in format_fig10(shares)


class TestTable5:
    def test_subset(self, tiny_context):
        scores = run_table5(tiny_context, methods=("ERM", "LightMIRM"))
        assert len(scores) == 2
        for s in scores:
            assert 0 <= s.ks <= 1
            assert 0 <= s.auc <= 1
        assert "Table V" in format_table5(scores)


class TestFig11:
    def test_subset(self, tiny_context):
        scores = run_fig11(tiny_context, methods=("ERM", "LightMIRM"))
        for s in scores:
            assert 0 <= s.ks_first_half <= 1
            assert 0 <= s.ks_second_half <= 1
            assert s.stability_gap >= 0
        assert "Fig 11" in format_fig11(scores)


class TestTable6:
    def test_requires_iid_context(self, tiny_context):
        with pytest.raises(ValueError):
            run_table6(tiny_context)

    def test_runs_on_iid_context(self, tiny_iid_context):
        scores = run_table6(tiny_iid_context)
        names = [s.method for s in scores]
        assert "meta-IRM(complete)" in names
        assert "LightMIRM" in names
        assert "Table VI" in format_table6(scores)
