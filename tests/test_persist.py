"""Round-trip tests for model persistence."""

import json

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.tree import DecisionTree
from repro.persist import (
    binner_from_dict,
    binner_to_dict,
    gbdt_from_dict,
    gbdt_to_dict,
    load_pipeline,
    save_pipeline,
    tree_from_dict,
    tree_to_dict,
)
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.train.base import BaseTrainConfig


@pytest.fixture(scope="module")
def fitted_gbdt():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((600, 6))
    logit = 1.2 * x[:, 0] - 0.8 * x[:, 1] + 0.3 * x[:, 2] * x[:, 0]
    y = (rng.random(600) < 1 / (1 + np.exp(-logit))).astype(float)
    model = GBDTClassifier(
        GBDTParams(n_trees=8, subsample=0.8, colsample=0.8, seed=3)
    ).fit(x, y)
    return model, x


class TestBinnerRoundTrip:
    def test_identical_transform(self, rng):
        x = rng.standard_normal((200, 4))
        binner = QuantileBinner(max_bins=16).fit(x)
        restored = binner_from_dict(binner_to_dict(binner))
        np.testing.assert_array_equal(
            binner.transform(x), restored.transform(x)
        )

    def test_json_serialisable(self, rng):
        binner = QuantileBinner().fit(rng.standard_normal((50, 2)))
        json.dumps(binner_to_dict(binner))  # must not raise

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            binner_to_dict(QuantileBinner())

    def test_version_checked(self, rng):
        binner = QuantileBinner().fit(rng.standard_normal((50, 2)))
        payload = binner_to_dict(binner)
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            binner_from_dict(payload)


class TestTreeRoundTrip:
    def test_identical_leaves_and_values(self, fitted_gbdt):
        model, x = fitted_gbdt
        binned = model.binner.transform(x)
        tree = model.trees_[0]
        cols = model.tree_feature_subsets_[0]
        restored = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_array_equal(
            tree.predict_leaf(binned[:, cols]),
            restored.predict_leaf(binned[:, cols]),
        )
        np.testing.assert_array_equal(
            tree.predict_value(binned[:, cols]),
            restored.predict_value(binned[:, cols]),
        )
        assert restored.n_leaves == tree.n_leaves

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            tree_to_dict(DecisionTree())

    def test_restored_tree_has_no_importance(self, fitted_gbdt):
        model, _ = fitted_gbdt
        restored = tree_from_dict(tree_to_dict(model.trees_[0]))
        with pytest.raises(RuntimeError, match="histograms"):
            restored.feature_importance(6)


class TestGBDTRoundTrip:
    def test_identical_probabilities(self, fitted_gbdt):
        model, x = fitted_gbdt
        restored = gbdt_from_dict(gbdt_to_dict(model))
        np.testing.assert_array_equal(
            model.predict_proba(x), restored.predict_proba(x)
        )

    def test_identical_leaf_matrix(self, fitted_gbdt):
        model, x = fitted_gbdt
        restored = gbdt_from_dict(gbdt_to_dict(model))
        np.testing.assert_array_equal(
            model.predict_leaves(x), restored.predict_leaves(x)
        )

    def test_json_round_trip_through_text(self, fitted_gbdt):
        model, x = fitted_gbdt
        text = json.dumps(gbdt_to_dict(model))
        restored = gbdt_from_dict(json.loads(text))
        np.testing.assert_array_equal(
            model.predict_proba(x), restored.predict_proba(x)
        )


class TestPipelineArtifact:
    def test_save_load_round_trip(self, small_split, tmp_path):
        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=10)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path, metadata={"run": "test"})

        scorer = load_pipeline(path)
        expected = pipeline.predict_proba(small_split.test)
        actual = scorer.predict_proba(small_split.test)
        np.testing.assert_array_equal(expected, actual)
        assert scorer.trainer_name == "ERM"
        assert scorer.metadata == {"run": "test"}

    def test_accepts_raw_feature_matrix(self, small_split, tmp_path):
        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=5)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        scorer = load_pipeline(path)
        out = scorer.predict_proba(small_split.test.features[:7])
        assert out.shape == (7,)

    def test_unfitted_pipeline_rejected(self, tmp_path):
        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=1)))
        with pytest.raises(RuntimeError):
            save_pipeline(pipeline, tmp_path / "m.json")

    def test_finetuned_head_rejected(self, small_split, tmp_path):
        pipeline = LoanDefaultPipeline(
            FineTuneTrainer(FineTuneConfig(n_epochs=5))
        )
        pipeline.fit(small_split.train)
        with pytest.raises(ValueError, match="fine-tuned"):
            save_pipeline(pipeline, tmp_path / "m.json")

    def test_bad_version_rejected(self, small_split, tmp_path):
        pipeline = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=2)))
        pipeline.fit(small_split.train)
        path = tmp_path / "model.json"
        save_pipeline(pipeline, path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_pipeline(path)
