"""Unit tests for the ASHA scheduler: promotions, determinism, resume."""

import pytest

from repro.obs.runlog import (
    TUNE_RUNG_EVENT,
    TUNE_SPAN,
    TUNE_TRIAL_EVENT,
    RunLogReader,
)
from repro.obs.tracer import Tracer
from repro.tune import (
    ASHAConfig,
    HPSpace,
    SpaceError,
    default_space,
    load_trial_records,
    run_asha,
    run_grid,
    rung_budgets,
    sample_trials,
    select_promotions,
)

#: Small-but-real search knobs shared by the integration tests.
SMALL = ASHAConfig(n_trials=4, eta=2, min_epochs=4, max_epochs=8, seed=3)


def search_payload(result):
    """A SearchResult's deterministic projection (no wall-clock fields)."""
    payload = result.to_json()
    for trial in payload["trials"]:
        trial.pop("train_seconds")
        trial.pop("search_cost")
    return payload


class TestRungBudgets:
    def test_geometric_ladder(self):
        config = ASHAConfig(min_epochs=5, eta=3, max_epochs=45)
        assert rung_budgets(config) == [5, 15, 45]

    def test_cap_truncates(self):
        config = ASHAConfig(min_epochs=4, eta=3, max_epochs=12)
        assert rung_budgets(config) == [4, 12]

    def test_single_rung(self):
        config = ASHAConfig(min_epochs=10, eta=3, max_epochs=10)
        assert rung_budgets(config) == [10]

    @pytest.mark.parametrize("kwargs", [
        {"n_trials": 0},
        {"eta": 1},
        {"min_epochs": 0},
        {"min_epochs": 10, "max_epochs": 5},
        {"objective": "accuracy"},
        {"blend_weight": 1.5},
        {"validation_fraction": 0.0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ASHAConfig(**kwargs)


class TestSelectPromotions:
    def test_golden_top_third(self):
        scores = {"t000": 0.1, "t001": 0.9, "t002": 0.5,
                  "t003": 0.7, "t004": 0.3, "t005": 0.2}
        assert select_promotions(scores, eta=3) == ["t001", "t003"]

    def test_golden_half(self):
        scores = {"t000": 0.4, "t001": 0.2, "t002": 0.9, "t003": 0.6}
        assert select_promotions(scores, eta=2) == ["t002", "t003"]

    def test_tie_breaks_on_trial_id(self):
        scores = {"t002": 0.5, "t000": 0.5, "t001": 0.5}
        assert select_promotions(scores, eta=3) == ["t000"]

    def test_at_least_one_survives(self):
        assert select_promotions({"t000": 0.1, "t001": 0.2}, eta=3) \
            == ["t001"]

    def test_independent_of_dict_order(self):
        scores = {"t003": 0.7, "t001": 0.9, "t000": 0.1, "t002": 0.5}
        reordered = dict(sorted(scores.items()))
        assert select_promotions(scores, 2) == select_promotions(reordered, 2)


class TestSampleTrials:
    def test_deterministic(self):
        space = default_space("LightMIRM")
        a = sample_trials(space, 4, seed=7, trainer="LightMIRM")
        b = sample_trials(space, 4, seed=7, trainer="LightMIRM")
        assert a == b

    def test_seed_changes_population(self):
        space = default_space("LightMIRM")
        a = sample_trials(space, 4, seed=7, trainer="LightMIRM")
        b = sample_trials(space, 4, seed=8, trainer="LightMIRM")
        assert [t.params for t in a] != [t.params for t in b]

    def test_trainer_salts_the_stream(self):
        space = HPSpace(None, {"x": default_space("ERM").params["l2"]})
        a = sample_trials(space, 3, seed=7, trainer="ERM")
        b = sample_trials(space, 3, seed=7, trainer="IRMv1")
        assert [t.params for t in a] != [t.params for t in b]

    def test_samples_lie_in_space(self):
        space = default_space("LightMIRM")
        for trial in sample_trials(space, 8, seed=0, trainer="LightMIRM"):
            assert space.contains(trial.params)
            assert 0 <= trial.seed < 2 ** 32


class TestRunASHA:
    _cache = {}

    @pytest.fixture
    def baseline(self, tiny_envs):
        # tiny_envs is deterministic, so one serial search serves every test.
        if "baseline" not in self._cache:
            self._cache["baseline"] = run_asha(
                default_space("LightMIRM"), tiny_envs, SMALL, n_jobs=1
            )
        return self._cache["baseline"]

    def test_rung_structure(self, baseline):
        assert [r.budget for r in baseline.rungs] == [4, 8]
        rung0, rung1 = baseline.rungs
        assert len(rung0.evaluated) == 4
        assert rung0.promoted == rung1.evaluated
        assert len(rung1.evaluated) == 2
        assert rung1.promoted == ()
        assert set(rung0.promoted) <= set(rung0.evaluated)

    def test_best_reached_last_rung(self, baseline):
        assert baseline.best.rung == 1
        assert baseline.best.budget == 8
        assert baseline.best is baseline.ranked()[0]

    def test_trials_keep_deepest_rung(self, baseline):
        by_id = {t.trial_id: t for t in baseline.trials}
        promoted = set(baseline.rungs[0].promoted)
        for trial_id, trial in by_id.items():
            assert trial.rung == (1 if trial_id in promoted else 0)

    def test_promotions_follow_objective(self, baseline):
        rung0_scores = {}
        # Re-derive rung-0 scores from the trials that stayed at rung 0
        # plus the rung history; promoted trials must dominate the rest.
        kept = [t for t in baseline.trials if t.rung == 0]
        promoted = set(baseline.rungs[0].promoted)
        for t in kept:
            rung0_scores[t.trial_id] = t.objective_value(
                baseline.objective, baseline.blend_weight
            )
        assert promoted.isdisjoint(rung0_scores)

    def test_bit_identical_across_jobs(self, tiny_envs, baseline):
        parallel = run_asha(default_space("LightMIRM"), tiny_envs, SMALL,
                            n_jobs=4)
        assert search_payload(parallel) == search_payload(baseline)

    def test_unbound_space_rejected(self, tiny_envs):
        space = HPSpace(None, {"x": default_space("ERM").params["l2"]})
        with pytest.raises(SpaceError, match="trainer-bound"):
            run_asha(space, tiny_envs, SMALL)


class TestRunLogAndResume:
    def run_traced(self, envs, path, resume=None):
        tracer = Tracer(path=path)
        tracer.write_manifest(command="tune-test")
        result = run_asha(default_space("ERM"), envs, SMALL,
                          tracer=tracer, resume=resume)
        tracer.close()
        return result

    def test_log_schema_and_events(self, tiny_envs, tmp_path):
        path = tmp_path / "tune.jsonl"
        result = self.run_traced(tiny_envs, path)
        run = RunLogReader.read(path)  # validates every record
        assert len(run.spans(TUNE_SPAN)) == 1
        # One trial event per (trial, rung) evaluation: 4 + 2.
        assert len(run.events(TUNE_TRIAL_EVENT)) == 6
        rung_events = run.events(TUNE_RUNG_EVENT)
        assert [e["fields"]["rung"] for e in rung_events] == [0, 1]
        assert rung_events[0]["fields"]["promoted"] == \
            list(result.rungs[0].promoted)

    def test_resume_is_bit_identical(self, tiny_envs, tmp_path):
        first_log = tmp_path / "first.jsonl"
        first = self.run_traced(tiny_envs, first_log)
        records = load_trial_records(first_log)
        assert len(records) == 6
        resumed = self.run_traced(tiny_envs, tmp_path / "second.jsonl",
                                  resume=records)
        assert search_payload(resumed) == search_payload(first)
        # The resumed run replays cached evaluations without retraining.
        resumed_times = {t.trial_id: t.train_seconds
                         for t in resumed.trials}
        first_times = {t.trial_id: t.train_seconds for t in first.trials}
        assert resumed_times == first_times

    def test_resume_from_interrupted_log(self, tiny_envs, tmp_path):
        first_log = tmp_path / "first.jsonl"
        first = self.run_traced(tiny_envs, first_log)
        # Interrupt mid-rung: drop the last trial event and tear the tail
        # mid-line, as a killed process would.
        lines = first_log.read_text().splitlines()
        trial_lines = [i for i, line in enumerate(lines)
                       if f'"{TUNE_TRIAL_EVENT}"' in line]
        torn = lines[: trial_lines[-1]] + [lines[trial_lines[-1]][:25]]
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(torn))
        records = load_trial_records(truncated)
        assert len(records) == 5  # the torn record is unrecoverable
        resumed = self.run_traced(tiny_envs, tmp_path / "resumed.jsonl",
                                  resume=records)
        assert search_payload(resumed) == search_payload(first)

    def test_stale_records_are_ignored(self, tiny_envs, tmp_path):
        first_log = tmp_path / "first.jsonl"
        self.run_traced(tiny_envs, first_log)
        records = load_trial_records(first_log)
        # A different search seed regenerates different trials, so no
        # stale record may be replayed into the new search.
        other = ASHAConfig(n_trials=4, eta=2, min_epochs=4, max_epochs=8,
                           seed=99)
        fresh = run_asha(default_space("ERM"), tiny_envs, other)
        resumed = run_asha(default_space("ERM"), tiny_envs, other,
                           resume=records)
        assert search_payload(resumed) == search_payload(fresh)

    def test_resumed_log_is_self_contained(self, tiny_envs, tmp_path):
        first_log = tmp_path / "first.jsonl"
        self.run_traced(tiny_envs, first_log)
        records = load_trial_records(first_log)
        second_log = tmp_path / "second.jsonl"
        self.run_traced(tiny_envs, second_log, resume=records)
        # Replayed results are re-emitted, so the second log alone can
        # seed a third run.
        assert len(load_trial_records(second_log)) == len(records)


class TestRunGrid:
    def test_grid_over_engine(self, tiny_envs):
        space = HPSpace.grid("ERM", {"learning_rate": [0.5, 1.0]})
        serial = run_grid(space, tiny_envs, n_epochs=4, seed=3)
        parallel = run_grid(space, tiny_envs, n_epochs=4, seed=3, n_jobs=2)
        assert search_payload(serial) == search_payload(parallel)
        assert len(serial.trials) == 2
        assert [r.budget for r in serial.rungs] == [4]
        assert serial.rungs[0].promoted == ()

    def test_grid_requires_bound_space(self, tiny_envs):
        space = HPSpace(None, {"x": default_space("ERM").params["l2"]})
        with pytest.raises(SpaceError, match="trainer-bound"):
            run_grid(space, tiny_envs)

    def test_grid_params_are_grid_points(self, tiny_envs):
        space = HPSpace.grid("ERM", {"learning_rate": [0.5, 1.0],
                                     "l2": [1e-4]})
        result = run_grid(space, tiny_envs, n_epochs=3)
        assert [t.params for t in result.trials] == space.grid_points()
