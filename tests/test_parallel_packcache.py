"""Unit tests for the refcounted, LRU-evicting shared-pack cache."""

import numpy as np
import pytest

from repro.parallel.shared import PackCache, SharedArrayPack


def make_pack(n_floats=128):
    return SharedArrayPack.pack({"x": np.arange(n_floats, dtype=np.float64)})


@pytest.fixture
def cache():
    store = PackCache(max_bytes=None)
    yield store
    store.clear()


class TestBasics:
    def test_put_get_contains(self, cache):
        pack = make_pack()
        cache.put("a", pack)
        assert "a" in cache
        assert len(cache) == 1
        assert cache.get("a") is pack
        assert cache.get("missing") is None

    def test_duplicate_put_rejected(self, cache):
        cache.put("a", make_pack())
        rejected = make_pack(8)
        try:
            with pytest.raises(KeyError, match="already cached"):
                cache.put("a", rejected)
            assert len(cache) == 1
        finally:
            # A rejected pack was never handed over; the caller owns it.
            rejected.dispose()

    def test_total_bytes_tracks_entries(self, cache):
        cache.put("a", make_pack(), nbytes=100)
        cache.put("b", make_pack(), nbytes=50)
        assert cache.total_bytes == 150

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            PackCache(max_bytes=-1)


class TestPinning:
    def test_pin_returns_pack_and_counts(self, cache):
        pack = make_pack()
        cache.put("a", pack)
        assert cache.pin("a") is pack
        assert cache.pin("a") is pack
        assert cache.pins("a") == 2
        cache.unpin("a")
        assert cache.pins("a") == 1

    def test_pin_missing_key_raises(self, cache):
        with pytest.raises(KeyError):
            cache.pin("ghost")

    def test_unpin_without_lease_raises(self, cache):
        cache.put("a", make_pack())
        with pytest.raises(ValueError, match="not pinned"):
            cache.unpin("a")


class TestEviction:
    def test_lru_order_and_get_refresh(self):
        cache = PackCache(max_bytes=250)
        cache.put("a", make_pack(), nbytes=100)
        cache.put("b", make_pack(), nbytes=100)
        assert cache.keys() == ["a", "b"]
        cache.get("a")  # refresh: b is now LRU
        cache.put("c", make_pack(), nbytes=100)
        assert cache.evict_to_budget() == ["b"]
        assert cache.keys() == ["a", "c"]
        assert cache.evictions == 1
        cache.clear()

    def test_pinned_entries_survive_pressure(self):
        cache = PackCache(max_bytes=100)
        cache.put("hot", make_pack(), nbytes=100)
        cache.pin("hot")
        cache.put("cold", make_pack(), nbytes=100)
        # "hot" is LRU but pinned: only "cold" may go, and the budget
        # transiently overshoots while the lease is held.
        assert cache.evict_to_budget() == ["cold"]
        assert "hot" in cache
        cache.unpin("hot")
        cache.clear()

    def test_all_pinned_overshoots_without_eviction(self):
        cache = PackCache(max_bytes=50)
        for key in ("a", "b"):
            cache.put(key, make_pack(), nbytes=100)
            cache.pin(key)
        assert cache.evict_to_budget() == []
        assert cache.total_bytes == 200
        cache.unpin("a")
        assert cache.evict_to_budget() == ["a"]
        cache.unpin("b")
        cache.clear()

    def test_no_budget_never_evicts(self, cache):
        for index in range(5):
            cache.put(f"k{index}", make_pack(), nbytes=10**9)
        assert cache.evict_to_budget() == []
        assert len(cache) == 5

    def test_evicted_pack_is_disposed(self):
        cache = PackCache(max_bytes=0)
        pack = make_pack()
        name = pack.spec.shm_name
        cache.put("a", pack)
        cache.evict_to_budget()
        # The shared block is unlinked: a fresh attach must fail.
        with pytest.raises(FileNotFoundError):
            SharedArrayPack.attach(pack.spec)
        assert name  # silence unused warnings; name recorded pre-dispose
