"""Integration tests for the live telemetry plane on the real front-end.

The acceptance criteria of the telemetry-plane PR, verified against live
worker processes: exact cross-process counter aggregation in a 4-worker
soak, counter survival across a worker death/respawn, bit-identical
scores with the plane on vs off, and a forced drift episode producing a
schema-valid ``alert`` → ``health_transition`` → ``lifecycle_stage``
event sequence through the lifecycle controller.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.monitor.streaming import StreamingPSI
from repro.obs.live import (
    CalibrationMonitor,
    HealthMonitor,
    ScoreDriftMonitor,
    SLOConfig,
    SLOTracker,
)
from repro.obs.runlog import (
    ALERT_EVENT,
    HEALTH_TRANSITION_EVENT,
    LIFECYCLE_STAGE_EVENT,
    RunLogReader,
)
from repro.obs.tracer import Tracer
from repro.serve.degradation import DriftGuard
from repro.serve.frontend import FrontendConfig, ScoringFrontend


def _start_live(model, n_workers=4, **kwargs):
    config = FrontendConfig(n_workers=n_workers, max_batch_size=16,
                            live_metrics=True,
                            live_poll_interval_s=0.01)
    return ScoringFrontend(model, config, **kwargs).start()


class TestExactAggregation:
    def test_four_worker_soak_counts_every_row_exactly_once(
            self, scoring_model, request_rows):
        frontend = _start_live(scoring_model, n_workers=4)
        try:
            results = frontend.score_stream(request_rows)
            assert all(r.ok for r in results)
            snap = frontend.snapshot()
        finally:
            frontend.stop()

        workers = snap["workers"]
        # EXACT: every admitted row scored once, across 4 processes.
        assert workers["counters"]["rows_scored"] == len(request_rows)
        assert workers["workers_reporting"] == 4
        assert workers["counters"]["batches"] >= 4
        hist = workers["histograms"]["batch_latency"]
        assert hist["count"] == workers["counters"]["batches"]
        # Merged-schema satellite: frontend and worker views in one dict.
        assert snap["telemetry"]["admitted"] == len(request_rows)
        assert "liveness" in snap

    def test_aggregate_equals_sum_of_per_worker_rows(self, scoring_model,
                                                     request_rows):
        frontend = _start_live(scoring_model, n_workers=4)
        try:
            frontend.score_stream(request_rows)
            # Ground truth: read each worker's own slab row and sum.
            samples = frontend._aggregator.read_all()
            merged = frontend._aggregator.aggregate()
            by_hand = sum(s["counters"]["rows_scored"]
                          for s in samples.values())
            assert merged["counters"]["rows_scored"] == by_hand
        finally:
            frontend.stop()

    def test_post_stop_snapshot_still_reports_workers(self, scoring_model,
                                                      request_rows):
        frontend = _start_live(scoring_model, n_workers=2)
        try:
            frontend.score_stream(request_rows[:50])
        finally:
            frontend.stop()
        workers = frontend.snapshot()["workers"]
        assert workers["counters"]["rows_scored"] == 50
        # The slab is disposed after stop; the view is the final capture.
        assert frontend._slab is None

    def test_worker_death_preserves_lifetime_totals(self, scoring_model,
                                                    request_rows):
        rows = request_rows[:80]
        frontend = _start_live(scoring_model, n_workers=2)
        try:
            phase1 = frontend.score_stream(rows)
            assert all(r.ok for r in phase1)
            # Kill one idle worker: its published totals are complete, so
            # the absorb-on-reap path must preserve them exactly.
            os.kill(frontend.worker_pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while (frontend.telemetry.snapshot()["worker_deaths"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            phase2 = frontend.score_stream(rows)
            assert all(r.ok for r in phase2)
            snap = frontend.snapshot()
        finally:
            frontend.stop()
        assert snap["workers"]["counters"]["rows_scored"] == 2 * len(rows)


class TestBitIdentity:
    def test_scores_identical_with_plane_on_and_off(self, scoring_model,
                                                    request_rows):
        reference = scoring_model.predict_proba(request_rows)

        plain = ScoringFrontend(
            scoring_model, FrontendConfig(n_workers=2, max_batch_size=16)
        ).start()
        try:
            off = [r.score for r in plain.score_stream(request_rows)]
        finally:
            plain.stop()

        live = _start_live(
            scoring_model, n_workers=2,
            score_drift=ScoreDriftMonitor(reference, window_rows=50),
            calibration=CalibrationMonitor(float(reference.mean())),
            slo_tracker=SLOTracker([SLOConfig("admission",
                                              error_budget=0.01)]),
            health_monitor=HealthMonitor(),
        )
        try:
            on = [r.score for r in live.score_stream(request_rows)]
        finally:
            live.stop()

        np.testing.assert_array_equal(np.array(off), reference)
        np.testing.assert_array_equal(np.array(on), reference)


class TestLiveSnapshotShape:
    def test_all_sections_present_when_fully_wired(self, scoring_model,
                                                   request_rows, small_split):
        reference = scoring_model.predict_proba(request_rows)
        guard = DriftGuard(StreamingPSI.from_dataset(small_split.train),
                           psi_threshold=0.25)
        frontend = _start_live(
            scoring_model, n_workers=2,
            drift_guard=guard,
            score_drift=ScoreDriftMonitor(reference, window_rows=50),
            calibration=CalibrationMonitor(float(reference.mean())),
            slo_tracker=SLOTracker([
                SLOConfig("admission", error_budget=0.01),
                SLOConfig("latency", error_budget=0.05),
            ]),
            health_monitor=HealthMonitor(),
        )
        try:
            provinces = small_split.test.provinces[:len(request_rows)]
            frontend.score_stream(request_rows, provinces=provinces)
            snap = frontend.live_snapshot()
        finally:
            frontend.stop()
        assert {"unix", "generation", "pending", "workers_alive",
                "frontend", "workers", "liveness", "drift_guard",
                "monitors", "health"} <= set(snap)
        assert {"score_drift", "calibration", "slo"} <= set(
            snap["monitors"])
        # Monitors actually saw the resolved scores.
        assert snap["monitors"]["calibration"]["n_seen"] > 0
        provinces_seen = snap["monitors"]["score_drift"]["provinces"]
        pending = sum(p["pending_rows"] for p in provinces_seen.values())
        completed = sum(p["windows_completed"] for p in
                        provinces_seen.values())
        assert pending + completed > 0
        # SLO saw admissions as good events.
        slo = snap["monitors"]["slo"]["admission"]
        assert slo["events_tracked"] > 0
        assert slo["bad_tracked"] == 0


class TestDriftEpisode:
    def test_alert_transition_lifecycle_sequence(self, tmp_path,
                                                 small_split,
                                                 fitted_pipeline):
        """Forced drift → alert → health_transition → lifecycle_stage."""
        from repro.serve.lifecycle import (
            LifecycleController, PromotionGates, RetrainConfig,
        )
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "registry")
        registry.save(fitted_pipeline, metadata={"run": "seed"})
        champion = registry.load("champion")

        shifted = small_split.test.features.copy()
        shifted[:, 0] = shifted[:, 0] * 3.0 + 2.0
        shifted[:, 1] = shifted[:, 1] - 1.5

        trace_path = tmp_path / "episode.jsonl"
        tracer = Tracer(path=trace_path)
        guard = DriftGuard(StreamingPSI.from_dataset(small_split.train),
                           psi_threshold=0.25, min_rows=200)
        health = HealthMonitor(tracer=tracer, recovery_polls=3)
        controller = LifecycleController(
            registry,
            holdout=small_split.test,
            retrain=RetrainConfig(trainer="ERM",
                                  trainer_overrides={"n_epochs": 4},
                                  gbdt={"n_trees": 8, "max_bins": 16},
                                  tree={"max_leaves": 8,
                                        "min_child_samples": 10}),
            gates=PromotionGates(min_mean_auc=0.0, max_ks_regression=1.0),
            tracer=tracer,
            workdir=tmp_path / "work",
        )
        controller.attach_health_monitor(health)

        frontend = _start_live(champion, n_workers=2, drift_guard=guard,
                               health_monitor=health)
        try:
            request = None
            for start in range(0, len(shifted), 64):
                frontend.score_stream(shifted[start:start + 64])
                time.sleep(0.02)   # let the throttled live tick run
                request = controller.consume_recovery_request()
                if request is not None:
                    break
            assert request is not None, "drift episode must page lifecycle"
            assert request["from_state"] in ("healthy", "degraded")
            assert "feature_psi" in request["reasons"]
            report = controller.run_recovery(
                small_split.train, trigger=request
            )
            assert report["trigger"] == request
        finally:
            frontend.stop()
            tracer.close()

        # The whole episode is in ONE run log, schema-validated on read.
        run = RunLogReader.read(trace_path)
        alerts = run.events(ALERT_EVENT)
        transitions = run.events(HEALTH_TRANSITION_EVENT)
        stages = run.events(LIFECYCLE_STAGE_EVENT)
        assert alerts and transitions and stages

        # Ordering: first alert <= first transition < first lifecycle
        # stage (the controller only acts on a critical transition).
        names = [r.get("name") for r in run.records
                 if r.get("kind") == "event"]
        assert names.index(ALERT_EVENT) <= names.index(
            HEALTH_TRANSITION_EVENT)
        assert names.index(HEALTH_TRANSITION_EVENT) < names.index(
            LIFECYCLE_STAGE_EVENT)
        # The drift_detected stage carries the triggering health context.
        detected = [e for e in stages
                    if e["fields"].get("stage") == "drift_detected"]
        assert detected and "trigger" in detected[0]["fields"]


class TestDisabledPath:
    def test_no_slab_without_live_metrics(self, scoring_model,
                                          request_rows):
        frontend = ScoringFrontend(
            scoring_model, FrontendConfig(n_workers=2)
        ).start()
        try:
            frontend.score_stream(request_rows[:20])
            assert frontend._slab is None
            assert frontend._aggregator is None
            snap = frontend.snapshot()
        finally:
            frontend.stop()
        # The PR 7 snapshot schema is unchanged when the plane is off.
        assert "workers" not in snap
        assert "liveness" not in snap

    def test_live_snapshot_works_without_monitors(self, scoring_model,
                                                  request_rows):
        frontend = _start_live(scoring_model, n_workers=2)
        try:
            frontend.score_stream(request_rows[:20])
            snap = frontend.live_snapshot()
        finally:
            frontend.stop()
        assert snap["monitors"] == {}
        assert "health" not in snap
        assert snap["workers"]["counters"]["rows_scored"] == 20
