"""Fault injection against the multi-worker scoring front-end.

Every failure mode a production scorer must survive, injected
deterministically: a worker killed mid-batch (in-flight requests requeue
or error *with context*, never hang), a poison request inside a
micro-batch (blast radius is exactly that request), and queue overflow
(backpressure sheds with an explicit Overloaded result, never silently).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serve.frontend import (
    ERROR,
    OK,
    OVERLOADED,
    FrontendConfig,
    ScoringFrontend,
)


def _start(model, **overrides) -> ScoringFrontend:
    config = FrontendConfig(**{"n_workers": 2, "max_batch_size": 16,
                               **overrides})
    return ScoringFrontend(model, config).start()


def _settle(frontend: ScoringFrontend) -> None:
    """Give the paused workers time to drain their control queues."""
    time.sleep(10 * frontend.config.poll_timeout_s)


class TestWorkerDeath:
    def test_kill_worker_mid_batch_requeues_to_survivors(
            self, scoring_model, request_rows):
        reference = scoring_model.predict_proba(request_rows)
        frontend = _start(scoring_model, n_workers=2)
        try:
            # Freeze consumption so both workers provably hold queued
            # requests, then kill one mid-flight.
            frontend.pause_workers()
            _settle(frontend)
            tickets = [frontend.submit(row) for row in request_rows]
            victim = frontend.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            frontend.resume_workers()
            results = [t.result(timeout=60) for t in tickets]
        finally:
            frontend.stop()

        # Requeue path: every request still resolves, bit-identically.
        assert all(r.ok for r in results)
        np.testing.assert_array_equal(
            np.array([r.score for r in results]), reference
        )
        snap = frontend.telemetry.snapshot()
        assert snap["worker_deaths"] >= 1
        assert snap["requeued"] >= 1

    def test_kill_sole_worker_respawns_and_recovers(self, scoring_model,
                                                    request_rows):
        rows = request_rows[:60]
        frontend = _start(scoring_model, n_workers=1)
        try:
            frontend.pause_workers()
            _settle(frontend)
            tickets = [frontend.submit(row) for row in rows]
            os.kill(frontend.worker_pids[0], signal.SIGKILL)
            # The replacement starts unpaused, so no resume is needed:
            # recovery must not depend on operator action.
            results = [t.result(timeout=60) for t in tickets]
        finally:
            frontend.stop()
        assert all(r.ok for r in results)
        np.testing.assert_array_equal(
            np.array([r.score for r in results]),
            scoring_model.predict_proba(rows),
        )
        assert frontend.telemetry.worker_deaths >= 1


class TestPoisonRequest:
    @pytest.mark.parametrize("poison_value", [np.nan, np.inf])
    def test_blast_radius_is_the_poison_request_only(
            self, poison_value, scoring_model, request_rows):
        rows = request_rows[:40]
        poison = rows[7].copy()
        poison[3] = poison_value

        frontend = _start(scoring_model, n_workers=1, max_batch_size=64)
        try:
            # One worker + paused consumption guarantees every request
            # lands in the same micro-batch as the poison row.
            frontend.pause_workers()
            _settle(frontend)
            tickets = [frontend.submit(row) for row in rows[:20]]
            poison_ticket = frontend.submit(poison)
            tickets += [frontend.submit(row) for row in rows[20:]]
            frontend.resume_workers()
            results = [t.result(timeout=60) for t in tickets]
            poison_result = poison_ticket.result(timeout=60)
        finally:
            frontend.stop()

        assert poison_result.status == ERROR
        assert "finite" in poison_result.context
        assert all(r.status == OK for r in results)
        np.testing.assert_array_equal(
            np.array([r.score for r in results]),
            scoring_model.predict_proba(rows),
        )

    def test_malformed_width_is_refused_at_the_door(self, scoring_model):
        frontend = _start(scoring_model, n_workers=1)
        try:
            ticket = frontend.submit(np.zeros(3))
        finally:
            frontend.stop()
        result = ticket.result(timeout=5)
        assert result.status == ERROR
        assert "feature row" in result.context
        assert frontend.telemetry.refused == 1


class TestBackpressure:
    def test_overflow_sheds_deterministically_with_503(self, scoring_model,
                                                       request_rows):
        rows = request_rows[:12]
        frontend = _start(scoring_model, n_workers=1, max_queue=8)
        try:
            frontend.pause_workers()
            _settle(frontend)
            admitted = [frontend.submit(row) for row in rows[:8]]
            shed = [frontend.submit(row) for row in rows[8:]]
            # Sheds resolve immediately — no queueing, no silent drop.
            assert all(t.done for t in shed)
            shed_results = [t.result(timeout=1) for t in shed]
            frontend.resume_workers()
            admitted_results = [t.result(timeout=60) for t in admitted]
        finally:
            frontend.stop()

        assert [r.status for r in shed_results] == [OVERLOADED] * 4
        assert all("queue full" in r.context for r in shed_results)
        assert all(r.ok for r in admitted_results)
        np.testing.assert_array_equal(
            np.array([r.score for r in admitted_results]),
            scoring_model.predict_proba(rows[:8]),
        )
        snap = frontend.telemetry.snapshot()
        assert snap["shed"] == 4
        assert snap["admitted"] == 8

    def test_capacity_recovers_after_drain(self, scoring_model,
                                           request_rows):
        frontend = _start(scoring_model, n_workers=1, max_queue=4)
        try:
            first = frontend.score_stream(request_rows[:4])
            # The queue drained, so a second wave admits fully.
            second = frontend.score_stream(request_rows[4:8])
        finally:
            frontend.stop()
        assert all(r.ok for r in first + second)
        assert frontend.telemetry.shed == 0


class TestAsyncioSurface:
    def test_score_many_resolves_through_the_event_loop(self, scoring_model,
                                                        request_rows):
        import asyncio

        rows = request_rows[:32]
        frontend = _start(scoring_model, n_workers=2)
        try:
            results = asyncio.run(frontend.score_many(rows))
        finally:
            frontend.stop()
        assert all(r.ok for r in results)
        np.testing.assert_array_equal(
            np.array([r.score for r in results]),
            scoring_model.predict_proba(rows),
        )
