"""Unit + property tests for the logistic model's analytic derivatives.

The MAML machinery relies on these gradients and Hessian-vector products
being *exact*; every derivative is checked against finite differences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.models.logistic import LogisticModel, binary_cross_entropy, sigmoid


def _problem(rng, n=40, d=6, l2=0.0, sparse_x=False):
    x = rng.standard_normal((n, d))
    if sparse_x:
        x[x < 0.5] = 0.0
        x = sparse.csr_matrix(x)
    logits = np.asarray(x @ rng.standard_normal(d)).ravel()
    y = (rng.random(n) < sigmoid(logits)).astype(float)
    theta = 0.5 * rng.standard_normal(d)
    return LogisticModel(d, l2=l2), theta, x, y


def _finite_diff_grad(fn, theta, eps=1e-6):
    grad = np.zeros_like(theta)
    for i in range(theta.size):
        up = theta.copy()
        up[i] += eps
        down = theta.copy()
        down[i] -= eps
        grad[i] = (fn(up) - fn(down)) / (2 * eps)
    return grad


class TestSigmoid:
    def test_extreme_values_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0, atol=1e-12)


class TestLoss:
    def test_bce_known_value(self):
        y = np.array([1.0, 0.0])
        p = np.array([0.8, 0.3])
        expected = -(np.log(0.8) + np.log(0.7)) / 2
        assert binary_cross_entropy(y, p) == pytest.approx(expected)

    def test_bce_clipping_handles_zero_prob(self):
        assert np.isfinite(
            binary_cross_entropy(np.array([1.0]), np.array([0.0]))
        )

    def test_l2_term_added(self, rng):
        model, theta, x, y = _problem(rng, l2=0.5)
        bare = LogisticModel(theta.size, l2=0.0)
        assert model.loss(theta, x, y) == pytest.approx(
            bare.loss(theta, x, y) + 0.25 * float(theta @ theta)
        )


class TestGradient:
    @pytest.mark.parametrize("l2", [0.0, 0.1])
    @pytest.mark.parametrize("sparse_x", [False, True])
    def test_matches_finite_differences(self, rng, l2, sparse_x):
        model, theta, x, y = _problem(rng, l2=l2, sparse_x=sparse_x)
        grad = model.gradient(theta, x, y)
        fd = _finite_diff_grad(lambda t: model.loss(t, x, y), theta)
        np.testing.assert_allclose(grad, fd, atol=1e-5)

    def test_loss_and_gradient_consistent(self, rng):
        model, theta, x, y = _problem(rng)
        loss, grad = model.loss_and_gradient(theta, x, y)
        assert loss == pytest.approx(model.loss(theta, x, y))
        np.testing.assert_allclose(grad, model.gradient(theta, x, y))

    def test_zero_at_optimum_direction(self, rng):
        """Gradient descent reduces the loss."""
        model, theta, x, y = _problem(rng)
        loss0 = model.loss(theta, x, y)
        theta1 = theta - 0.5 * model.gradient(theta, x, y)
        assert model.loss(theta1, x, y) < loss0


class TestHessianVectorProduct:
    @pytest.mark.parametrize("l2", [0.0, 0.1])
    @pytest.mark.parametrize("sparse_x", [False, True])
    def test_matches_finite_difference_of_gradient(self, rng, l2, sparse_x):
        model, theta, x, y = _problem(rng, l2=l2, sparse_x=sparse_x)
        v = rng.standard_normal(theta.size)
        hv = model.hessian_vector_product(theta, x, y, v)
        eps = 1e-6
        fd = (
            model.gradient(theta + eps * v, x, y)
            - model.gradient(theta - eps * v, x, y)
        ) / (2 * eps)
        np.testing.assert_allclose(hv, fd, atol=1e-5)

    def test_linear_in_vector(self, rng):
        model, theta, x, y = _problem(rng)
        v1 = rng.standard_normal(theta.size)
        v2 = rng.standard_normal(theta.size)
        lhs = model.hessian_vector_product(theta, x, y, 2 * v1 + v2)
        rhs = 2 * model.hessian_vector_product(
            theta, x, y, v1
        ) + model.hessian_vector_product(theta, x, y, v2)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_positive_semidefinite(self, rng):
        """v' H v >= 0 for the convex BCE objective."""
        model, theta, x, y = _problem(rng)
        for _ in range(5):
            v = rng.standard_normal(theta.size)
            hv = model.hessian_vector_product(theta, x, y, v)
            assert float(v @ hv) >= -1e-12

    def test_wrong_vector_shape_raises(self, rng):
        model, theta, x, y = _problem(rng)
        with pytest.raises(ValueError):
            model.hessian_vector_product(theta, x, y, np.zeros(3))


class TestValidation:
    def test_wrong_theta_shape_raises(self, rng):
        model, theta, x, y = _problem(rng)
        with pytest.raises(ValueError):
            model.predict_proba(theta[:-1], x)

    def test_wrong_feature_dim_raises(self, rng):
        model, theta, x, y = _problem(rng)
        with pytest.raises(ValueError):
            model.predict_proba(theta, x[:, :-1])

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            LogisticModel(0)
        with pytest.raises(ValueError):
            LogisticModel(3, l2=-1.0)

    def test_init_params_deterministic(self):
        model = LogisticModel(8)
        np.testing.assert_array_equal(
            model.init_params(seed=4), model.init_params(seed=4)
        )
        assert not np.array_equal(
            model.init_params(seed=4), model.init_params(seed=5)
        )


class TestGradientProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_gradient_check_random_problems(self, seed):
        rng = np.random.default_rng(seed)
        model, theta, x, y = _problem(
            rng, n=int(rng.integers(5, 30)), d=int(rng.integers(2, 8)),
            l2=float(rng.random() * 0.1)
        )
        grad = model.gradient(theta, x, y)
        fd = _finite_diff_grad(lambda t: model.loss(t, x, y), theta)
        np.testing.assert_allclose(grad, fd, atol=2e-5)
