"""Unit tests for the MAML chain rule and sigma-penalty gradients.

These verify the analytic meta-gradient against finite differences of the
*composed* objective — the strongest possible check that our closed-form
second-order machinery matches what autograd would compute.
"""

import numpy as np
import pytest

from repro.core.meta_grad import (
    backprop_through_inner_step,
    sigma_and_weights,
    sigma_of,
)
from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel, sigmoid


def _env(rng, name, n=60, d=5):
    x = rng.standard_normal((n, d))
    y = (rng.random(n) < sigmoid(x @ rng.standard_normal(d))).astype(float)
    return EnvironmentData(name, x, y)


@pytest.fixture()
def setup(rng):
    d = 5
    model = LogisticModel(d, l2=0.01)
    inner = _env(rng, "inner")
    outer = _env(rng, "outer")
    theta = 0.3 * rng.standard_normal(d)
    return model, inner, outer, theta


class TestChainRule:
    def test_matches_finite_difference_of_composition(self, setup):
        """d/dtheta [ R_outer(theta - a * grad R_inner(theta)) ]."""
        model, inner, outer, theta = setup
        alpha = 0.2

        def composed(t):
            adapted = t - alpha * model.gradient(t, inner.features,
                                                 inner.labels)
            return model.loss(adapted, outer.features, outer.labels)

        adapted = theta - alpha * model.gradient(theta, inner.features,
                                                 inner.labels)
        outer_grad = model.gradient(adapted, outer.features, outer.labels)
        analytic = backprop_through_inner_step(
            model, theta, inner, outer_grad, alpha
        )

        eps = 1e-6
        fd = np.zeros_like(theta)
        for i in range(theta.size):
            up, down = theta.copy(), theta.copy()
            up[i] += eps
            down[i] -= eps
            fd[i] = (composed(up) - composed(down)) / (2 * eps)
        np.testing.assert_allclose(analytic, fd, atol=1e-5)

    def test_first_order_drops_curvature(self, setup):
        model, inner, outer, theta = setup
        adapted = theta - 0.2 * model.gradient(theta, inner.features,
                                               inner.labels)
        outer_grad = model.gradient(adapted, outer.features, outer.labels)
        fo = backprop_through_inner_step(
            model, theta, inner, outer_grad, 0.2, first_order=True
        )
        np.testing.assert_array_equal(fo, outer_grad)
        so = backprop_through_inner_step(
            model, theta, inner, outer_grad, 0.2, first_order=False
        )
        assert not np.allclose(fo, so)

    def test_zero_inner_lr_is_identity(self, setup):
        model, inner, outer, theta = setup
        outer_grad = model.gradient(theta, outer.features, outer.labels)
        out = backprop_through_inner_step(
            model, theta, inner, outer_grad, inner_lr=1e-12
        )
        np.testing.assert_allclose(out, outer_grad, atol=1e-10)


class TestSigma:
    def test_sigma_is_population_std(self):
        losses = np.array([1.0, 2.0, 3.0, 4.0])
        assert sigma_of(losses) == pytest.approx(np.std(losses))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sigma_of(np.array([]))

    def test_weights_formula(self):
        losses = np.array([1.0, 3.0])
        lam = 2.0
        sigma, weights = sigma_and_weights(losses, lam)
        # dsigma/dR_m = (R_m - mean) / (M sigma)
        expected = 1.0 + lam * (losses - 2.0) / (2 * sigma)
        np.testing.assert_allclose(weights, expected)

    def test_equal_losses_unit_weights(self):
        sigma, weights = sigma_and_weights(np.array([2.0, 2.0, 2.0]), 5.0)
        assert sigma == pytest.approx(0.0)
        np.testing.assert_array_equal(weights, 1.0)

    def test_zero_lambda_unit_weights(self):
        _, weights = sigma_and_weights(np.array([1.0, 5.0]), 0.0)
        np.testing.assert_array_equal(weights, 1.0)

    def test_weights_gradient_check(self):
        """sum_m w_m * dR_m == d/dR [ sum R + lambda * sigma ]."""
        rng = np.random.default_rng(0)
        losses = rng.random(6) + 0.5
        lam = 1.7

        def objective(ls):
            return ls.sum() + lam * np.std(ls)

        _, weights = sigma_and_weights(losses, lam)
        eps = 1e-7
        for m in range(losses.size):
            up, down = losses.copy(), losses.copy()
            up[m] += eps
            down[m] -= eps
            fd = (objective(up) - objective(down)) / (2 * eps)
            assert weights[m] == pytest.approx(fd, abs=1e-5)
