"""Unit tests for the step timer."""

import time

import pytest

from repro.timing import STEP_NAMES, StepStats, StepTimer


class TestStepTimer:
    def test_accumulates_time_and_count(self):
        timer = StepTimer(enabled=True)
        for _ in range(3):
            with timer.step("work"):
                time.sleep(0.002)
        stats = timer.stats["work"]
        assert stats.count == 3
        assert stats.total_seconds >= 0.006
        assert stats.mean_seconds == pytest.approx(
            stats.total_seconds / 3
        )

    def test_disabled_timer_records_nothing(self):
        timer = StepTimer(enabled=False)
        with timer.step("work"):
            pass
        timer.begin_epoch()
        timer.end_epoch()
        assert timer.stats == {}
        assert timer.epoch_seconds == []

    def test_records_on_exception(self):
        timer = StepTimer(enabled=True)
        with pytest.raises(RuntimeError):
            with timer.step("boom"):
                raise RuntimeError("x")
        assert timer.stats["boom"].count == 1

    def test_epoch_timing(self):
        timer = StepTimer(enabled=True)
        for _ in range(2):
            timer.begin_epoch()
            time.sleep(0.002)
            timer.end_epoch()
        assert len(timer.epoch_seconds) == 2
        assert timer.mean_epoch_seconds >= 0.002

    def test_end_epoch_without_begin_is_noop(self):
        timer = StepTimer(enabled=True)
        timer.end_epoch()
        assert timer.epoch_seconds == []

    def test_proportions_sum_to_one(self):
        timer = StepTimer(enabled=True)
        with timer.step("a"):
            time.sleep(0.002)
        with timer.step("b"):
            time.sleep(0.002)
        proportions = timer.proportions()
        assert sum(proportions.values()) == pytest.approx(1.0)

    def test_proportions_empty(self):
        assert StepTimer(enabled=True).proportions() == {}

    def test_missing_step_reads_zero(self):
        timer = StepTimer(enabled=True)
        assert timer.mean_step_seconds("absent") == 0.0
        assert timer.total_step_seconds("absent") == 0.0

    def test_table_row_uses_canonical_names(self):
        timer = StepTimer(enabled=True)
        row = timer.as_table_row()
        assert tuple(row) == STEP_NAMES


class TestStepStats:
    def test_zero_count_mean(self):
        assert StepStats().mean_seconds == 0.0
