"""Unit tests for the step timer."""

import time

import pytest

from repro.timing import STEP_NAMES, StepStats, StepTimer


class TestStepTimer:
    def test_accumulates_time_and_count(self):
        timer = StepTimer(enabled=True)
        for _ in range(3):
            with timer.step("work"):
                time.sleep(0.002)
        stats = timer.stats["work"]
        assert stats.count == 3
        assert stats.total_seconds >= 0.006
        assert stats.mean_seconds == pytest.approx(
            stats.total_seconds / 3
        )

    def test_disabled_timer_records_nothing(self):
        timer = StepTimer(enabled=False)
        with timer.step("work"):
            pass
        timer.begin_epoch()
        timer.end_epoch()
        assert timer.stats == {}
        assert timer.epoch_seconds == []

    def test_records_on_exception(self):
        timer = StepTimer(enabled=True)
        with pytest.raises(RuntimeError):
            with timer.step("boom"):
                raise RuntimeError("x")
        assert timer.stats["boom"].count == 1

    def test_epoch_timing(self):
        timer = StepTimer(enabled=True)
        for _ in range(2):
            timer.begin_epoch()
            time.sleep(0.002)
            timer.end_epoch()
        assert len(timer.epoch_seconds) == 2
        assert timer.mean_epoch_seconds >= 0.002

    def test_end_epoch_without_begin_is_noop(self):
        timer = StepTimer(enabled=True)
        timer.end_epoch()
        assert timer.epoch_seconds == []

    def test_proportions_sum_to_one(self):
        timer = StepTimer(enabled=True)
        with timer.step("a"):
            time.sleep(0.002)
        with timer.step("b"):
            time.sleep(0.002)
        proportions = timer.proportions()
        assert sum(proportions.values()) == pytest.approx(1.0)

    def test_proportions_empty(self):
        assert StepTimer(enabled=True).proportions() == {}

    def test_missing_step_reads_zero(self):
        timer = StepTimer(enabled=True)
        assert timer.mean_step_seconds("absent") == 0.0
        assert timer.total_step_seconds("absent") == 0.0

    def test_table_row_uses_canonical_names(self):
        timer = StepTimer(enabled=True)
        row = timer.as_table_row()
        assert tuple(row) == STEP_NAMES


class TestStepTimerHooks:
    def test_on_step_fires_with_name_and_elapsed(self):
        seen = []
        timer = StepTimer(enabled=True)
        timer.on_step = lambda name, elapsed: seen.append((name, elapsed))
        with timer.step("inner_optimization"):
            time.sleep(0.001)
        assert len(seen) == 1
        name, elapsed = seen[0]
        assert name == "inner_optimization"
        assert elapsed >= 0.001
        assert elapsed == pytest.approx(
            timer.stats["inner_optimization"].total_seconds
        )

    def test_on_step_fires_even_on_exception(self):
        seen = []
        timer = StepTimer(enabled=True)
        timer.on_step = lambda name, elapsed: seen.append(name)
        with pytest.raises(ValueError):
            with timer.step("boom"):
                raise ValueError("x")
        assert seen == ["boom"]

    def test_on_epoch_fires_per_completed_epoch(self):
        seen = []
        timer = StepTimer(enabled=True)
        timer.on_epoch = seen.append
        for _ in range(2):
            with timer.epoch():
                time.sleep(0.001)
        assert len(seen) == 2
        assert seen == timer.epoch_seconds

    def test_disabled_timer_never_fires_hooks(self):
        timer = StepTimer(enabled=False)
        timer.on_step = lambda *a: pytest.fail("on_step fired while disabled")
        timer.on_epoch = lambda *a: pytest.fail("on_epoch fired while disabled")
        with timer.step("work"):
            pass
        with timer.epoch():
            pass
        assert timer.stats == {}
        assert timer.epoch_seconds == []


class TestEpochBookkeeping:
    def test_epoch_contextmanager_records_on_exception(self):
        timer = StepTimer(enabled=True)
        with pytest.raises(RuntimeError):
            with timer.epoch():
                raise RuntimeError("x")
        assert timer.n_epochs == 1

    def test_n_epochs_counts_completed_epochs(self):
        timer = StepTimer(enabled=True)
        assert timer.n_epochs == 0
        for _ in range(3):
            with timer.epoch():
                pass
        assert timer.n_epochs == 3

    def test_no_epoch_fallback_sums_per_step_means(self):
        # Steps timed but epochs never bracketed: mean_epoch_seconds must
        # estimate one epoch from the per-step means, not report zero.
        timer = StepTimer(enabled=True)
        timer.stats["a"] = StepStats(total_seconds=4.0, count=2)
        timer.stats["b"] = StepStats(total_seconds=3.0, count=3)
        assert timer.epoch_seconds == []
        assert timer.mean_epoch_seconds == pytest.approx(2.0 + 1.0)

    def test_empty_timer_mean_epoch_is_zero(self):
        assert StepTimer(enabled=True).mean_epoch_seconds == 0.0


class TestSnapshot:
    def test_snapshot_flags_estimated_epochs(self):
        timer = StepTimer(enabled=True)
        timer.stats["a"] = StepStats(total_seconds=1.0, count=2)
        snap = timer.snapshot()
        assert snap["epochs"]["count"] == 0
        assert snap["epochs"]["estimated"] is True
        assert snap["epochs"]["mean_seconds"] == pytest.approx(0.5)

    def test_snapshot_measured_epochs_not_estimated(self):
        timer = StepTimer(enabled=True)
        with timer.epoch():
            with timer.step("a"):
                pass
        snap = timer.snapshot()
        assert snap["epochs"]["count"] == 1
        assert snap["epochs"]["estimated"] is False

    def test_empty_snapshot(self):
        snap = StepTimer(enabled=True).snapshot()
        assert snap["steps"] == {}
        assert snap["epochs"] == {
            "count": 0, "mean_seconds": 0.0, "estimated": False
        }

    def test_snapshot_step_entries(self):
        timer = StepTimer(enabled=True)
        with timer.step("a"):
            time.sleep(0.001)
        entry = timer.snapshot()["steps"]["a"]
        assert entry["count"] == 1
        assert entry["total_seconds"] >= 0.001
        assert entry["mean_seconds"] == pytest.approx(entry["total_seconds"])


class TestStepStats:
    def test_zero_count_mean(self):
        assert StepStats().mean_seconds == 0.0
