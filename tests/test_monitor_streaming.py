"""Tests for the streaming PSI accumulator (repro.monitor.streaming)."""

import numpy as np
import pytest

from repro.monitor.drift import population_stability_index
from repro.monitor.streaming import StreamingPSI


@pytest.fixture()
def baseline(rng):
    return rng.standard_normal((1000, 3))


class TestMatchesBatchPSI:
    def test_identical_to_batch_function(self, baseline, rng):
        monitoring = rng.standard_normal((400, 3)) + 0.3
        stream = StreamingPSI.from_baseline(baseline)
        stream.update(monitoring)
        expected = [
            population_stability_index(baseline[:, j], monitoring[:, j])
            for j in range(3)
        ]
        np.testing.assert_allclose(stream.psi_per_feature(), expected,
                                   rtol=0, atol=0)

    def test_incremental_equals_one_shot(self, baseline, rng):
        monitoring = rng.standard_normal((300, 3)) * 2.0
        one_shot = StreamingPSI.from_baseline(baseline)
        one_shot.update(monitoring)
        incremental = StreamingPSI.from_baseline(baseline)
        for chunk in np.array_split(monitoring, 7):
            incremental.update(chunk)
        np.testing.assert_array_equal(incremental.psi_per_feature(),
                                      one_shot.psi_per_feature())

    def test_identical_distribution_is_near_zero(self, baseline):
        stream = StreamingPSI.from_baseline(baseline)
        stream.update(baseline)
        assert stream.max_psi() < 0.01

    def test_shifted_distribution_is_large(self, baseline, rng):
        stream = StreamingPSI.from_baseline(baseline)
        stream.update(rng.standard_normal((400, 3)) + 10.0)
        assert stream.max_psi() > 1.0


class TestAccumulatorMechanics:
    def test_single_row_update_accepted(self, baseline):
        stream = StreamingPSI.from_baseline(baseline)
        stream.update(baseline[0])
        assert stream.n_rows_seen == 1

    def test_zero_rows_means_zero_psi(self, baseline):
        stream = StreamingPSI.from_baseline(baseline)
        np.testing.assert_array_equal(stream.psi_per_feature(), np.zeros(3))
        assert stream.max_psi() == 0.0

    def test_reset_drops_window_keeps_baseline(self, baseline, rng):
        stream = StreamingPSI.from_baseline(baseline)
        stream.update(rng.standard_normal((100, 3)) + 5.0)
        assert stream.max_psi() > 0
        stream.reset()
        assert stream.n_rows_seen == 0
        assert stream.max_psi() == 0.0
        stream.update(baseline)
        assert stream.max_psi() < 0.01

    def test_wrong_width_rejected(self, baseline):
        stream = StreamingPSI.from_baseline(baseline)
        with pytest.raises(ValueError):
            stream.update(np.zeros((5, 7)))

    def test_from_dataset_carries_names(self, small_dataset):
        stream = StreamingPSI.from_dataset(small_dataset)
        assert stream.names == list(small_dataset.schema.names)
        assert stream.n_features == small_dataset.n_features

    def test_snapshot_schema(self, baseline):
        stream = StreamingPSI.from_baseline(baseline, names=["a", "b", "c"])
        stream.update(baseline[:50])
        snap = stream.snapshot()
        assert snap["n_rows_seen"] == 50
        assert set(snap["psi"]) == {"a", "b", "c"}
        assert snap["max_psi"] == max(snap["psi"].values())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingPSI([np.array([0.0])], [])
        with pytest.raises(ValueError):
            StreamingPSI.from_baseline(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            StreamingPSI.from_baseline(np.zeros((10, 2)), n_bins=1)
