"""Smoke tests of the parallel-scaling benchmark suite."""

from __future__ import annotations

import json
import os

from repro.perfbench import (
    ParallelBenchConfig,
    effective_cpu_count,
    machine_info,
    run_parallel_suite,
    summarize_parallel,
    write_parallel_bench_json,
)


def test_machine_info_records_effective_cores():
    info = machine_info()
    assert "effective_cpu_count" in info
    assert info["effective_cpu_count"] == effective_cpu_count()
    assert 1 <= info["effective_cpu_count"] <= (os.cpu_count() or 1)


def test_smoke_suite_runs_and_is_bit_identical(tmp_path):
    config = ParallelBenchConfig.smoke()
    results = run_parallel_suite(config)

    fan_out = results["fan_out"]
    assert fan_out["n_tasks"] == (
        len(config.methods) * len(config.trainer_seeds)
    )
    assert fan_out["serial_s"] > 0
    assert set(fan_out["workers"]) == {
        str(count) for count in config.worker_counts
    }
    for entry in fan_out["workers"].values():
        assert entry["bit_identical"] is True
        assert entry["seconds"] > 0
        assert entry["speedup_vs_serial"] > 0
    assert fan_out["bit_identical"] is True

    assert results["tree_fit"]["median_s"] > 0
    assert "speedup_vs_seed" in results["tree_fit"]

    rendered = summarize_parallel(results)
    assert "bit-identical" in rendered
    assert "tree_fit" in rendered

    out = tmp_path / "BENCH_parallel.json"
    payload = write_parallel_bench_json(out, results, config)
    on_disk = json.loads(out.read_text())
    assert on_disk == payload
    assert on_disk["machine"]["effective_cpu_count"] >= 1
    assert on_disk["benchmarks"]["fan_out"]["bit_identical"] is True
