"""Parallel experiment fan-out must be bit-identical to the serial path.

Every registered trainer is trained twice over the same tiny platform —
once serially, once across 4 worker processes — and the resulting
:class:`MethodScores` must compare exactly equal (no tolerance): seeds
attach to tasks, workers read byte-identical shared-memory environments,
and evaluation runs the same module-level code in both modes.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.obs.runlog import validate_record
from repro.obs.tracer import Tracer
from repro.train.registry import TrainerSpec, available_trainers, make_trainer

SETTINGS = dict(n_samples=2_500, data_seed=7, trainer_seeds=(0, 1))
#: Tiny epoch budget — equivalence is about arithmetic, not convergence.
OVERRIDES = {"n_epochs": 3}


def _specs() -> list[tuple[str, TrainerSpec]]:
    return [
        (name, TrainerSpec.of(name, **OVERRIDES))
        for name in available_trainers()
    ]


@pytest.fixture(scope="module")
def serial_scores():
    context = ExperimentContext(ExperimentSettings(**SETTINGS, n_jobs=1))
    return context.score_methods(_specs())


@pytest.fixture(scope="module")
def parallel_scores():
    context = ExperimentContext(ExperimentSettings(**SETTINGS, n_jobs=4))
    return context.score_methods(_specs())


@pytest.mark.parametrize("position, name",
                         list(enumerate(available_trainers())))
def test_trainer_bit_identical(position, name, serial_scores,
                               parallel_scores):
    assert parallel_scores[position] == serial_scores[position], (
        f"{name}: n_jobs=4 scores differ from serial"
    )


def test_derived_seeds_ignore_n_jobs():
    serial = ExperimentSettings(**SETTINGS, n_jobs=1)
    pooled = ExperimentSettings(**SETTINGS, n_jobs=4)
    seeds = serial.derived_trainer_seeds()
    assert seeds == pooled.derived_trainer_seeds()
    assert len(seeds) == len(serial.trainer_seeds)
    assert len(set(seeds)) == len(seeds)


def test_derived_seeds_follow_settings():
    base = ExperimentSettings(**SETTINGS)
    other = ExperimentSettings(**{**SETTINGS, "data_seed": 8})
    assert base.derived_trainer_seeds() != other.derived_trainer_seeds()


def test_callable_factory_stays_serial_and_matches(serial_scores):
    # Plain closures cannot be pickled, so score_methods silently runs
    # them on the serial path even when n_jobs > 1 — and the result must
    # match the spec-driven run of the same trainer.
    context = ExperimentContext(ExperimentSettings(**SETTINGS, n_jobs=4))
    scores = context.score_method(
        "ERM", lambda seed: make_trainer("ERM", seed=seed, **OVERRIDES)
    )
    assert scores == serial_scores[0]


def test_n_jobs_validation():
    with pytest.raises(ValueError):
        ExperimentSettings(n_jobs=0)
    context = ExperimentContext(ExperimentSettings(**SETTINGS))
    with pytest.raises(ValueError):
        context.score_methods(
            [("ERM", TrainerSpec.of("ERM", **OVERRIDES))], n_jobs=0
        )


def test_traced_parallel_run_merges_schema_valid_log():
    tracer = Tracer()  # in-memory buffer
    tracer.write_manifest(command="test")
    context = ExperimentContext(
        ExperimentSettings(**SETTINGS, n_jobs=2), tracer=tracer
    )
    context.score_methods(_specs()[:1])
    records = tracer.records
    for record in records:
        validate_record(record)
    assert sum(r["kind"] == "manifest" for r in records) == 1
    spans = [r for r in records if r["kind"] == "span"]
    assert spans, "parallel run produced no spans"
    ids = [s["id"] for s in spans]
    assert len(ids) == len(set(ids)), "span ids collide after merging"
    known = set(ids)
    assert all(s["parent"] in known for s in spans
               if s["parent"] is not None)
    merged = [s for s in spans if "method" in s["fields"]]
    assert merged, "no child spans were merged back"
    seeds = ExperimentSettings(**SETTINGS).derived_trainer_seeds()
    assert {s["fields"]["trainer_seed"] for s in merged} == set(seeds)
    events = [r for r in records if r["kind"] == "event"]
    span_ids = set(ids)
    assert all(e["span"] in span_ids for e in events
               if e["span"] is not None)
