"""Unit + property tests for the Meta-loss Replay Queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrq import MetaLossReplayQueue


class TestPush:
    def test_initialised_with_zeros(self):
        q = MetaLossReplayQueue(length=4, gamma=0.9)
        np.testing.assert_array_equal(q.values, np.zeros(4))
        assert not q.is_warm

    def test_fifo_shift(self):
        q = MetaLossReplayQueue(length=3, gamma=0.9)
        for v in (1.0, 2.0, 3.0, 4.0):
            q.push(v)
        np.testing.assert_array_equal(q.values, [2.0, 3.0, 4.0])

    def test_newest_is_last(self):
        q = MetaLossReplayQueue(length=3, gamma=0.9)
        q.push(7.0)
        assert q.newest() == 7.0

    def test_warm_after_length_pushes(self):
        q = MetaLossReplayQueue(length=3, gamma=0.9)
        for i in range(3):
            assert q.is_warm == (i >= 3)
            q.push(float(i))
        assert q.is_warm
        assert q.n_pushed == 3

    def test_non_finite_rejected(self):
        q = MetaLossReplayQueue(length=2, gamma=0.9)
        with pytest.raises(ValueError):
            q.push(float("nan"))
        with pytest.raises(ValueError):
            q.push(float("inf"))


class TestDecayedSum:
    def test_matches_equation_nine(self):
        """R_meta = sum_i gamma^(L-i) H[i] with H[L] the newest."""
        gamma = 0.8
        q = MetaLossReplayQueue(length=3, gamma=gamma)
        q.push(1.0)
        q.push(2.0)
        q.push(3.0)
        expected = gamma**2 * 1.0 + gamma**1 * 2.0 + gamma**0 * 3.0
        assert q.decayed_sum() == pytest.approx(expected)

    def test_newest_entry_has_unit_weight(self):
        q = MetaLossReplayQueue(length=5, gamma=0.5)
        q.push(10.0)
        # All other entries are zero, so the sum is exactly the newest.
        assert q.decayed_sum() == pytest.approx(10.0)

    def test_split_replay_plus_newest(self):
        q = MetaLossReplayQueue(length=4, gamma=0.7)
        for v in (1.0, 2.0, 3.0, 4.0):
            q.push(v)
        assert q.decayed_sum() == pytest.approx(
            q.replay_component() + q.newest()
        )

    def test_length_one_has_no_replay(self):
        q = MetaLossReplayQueue(length=1, gamma=0.9)
        q.push(5.0)
        assert q.replay_component() == 0.0
        assert q.decayed_sum() == pytest.approx(5.0)

    def test_gamma_one_is_plain_sum(self):
        q = MetaLossReplayQueue(length=3, gamma=1.0)
        for v in (1.0, 2.0, 3.0):
            q.push(v)
        assert q.decayed_sum() == pytest.approx(6.0)


class TestDiagnostics:
    def test_occupancy_fills_then_saturates(self):
        q = MetaLossReplayQueue(length=4, gamma=0.9)
        assert q.occupancy == 0.0
        expected = [0.25, 0.5, 0.75, 1.0, 1.0, 1.0]
        for value in expected:
            q.push(1.0)
            assert q.occupancy == pytest.approx(value)

    def test_decay_mass_empty_queue(self):
        assert MetaLossReplayQueue(length=3, gamma=0.9).decay_mass() == 0.0

    def test_decay_mass_partial_and_full(self):
        gamma = 0.5
        q = MetaLossReplayQueue(length=3, gamma=gamma)
        q.push(1.0)
        assert q.decay_mass() == pytest.approx(1.0)
        q.push(1.0)
        assert q.decay_mass() == pytest.approx(1.0 + gamma)
        q.push(1.0)
        q.push(1.0)  # saturated: mass stops growing
        assert q.decay_mass() == pytest.approx(1.0 + gamma + gamma**2)

    def test_decay_mass_bounds_decayed_sum(self):
        """For constant unit losses the decayed sum equals the decay mass."""
        q = MetaLossReplayQueue(length=5, gamma=0.8)
        for _ in range(3):
            q.push(1.0)
        assert q.decayed_sum() == pytest.approx(q.decay_mass())


class TestValidation:
    def test_bad_length(self):
        with pytest.raises(ValueError):
            MetaLossReplayQueue(length=0, gamma=0.9)

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            MetaLossReplayQueue(length=2, gamma=0.0)
        with pytest.raises(ValueError):
            MetaLossReplayQueue(length=2, gamma=1.5)

    def test_len_and_repr(self):
        q = MetaLossReplayQueue(length=4, gamma=0.9)
        assert len(q) == 4
        assert "MetaLossReplayQueue" in repr(q)


class TestQueueProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
        st.integers(1, 8),
        st.floats(0.1, 1.0),
    )
    def test_decayed_sum_bounds(self, losses, length, gamma):
        """0 <= decayed sum <= max(loss) * sum of weights."""
        q = MetaLossReplayQueue(length=length, gamma=gamma)
        for v in losses:
            q.push(v)
        weight_total = sum(gamma**k for k in range(length))
        assert 0.0 <= q.decayed_sum() <= max(losses) * weight_total + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1,
                    max_size=30), st.integers(1, 8))
    def test_queue_holds_last_l_values(self, losses, length):
        q = MetaLossReplayQueue(length=length, gamma=0.9)
        for v in losses:
            q.push(v)
        expected = ([0.0] * length + losses)[-length:]
        np.testing.assert_allclose(q.values, expected)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 8), st.floats(0.1, 1.0), st.floats(0.5, 10.0))
    def test_warmup_undercounts_first_pushes(self, length, gamma, loss):
        """During the first L-1 pushes the zero-initialised slots make the
        decayed sum fall strictly short of its steady-state value — the
        warm-up under-count of Algorithm 2."""
        warm_value = loss * sum(gamma**k for k in range(length))
        q = MetaLossReplayQueue(length=length, gamma=gamma)
        for k in range(1, length):
            q.push(loss)
            partial = loss * sum(gamma**j for j in range(k))
            assert q.decayed_sum() == pytest.approx(partial)
            assert q.decayed_sum() < warm_value
            assert not q.is_warm
        q.push(loss)
        assert q.is_warm
        assert q.decayed_sum() == pytest.approx(warm_value)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1,
                    max_size=30), st.integers(1, 8))
    def test_gamma_one_sums_last_l_losses(self, losses, length):
        """gamma = 1 weights every slot equally (Table IV's worst row)."""
        q = MetaLossReplayQueue(length=length, gamma=1.0)
        for v in losses:
            q.push(v)
        assert q.decayed_sum() == pytest.approx(
            sum(losses[-length:]), abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1,
                    max_size=30), st.integers(1, 8), st.floats(0.1, 1.0))
    def test_decayed_sum_matches_explicit_formula(self, losses, length,
                                                  gamma):
        """Eq. 9 against an independent reference: Σ_{i=1..L} γ^{L-i} H[i]
        with the queue contents reconstructed from the raw push sequence."""
        q = MetaLossReplayQueue(length=length, gamma=gamma)
        for v in losses:
            q.push(v)
        h = ([0.0] * length + losses)[-length:]
        expected = sum(
            gamma ** (length - i) * h[i - 1] for i in range(1, length + 1)
        )
        assert q.decayed_sum() == pytest.approx(expected, abs=1e-9)
