"""Unit tests for the synthetic platform generator."""

import numpy as np
import pytest

from repro.data.generator import (
    GeneratorConfig,
    LoanDataGenerator,
    generate_default_dataset,
)
from repro.data.provinces import default_registry
from repro.data.schema import CausalRole


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = LoanDataGenerator(GeneratorConfig.small(seed=5)).generate()
        b = LoanDataGenerator(GeneratorConfig.small(seed=5)).generate()
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.provinces, b.provinces)

    def test_different_seed_different_data(self):
        a = LoanDataGenerator(GeneratorConfig.small(seed=5)).generate()
        b = LoanDataGenerator(GeneratorConfig.small(seed=6)).generate()
        assert not np.array_equal(a.labels, b.labels)


class TestShape:
    def test_dimensions(self, small_dataset):
        assert small_dataset.n_samples == 4000
        assert small_dataset.n_features == 40

    def test_all_years_and_halves_present(self, small_dataset):
        assert set(np.unique(small_dataset.years)) == {2016, 2017, 2018,
                                                       2019, 2020}
        assert set(np.unique(small_dataset.halves)) == {1, 2}

    def test_all_provinces_present(self, small_dataset):
        assert set(small_dataset.province_names()) == set(
            default_registry().names
        )

    def test_features_finite(self, small_dataset):
        assert np.all(np.isfinite(small_dataset.features))

    def test_labels_binary(self, small_dataset):
        assert set(np.unique(small_dataset.labels)) <= {0.0, 1.0}


class TestStatisticalStructure:
    @pytest.fixture(scope="class")
    def big(self):
        return generate_default_dataset(n_samples=30_000, seed=42)

    def test_default_rate_plausible(self, big):
        assert 0.08 < big.default_rate < 0.25

    def test_volume_ordering_matches_weights(self, big):
        counts = {
            name: int(np.sum(big.provinces == name))
            for name in big.province_names()
        }
        assert counts["Guangdong"] > counts["Xinjiang"] * 5

    def test_vehicle_one_hot_exactly_one(self, big):
        cols = big.schema.vehicle_indicator_columns()
        sums = big.features[:, cols].sum(axis=1)
        np.testing.assert_array_equal(sums, 1.0)

    def test_invariant_features_predict_label_everywhere(self, big):
        """The invariant block correlates with the label in every province
        with the same sign (the invariance IRM should exploit)."""
        col = big.schema.column("debt_to_income")
        for name in ("Guangdong", "Xinjiang", "Qinghai"):
            mask = big.provinces == name
            corr = np.corrcoef(big.features[mask, col], big.labels[mask])[0, 1]
            assert corr > 0.02, f"{name}: {corr}"

    def test_spurious_polarity_flips_across_provinces(self, big):
        """The spurious block correlates positively with the label in
        Guangdong and non-positively in Xinjiang (training years)."""
        train_mask = big.years < 2020
        col = big.schema.columns_with_role(CausalRole.SPURIOUS)[0]
        gd = train_mask & (big.provinces == "Guangdong")
        xj = train_mask & (big.provinces == "Xinjiang")
        corr_gd = np.corrcoef(big.features[gd, col], big.labels[gd])[0, 1]
        corr_xj = np.corrcoef(big.features[xj, col], big.labels[xj])[0, 1]
        assert corr_gd > 0.15
        assert corr_xj < 0.02

    def test_noise_features_uninformative(self):
        """Every noise column is uncorrelated with the label.

        Built from an explicit config whose width arithmetic guarantees
        noise columns (40 total - 18 fixed - 4 spurious = 18 noise), so the
        case can never be silently skipped.
        """
        config = GeneratorConfig(
            n_samples=16_000, total_features=40, n_spurious=4, seed=13
        )
        data = LoanDataGenerator(config).generate()
        cols = data.schema.columns_with_role(CausalRole.NOISE)
        assert len(cols) == 18
        for col in cols:
            corr = np.corrcoef(data.features[:, col], data.labels)[0, 1]
            assert abs(corr) < 0.04, f"noise column {col}: corr {corr}"

    def test_guangdong_share_halves_in_2020(self, big):
        shares = big.province_share_by_year()
        pre = np.mean([shares[y]["Guangdong"] for y in (2016, 2017, 2018, 2019)])
        assert shares[2020]["Guangdong"] < 0.65 * pre

    def test_hubei_h1_default_spike(self, big):
        hubei = big.filter_province("Hubei")
        h1_2020 = hubei.select((hubei.years == 2020) & (hubei.halves == 1))
        h2_2020 = hubei.select((hubei.years == 2020) & (hubei.halves == 2))
        pre = hubei.filter_years((2016, 2017, 2018, 2019))
        assert h1_2020.default_rate > 1.5 * pre.default_rate
        assert h2_2020.default_rate < 1.4 * pre.default_rate


class TestConfig:
    def test_paper_scale_dimensions(self):
        cfg = GeneratorConfig.paper_scale()
        assert cfg.n_samples == 1_400_000
        assert cfg.total_features == 210

    def test_custom_registry(self):
        registry = default_registry().subset(["Guangdong", "Hubei"])
        cfg = GeneratorConfig(n_samples=500, registry=registry)
        data = LoanDataGenerator(cfg).generate()
        assert set(data.province_names()) == {"Guangdong", "Hubei"}
