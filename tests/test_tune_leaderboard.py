"""Unit tests for trial records, the result buffer and the leaderboard."""

import json

import pytest

from repro.obs.runlog import TUNE_TRIAL_EVENT, RunLogReader
from repro.obs.tracer import Tracer
from repro.tune import (
    ASHAConfig,
    DirtyTreeWarning,
    LeaderboardError,
    ResultBuffer,
    TrialRecord,
    build_leaderboard,
    default_space,
    load_trial_records,
    ranked_trials,
    run_asha,
    validate_leaderboard,
    write_leaderboard,
)

SMALL = ASHAConfig(n_trials=3, eta=3, min_epochs=3, max_epochs=3, seed=1)


@pytest.fixture
def record():
    return TrialRecord(
        trainer="ERM",
        trial_id="t001",
        rung=1,
        budget=8,
        params={"learning_rate": 0.30000000000000004, "l2": 1e-4},
        seed=12345,
        train_seconds=0.25,
        per_environment={
            "zhejiang": {"ks": 0.1 + 0.2, "auc": 2.0 / 3.0,
                         "n_samples": 90, "n_positive": 11},
            "shandong": {"ks": 0.5, "auc": 0.75,
                         "n_samples": 30, "n_positive": 4},
        },
        skipped=("gansu",),
    )


class TestTrialRecord:
    def test_fields_round_trip(self, record):
        assert TrialRecord.from_fields(record.to_fields()) == record

    def test_json_round_trip_is_exact(self, record):
        # Floats like 0.1 + 0.2 must survive the repr-JSON encoding
        # exactly — this is what makes resume bit-identical.
        encoded = json.dumps(record.to_fields())
        assert TrialRecord.from_fields(json.loads(encoded)) == record

    def test_fairness_report_rebuild(self, record):
        report = record.fairness_report()
        assert report.per_environment["zhejiang"].ks == 0.1 + 0.2
        assert report.per_environment["shandong"].n_positive == 4
        assert report.skipped == ("gansu",)
        rebuilt = TrialRecord.from_report(
            trainer=record.trainer,
            trial_id=record.trial_id,
            rung=record.rung,
            budget=record.budget,
            params=record.params,
            seed=record.seed,
            train_seconds=record.train_seconds,
            report=report,
        )
        assert rebuilt == record


class TestResultBuffer:
    def test_add_get_and_dedup(self, record):
        buffer = ResultBuffer()
        buffer.add(record)
        buffer.add(record)  # replays are ignored, first write wins
        assert len(buffer) == 1
        assert buffer.get("ERM", "t001", 1) is record
        assert buffer.get("ERM", "t001", 0) is None
        assert buffer.get("IRMv1", "t001", 1) is None
        assert buffer.records() == [record]

    def test_emits_trial_events(self, record, tmp_path):
        path = tmp_path / "log.jsonl"
        tracer = Tracer(path=path)
        tracer.write_manifest(command="buffer-test")
        ResultBuffer(tracer).add(record)
        tracer.close()
        events = RunLogReader.read(path).events(TUNE_TRIAL_EVENT)
        assert len(events) == 1
        assert TrialRecord.from_fields(events[0]["fields"]) == record


class TestLoadTrialRecords:
    def write_log(self, path, record):
        tracer = Tracer(path=path)
        tracer.write_manifest(command="load-test")
        ResultBuffer(tracer).add(record)
        tracer.close()

    def test_round_trip(self, record, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write_log(path, record)
        assert load_trial_records(path) == {("ERM", "t001", 1): record}

    def test_tolerates_torn_tail_and_junk(self, record, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write_log(path, record)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "event", "name": "other", "fields": {}}\n')
            handle.write('{"kind": "event", "name": "tune_tri')  # torn
        assert load_trial_records(path) == {("ERM", "t001", 1): record}

    def test_last_complete_record_wins(self, record, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write_log(path, record)
        import dataclasses

        later = dataclasses.replace(record, train_seconds=9.0)
        with path.open("a", encoding="utf-8") as handle:
            line = {"ts": 0.0, "kind": "event", "name": TUNE_TRIAL_EVENT,
                    "fields": later.to_fields()}
            handle.write(json.dumps(line) + "\n")
        assert load_trial_records(path)[("ERM", "t001", 1)] == later


class TestLeaderboard:
    @pytest.fixture
    def results(self, tiny_envs):
        return [
            run_asha(default_space(name), tiny_envs, SMALL)
            for name in ("ERM", "IRMv1")
        ]

    @pytest.fixture
    def payload(self, results):
        return build_leaderboard(
            results, seed=1, search_config={"n_trials": 3}
        )

    def test_schema_valid(self, payload):
        assert validate_leaderboard(payload) is payload
        assert payload["kind"] == "tune_leaderboard"
        assert payload["seed"] == 1
        assert payload["search_config"] == {"n_trials": 3}
        assert {s["trainer"] for s in payload["searches"]} == {"ERM", "IRMv1"}
        assert "python" in payload["machine"]

    def test_global_ranking(self, payload):
        entries = payload["leaderboard"]
        assert [e["rank"] for e in entries] == list(range(1, 7))
        values = [e["objective_value"] for e in entries]
        assert values == sorted(values, reverse=True)
        assert {e["trainer"] for e in entries} == {"ERM", "IRMv1"}

    def test_ranked_trials_projection(self, payload):
        projected = ranked_trials(payload)
        assert len(projected) == len(payload["leaderboard"])
        for entry in projected:
            assert "train_seconds" not in entry
            assert "search_cost" not in entry
            assert "objective_value" in entry

    def test_entries_carry_search_cost(self, payload):
        for entry in payload["leaderboard"]:
            cost = entry["search_cost"]
            assert set(cost) == {"train_seconds", "encode_seconds",
                                 "encode_cached"}
            # Head-only searches never encode inline.
            assert cost["encode_seconds"] == 0.0
            assert cost["encode_cached"] is None

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_leaderboard([], seed=0)

    @pytest.mark.parametrize("mutate, match", [
        (lambda p: p.pop("machine"), "missing keys"),
        (lambda p: p.update(kind="leaderboard"), "expected 'tune_leaderboard'"),
        (lambda p: p.update(format=99), "format"),
        (lambda p: p.update(searches=[]), "non-empty"),
        (lambda p: p["searches"][0].pop("rungs"), "missing keys"),
        (lambda p: p["leaderboard"][0].pop("metrics"), "missing keys"),
        (lambda p: p["leaderboard"][0].pop("search_cost"), "missing keys"),
        (lambda p: p["leaderboard"][0].update(rank=5), "ranks must be"),
    ])
    def test_validation_errors(self, payload, mutate, match):
        broken = json.loads(json.dumps(payload))
        mutate(broken)
        with pytest.raises(LeaderboardError, match=match):
            validate_leaderboard(broken)

    def test_write_round_trip(self, payload, tmp_path):
        path = tmp_path / "TUNE_leaderboard.json"
        payload = {**payload, "git": "abc1234"}
        write_leaderboard(payload, path)
        restored = json.loads(path.read_text())
        assert validate_leaderboard(restored)
        assert ranked_trials(restored) == ranked_trials(payload)

    def test_write_rejects_invalid(self, payload, tmp_path):
        broken = dict(payload)
        broken.pop("git")
        with pytest.raises(LeaderboardError):
            write_leaderboard(broken, tmp_path / "nope.json")

    def test_dirty_stamp_warns(self, payload, tmp_path):
        dirty = {**payload, "git": "abc1234-dirty"}
        path = tmp_path / "dirty.json"
        with pytest.warns(DirtyTreeWarning, match="dirty git tree"):
            write_leaderboard(dirty, path)
        # Warned but still written — interactive runs keep their output.
        assert json.loads(path.read_text())["git"] == "abc1234-dirty"

    def test_forbid_dirty_raises(self, payload, tmp_path):
        dirty = {**payload, "git": "abc1234-dirty"}
        path = tmp_path / "dirty.json"
        with pytest.raises(LeaderboardError, match="dirty git tree"):
            write_leaderboard(dirty, path, forbid_dirty=True)
        assert not path.exists()

    def test_clean_stamp_does_not_warn(self, payload, tmp_path, recwarn):
        clean = {**payload, "git": "abc1234"}
        write_leaderboard(clean, tmp_path / "clean.json", forbid_dirty=True)
        assert not [w for w in recwarn
                    if isinstance(w.message, DirtyTreeWarning)]
