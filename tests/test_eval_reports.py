"""Unit tests for text report rendering."""

import pytest

from repro.eval.reports import format_series, format_table, highlight_best


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [
            {"method": "A", "mKS": 0.5},
            {"method": "B", "mKS": 0.61234},
        ]
        out = format_table(rows, columns=("method", "mKS"), title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "method" in lines[1]
        assert "0.6123" in out

    def test_missing_cell_renders_dash(self):
        out = format_table([{"a": 1}], columns=("a", "b"))
        assert "-" in out.splitlines()[-1]

    def test_alignment(self):
        rows = [{"x": "short", "y": 1.0}, {"x": "muchlongervalue", "y": 2.0}]
        out = format_table(rows, columns=("x", "y"))
        data_lines = out.splitlines()[2:]
        # The y column starts at the same offset in both rows.
        offsets = [line.index("1.0000") if "1.0000" in line
                   else line.index("2.0000") for line in data_lines]
        assert offsets[0] == offsets[1]


class TestFormatSeries:
    def test_rendering(self):
        out = format_series("curve", [1, 2], [0.1, 0.2],
                            x_label="epoch", y_label="ks")
        assert "curve" in out
        assert "1: 0.1000" in out

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [0.1, 0.2])


class TestHighlightBest:
    def test_maximize(self):
        rows = [
            {"method": "A", "m": 0.2},
            {"method": "B", "m": 0.9},
        ]
        assert highlight_best(rows, "m") == "B"

    def test_minimize(self):
        rows = [
            {"method": "A", "m": 0.2},
            {"method": "B", "m": 0.9},
        ]
        assert highlight_best(rows, "m", maximize=False) == "A"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            highlight_best([], "m")

    def test_no_numeric_raises(self):
        with pytest.raises(ValueError):
            highlight_best([{"method": "A", "m": "n/a"}], "m")
