"""End-to-end drift recovery: trip → retrain → gated promote → serve.

The ROADMAP item 2 deliverable: a shifted-province stream trips the PSI
drift guard on the live front-end, the lifecycle controller retrains on
the drifted regime, the challenger clears the held-out per-province
KS/AUC gates, promotion goes through the registry, the front-end swaps to
the new generation — and the old champion stays one rollback away.
"""

import numpy as np
import pytest

from repro.data.dataset import LoanDataset
from repro.monitor.streaming import StreamingPSI
from repro.obs.runlog import LIFECYCLE_STAGE_EVENT
from repro.obs.tracer import Tracer
from repro.serve.degradation import DriftGuard
from repro.serve.frontend import FrontendConfig, ScoringFrontend
from repro.serve.lifecycle import (
    LifecycleController,
    PromotionGates,
    RetrainConfig,
    evaluate_model,
)
from repro.serve.registry import ModelRegistry


def _shifted(dataset: LoanDataset) -> LoanDataset:
    """A covariate-shifted regime: rescaled/offset raw features."""
    features = dataset.features.copy()
    features[:, 0] = features[:, 0] * 3.0 + 2.0
    features[:, 1] = features[:, 1] - 1.5
    return LoanDataset(features, dataset.labels, dataset.provinces,
                       dataset.years, dataset.halves, dataset.schema)


@pytest.fixture()
def recovery_retrain() -> RetrainConfig:
    """A small-but-real retrain recipe (seconds, not minutes)."""
    return RetrainConfig(
        trainer="ERM",
        trainer_overrides={"n_epochs": 8},
        gbdt={"n_trees": 16, "max_bins": 32},
        tree={"max_leaves": 8, "min_child_samples": 10},
    )


def test_drift_recovery_end_to_end(tmp_path, small_split, fitted_pipeline,
                                   recovery_retrain):
    registry = ModelRegistry(tmp_path / "registry")
    seed_version = registry.save(fitted_pipeline, metadata={"run": "seed"})
    champion = registry.load("champion")
    clean_ks = evaluate_model(champion, small_split.test).mean_ks

    # Interleave retrain/holdout rows so both halves sample the *drifted*
    # regime evenly (a temporal first/second split would confound the
    # injected shift with the generator's own temporal drift).
    shifted = _shifted(small_split.test)
    retrain_dataset = shifted.select(np.arange(0, shifted.n_samples, 2))
    holdout = shifted.select(np.arange(1, shifted.n_samples, 2))

    guard = DriftGuard(StreamingPSI.from_dataset(small_split.train),
                       psi_threshold=0.25, min_rows=200)
    tracer = Tracer()
    frontend = ScoringFrontend(
        champion, FrontendConfig(n_workers=2, max_batch_size=32),
        drift_guard=guard, version=seed_version,
    )
    frontend.start()
    try:
        # --- feed the shifted stream until the PSI guard trips ----------
        for start in range(0, shifted.n_samples, 64):
            chunk = shifted.features[start:start + 64]
            results = frontend.score_stream(chunk)
            assert all(r.ok for r in results)
            if guard.tripped:
                break
        assert guard.tripped, "shifted stream must trip the drift guard"

        # --- close the loop: retrain → gated eval → promote -------------
        controller = LifecycleController(
            registry,
            holdout=holdout,
            retrain=recovery_retrain,
            gates=PromotionGates(min_mean_auc=0.5, max_ks_regression=0.0),
            tracer=tracer,
            frontend=frontend,
            drift_guard=guard,
            workdir=tmp_path / "work",
        )
        report = controller.run_recovery(retrain_dataset)

        assert report["outcome"] == "promoted"
        assert report["stages"] == [
            "drift_detected", "retraining", "evaluating", "promoting",
            "promoted",
        ]
        # The challenger restores KS on the drifted regime: no worse than
        # the degraded champion, and within tolerance of the champion's
        # clean-data ranking power.
        assert (report["challenger_eval"]["mKS"]
                >= report["champion_eval"]["mKS"])
        assert report["challenger_eval"]["mKS"] >= clean_ks - 0.15
        # Recovery resets the guard so monitoring restarts fresh.
        assert not guard.tripped

        # --- the front-end now serves the promoted generation -----------
        promoted = registry.load("champion")
        rows = holdout.features[:64]
        served = frontend.score_stream(rows)
        assert {r.generation for r in served} == {report["generation"]}
        np.testing.assert_array_equal(
            np.array([r.score for r in served]),
            promoted.predict_proba(rows),
        )
    finally:
        frontend.stop()

    # --- the loop is observable and reversible --------------------------
    stages = [r["fields"]["stage"] for r in tracer.records
              if r.get("kind") == "event"
              and r.get("name") == LIFECYCLE_STAGE_EVENT]
    assert stages == report["stages"]

    assert registry.slots()["champion"] == report["promoted_version"]
    assert registry.rollback() == seed_version
    assert registry.slots()["champion"] == seed_version
