"""Unit tests for the run tracer and the JSONL run-log layer."""

import dataclasses
import json
import time

import numpy as np
import pytest

from repro.obs.runlog import (
    RunLog,
    RunLogReader,
    RunLogWriter,
    SCHEMA_VERSION,
    SchemaError,
    dataset_fingerprint,
    git_describe,
    new_run_id,
    run_manifest_fields,
    validate_record,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing import StepTimer


class TestTracerBuffer:
    def test_manifest_event_span_metrics_roundtrip(self):
        tracer = Tracer()
        tracer.write_manifest(command="test", seed=1)
        with tracer.span("outer", trainer="ERM"):
            tracer.event("tick", value=1.5)
        tracer.metrics.counter("n").inc(3)
        tracer.write_metrics()
        kinds = [r["kind"] for r in tracer.records]
        assert kinds == ["manifest", "event", "span", "metrics"]
        manifest, event, span, metrics = tracer.records
        assert manifest["schema"] == SCHEMA_VERSION
        assert manifest["run_id"] == tracer.run_id
        assert manifest["fields"] == {"command": "test", "seed": 1}
        assert event["fields"] == {"value": 1.5}
        assert span["fields"] == {"trainer": "ERM"}
        assert span["dur_s"] >= 0
        assert metrics["fields"]["counters"] == {"n": 3}

    def test_span_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("deep")
            tracer.event("shallow")
        tracer.event("outside")
        spans = {r["name"]: r for r in tracer.records if r["kind"] == "span"}
        events = {r["name"]: r for r in tracer.records if r["kind"] == "event"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert events["deep"]["span"] == spans["inner"]["id"]
        assert events["shallow"]["span"] == spans["outer"]["id"]
        assert events["outside"]["span"] is None

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.record_span("r", 0.001)
        ids = [r["id"] for r in tracer.records]
        assert len(ids) == len(set(ids))

    def test_record_span_ends_now(self):
        tracer = Tracer()
        tracer.record_span("step:inner_optimization", 0.25, extra=1)
        (span,) = tracer.records
        assert span["kind"] == "span"
        assert span["dur_s"] == 0.25
        # The span ends "now": start_s + dur_s is the current tracer clock.
        assert span["start_s"] + span["dur_s"] >= 0
        assert span["fields"] == {"extra": 1}

    def test_span_record_written_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [r["name"] for r in tracer.records] == ["boom"]

    def test_every_buffered_record_validates(self):
        tracer = Tracer()
        tracer.write_manifest(command="t")
        with tracer.span("s"):
            tracer.event("e")
        tracer.write_metrics()
        for record in tracer.records:
            validate_record(record)


class TestTracerDisabled:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.run_id == ""

    def test_disabled_calls_are_noops(self):
        tracer = Tracer(enabled=False)
        tracer.write_manifest(command="t")
        tracer.event("e")
        tracer.record_span("s", 0.1)
        tracer.write_metrics()
        with tracer.span("region") as span_id:
            assert span_id is None

    def test_disabled_span_reuses_shared_context(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_disabled_attach_timer_leaves_hooks_unset(self):
        timer = StepTimer(enabled=False)
        NULL_TRACER.attach_timer(timer)
        assert timer.on_step is None
        assert timer.on_epoch is None


class TestTracerFile:
    def test_path_log_reads_back_validated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Tracer(path=path) as tracer:
            tracer.write_manifest(command="test")
            with tracer.span("fit", trainer="ERM"):
                tracer.event("epoch", epoch=0, objective=1.0)
        run = RunLogReader.read(path)
        assert len(run) == 3
        assert run.manifest["fields"]["command"] == "test"
        assert run.events("epoch")[0]["fields"]["objective"] == 1.0
        assert run.spans("fit")[0]["fields"]["trainer"] == "ERM"

    def test_path_and_sink_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Tracer(path=tmp_path / "x.jsonl", sink=object())

    def test_records_unavailable_with_path(self, tmp_path):
        tracer = Tracer(path=tmp_path / "run.jsonl")
        with pytest.raises(AttributeError, match="only buffered"):
            tracer.records
        tracer.close()

    def test_close_is_idempotent_and_disables(self, tmp_path):
        tracer = Tracer(path=tmp_path / "run.jsonl")
        tracer.event("e")
        tracer.close()
        assert tracer.enabled is False
        tracer.close()  # second close is a no-op
        tracer.event("late")  # disabled: dropped, not an error
        assert len(RunLogReader.read(tmp_path / "run.jsonl")) == 1

    def test_numpy_fields_serialize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Tracer(path=path) as tracer:
            tracer.event(
                "e",
                f=np.float64(1.5),
                i=np.int64(2),
                a=np.array([1.0, 2.0]),
            )
        fields = RunLogReader.read(path).events("e")[0]["fields"]
        assert fields == {"f": 1.5, "i": 2, "a": [1.0, 2.0]}


class TestAttachTimer:
    def test_steps_become_spans_and_epochs_events(self):
        tracer = Tracer()
        timer = StepTimer(enabled=True)
        tracer.attach_timer(timer)
        with tracer.span("fit", trainer="ERM"):
            with timer.epoch():
                with timer.step("inner_optimization"):
                    time.sleep(0.001)
        step_spans = [
            r for r in tracer.records
            if r["kind"] == "span" and r["name"].startswith("step:")
        ]
        assert [s["name"] for s in step_spans] == ["step:inner_optimization"]
        assert step_spans[0]["dur_s"] == pytest.approx(
            timer.stats["inner_optimization"].total_seconds
        )
        fit_span = next(
            r for r in tracer.records
            if r["kind"] == "span" and r["name"] == "fit"
        )
        assert step_spans[0]["parent"] == fit_span["id"]
        epoch_events = [
            r for r in tracer.records
            if r["kind"] == "event" and r["name"] == "epoch_time"
        ]
        assert len(epoch_events) == 1
        assert epoch_events[0]["fields"]["seconds"] == pytest.approx(
            timer.epoch_seconds[0]
        )


class TestValidateRecord:
    def test_rejects_non_object(self):
        with pytest.raises(SchemaError, match="not a JSON object"):
            validate_record([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown record kind"):
            validate_record({"kind": "trace", "fields": {}})

    def test_rejects_missing_keys(self):
        with pytest.raises(SchemaError, match="missing keys"):
            validate_record({"kind": "event", "name": "e", "fields": {}})

    def test_rejects_non_object_fields(self):
        with pytest.raises(SchemaError, match="'fields' is not an object"):
            validate_record({
                "kind": "event", "name": "e", "t_s": 0.0, "span": None,
                "fields": [],
            })

    def test_error_carries_line_number(self):
        with pytest.raises(SchemaError, match="line 7"):
            validate_record("nope", line=7)


class TestRunLogReaderWriter:
    def test_writer_counts_and_rejects_after_close(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = RunLogWriter(path)
        writer.write({"kind": "event", "name": "e", "t_s": 0.0,
                      "span": None, "fields": {}})
        assert writer.n_written == 1
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.write({"kind": "event"})

    def test_reader_flags_invalid_json_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"metrics","t_s":0,"fields":{}}\nnot json\n')
        with pytest.raises(SchemaError, match="line 2: invalid JSON"):
            RunLogReader.read(path)

    def test_reader_flags_schema_violation_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"span","fields":{}}\n')
        with pytest.raises(SchemaError, match="line 1"):
            RunLogReader.read(path)

    def test_reader_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('\n{"kind":"metrics","t_s":0,"fields":{}}\n\n')
        assert len(RunLogReader.read(path)) == 1


class TestRunLogQueries:
    def _log(self):
        records = [
            {"kind": "manifest", "schema": 1, "run_id": "r",
             "created_unix": 0.0, "fields": {"command": "t"}},
            {"kind": "event", "name": "epoch", "t_s": 0.1, "span": None,
             "fields": {"epoch": 0, "objective": 2.0}},
            {"kind": "event", "name": "epoch", "t_s": 0.2, "span": None,
             "fields": {"epoch": 1, "objective": 1.0}},
            {"kind": "event", "name": "other", "t_s": 0.3, "span": None,
             "fields": {}},
            {"kind": "span", "name": "fit", "id": 0, "parent": None,
             "start_s": 0.0, "dur_s": 0.5, "fields": {}},
        ]
        return RunLog(records)

    def test_filters(self):
        run = self._log()
        assert run.manifest["run_id"] == "r"
        assert len(run.events()) == 3
        assert len(run.events("epoch")) == 2
        assert len(run.spans("fit")) == 1
        assert run.spans("missing") == []
        assert run.metrics_snapshots() == []

    def test_curve_skips_incomplete_events(self):
        run = self._log()
        assert run.curve("epoch", "objective") == [(0, 2.0), (1, 1.0)]
        assert run.curve("epoch", "missing_field") == []
        assert run.curve("other", "objective") == []

    def test_manifest_less_log(self):
        assert RunLog([]).manifest is None


class TestManifestHelpers:
    def test_run_manifest_fields_payload(self):
        @dataclasses.dataclass
        class Cfg:
            n_epochs: int = 3

        fields = run_manifest_fields(
            "train", config=Cfg(), seed=5, method="ERM"
        )
        assert fields["command"] == "train"
        assert fields["config"] == {"n_epochs": 3}
        assert fields["seed"] == 5
        assert fields["method"] == "ERM"
        assert "python" in fields and "git" in fields

    def test_git_describe_in_this_repo(self):
        described = git_describe()
        assert described is None or isinstance(described, str)

    def test_dataset_fingerprint_stable(self, small_dataset):
        a = dataset_fingerprint(small_dataset)
        b = dataset_fingerprint(small_dataset)
        assert a == b
        assert a["n_samples"] == small_dataset.n_samples
        assert a["n_features"] == small_dataset.n_features
        assert len(a["sha256"]) == 16

    def test_new_run_ids_unique(self):
        ids = {new_run_id() for _ in range(20)}
        assert len(ids) == 20


class TestJsonCompatibility:
    def test_buffered_records_are_json_serializable(self):
        tracer = Tracer()
        tracer.write_manifest(command="t", seed=0)
        with tracer.span("fit", trainer="ERM"):
            tracer.event("epoch", epoch=0, objective=1.0)
        tracer.write_metrics()
        for record in tracer.records:
            json.dumps(record)
