"""Unit tests for drift monitoring (PSI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import temporal_split
from repro.monitor import (
    drift_report,
    population_stability_index,
)


class TestPSI:
    def test_identical_distribution_near_zero(self, rng):
        sample = rng.standard_normal(20_000)
        psi = population_stability_index(sample[:10_000], sample[10_000:])
        assert psi < 0.01

    def test_shifted_distribution_large(self, rng):
        baseline = rng.standard_normal(5_000)
        shifted = rng.standard_normal(5_000) + 1.5
        assert population_stability_index(baseline, shifted) > 0.25

    def test_scale_change_detected(self, rng):
        baseline = rng.standard_normal(5_000)
        widened = 3.0 * rng.standard_normal(5_000)
        assert population_stability_index(baseline, widened) > 0.25

    def test_symmetric_in_roles_approximately(self, rng):
        a = rng.standard_normal(5_000)
        b = rng.standard_normal(5_000) + 0.5
        forward = population_stability_index(a, b)
        backward = population_stability_index(b, a)
        # PSI is not exactly symmetric (bins follow the baseline), but the
        # two directions must agree on the order of magnitude.
        assert 0.3 < forward / backward < 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            population_stability_index(np.array([]), np.array([1.0]))

    def test_bad_bins_raise(self, rng):
        with pytest.raises(ValueError):
            population_stability_index(rng.random(10), rng.random(10),
                                       n_bins=1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.0, 2.0))
    def test_nonnegative_and_monotone_in_shift(self, seed, shift):
        rng = np.random.default_rng(seed)
        baseline = rng.standard_normal(2_000)
        actual = rng.standard_normal(2_000) + shift
        psi = population_stability_index(baseline, actual)
        assert psi >= 0.0
        if shift > 1.0:
            assert psi > population_stability_index(
                baseline, rng.standard_normal(2_000)
            )


class TestDriftReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.data.generator import generate_default_dataset

        dataset = generate_default_dataset(n_samples=20_000, seed=5)
        split = temporal_split(dataset)
        return drift_report(split.train, split.test)

    def test_covers_every_feature(self, report):
        from repro.data.generator import GeneratorConfig

        assert len(report.features) == GeneratorConfig().total_features

    def test_spurious_features_drift_most(self, report):
        """The 2020 concept shift shows up in the regional signals."""
        worst_names = {f.name for f in report.worst(8)}
        assert any(name.startswith("regional_signal") for name in worst_names)

    def test_vehicle_mix_drift_detected(self, report):
        by_name = {f.name: f for f in report.features}
        # The used-car share falls and trucks rise between the windows.
        assert by_name["vehicle_is_used_car"].psi > 0.001

    def test_noise_features_stable(self, report):
        by_name = {f.name: f for f in report.features}
        noise = [f for name, f in by_name.items()
                 if name.startswith("bureau_field")]
        assert noise
        assert all(f.psi < 0.05 for f in noise)

    def test_reading_labels(self, report):
        for feature in report.features:
            assert feature.reading in {"stable", "moderate shift",
                                       "major shift"}

    def test_drifted_subset_consistent(self, report):
        drifted = report.drifted(0.01)
        assert all(f.psi >= 0.01 for f in drifted)

    def test_label_rates_reported(self, report):
        assert 0 < report.baseline_default_rate < 1
        assert 0 < report.monitoring_default_rate < 1

    def test_schema_mismatch_raises(self, report):
        from repro.data.generator import GeneratorConfig, LoanDataGenerator

        other = LoanDataGenerator(GeneratorConfig.small(seed=1)).generate()
        from repro.data.generator import generate_default_dataset

        base = generate_default_dataset(n_samples=2_000, seed=5)
        with pytest.raises(ValueError):
            drift_report(base, other)


class TestConceptDrift:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.data.generator import generate_default_dataset

        dataset = generate_default_dataset(n_samples=20_000, seed=5)
        split = temporal_split(dataset)
        from repro.monitor import concept_drift_report

        return concept_drift_report(split.train, split.test)

    def test_sorted_by_shift(self, report):
        shifts = [d.shift for d in report]
        assert shifts == sorted(shifts, reverse=True)

    def test_spurious_signals_top_the_list(self, report):
        """The 2020 concept shift hits the regional signals hardest."""
        top_names = {d.name for d in report[:6]}
        assert sum(
            1 for name in top_names if name.startswith("regional_signal")
        ) >= 3

    def test_invariant_features_stable(self, report):
        by_name = {d.name: d for d in report}
        dti = by_name["debt_to_income"]
        assert dti.shift < 0.05
        # ... and the relationship keeps its sign and strength.
        assert dti.baseline_correlation > 0.05
        assert dti.monitoring_correlation > 0.05

    def test_correlations_bounded(self, report):
        for drift in report:
            assert -1.0 <= drift.baseline_correlation <= 1.0
            assert -1.0 <= drift.monitoring_correlation <= 1.0

    def test_schema_mismatch_raises(self):
        from repro.data.generator import (
            GeneratorConfig,
            LoanDataGenerator,
            generate_default_dataset,
        )
        from repro.monitor import concept_drift_report

        base = generate_default_dataset(n_samples=2_000, seed=5)
        other = LoanDataGenerator(GeneratorConfig.small(seed=1)).generate()
        with pytest.raises(ValueError):
            concept_drift_report(base, other)
