"""Unit tests for the kernel profiling hooks (repro.obs.profile)."""

import numpy as np
import pytest

from repro.obs.profile import KernelProfiler, SectionStats, active, profiled


class TestSectionStats:
    def test_rows_per_second(self):
        stats = SectionStats(calls=1, seconds=2.0, rows=100)
        assert stats.rows_per_second == 50.0

    def test_zero_seconds_guard(self):
        assert SectionStats(rows=100).rows_per_second == 0.0

    def test_as_dict_keys(self):
        assert set(SectionStats().as_dict()) == {
            "calls", "seconds", "rows", "cells", "rows_per_s"
        }


class TestKernelProfiler:
    def test_section_accumulates(self):
        profiler = KernelProfiler()
        for _ in range(3):
            with profiler.section("histogram_build", rows=10, cells=256):
                pass
        stats = profiler.sections["histogram_build"]
        assert stats.calls == 3
        assert stats.rows == 30
        assert stats.cells == 768
        assert stats.seconds >= 0

    def test_section_records_on_exception(self):
        profiler = KernelProfiler()
        with pytest.raises(RuntimeError):
            with profiler.section("boom"):
                raise RuntimeError("x")
        assert profiler.sections["boom"].calls == 1

    def test_snapshot_sorted_without_alloc_key(self):
        profiler = KernelProfiler()
        with profiler.section("b"):
            pass
        with profiler.section("a"):
            pass
        snap = profiler.snapshot()
        assert list(snap["sections"]) == ["a", "b"]
        assert "alloc_peak_bytes" not in snap


class TestActiveGate:
    def test_inactive_by_default(self):
        assert active() is None

    def test_profiled_activates_and_restores(self):
        with profiled() as profiler:
            assert active() is profiler
        assert active() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiled():
                raise RuntimeError("x")
        assert active() is None

    def test_nested_profiled_raises(self):
        with profiled():
            with pytest.raises(RuntimeError, match="already active"):
                with profiled():
                    pass
        assert active() is None

    def test_reusing_a_profiler_accumulates(self):
        profiler = KernelProfiler()
        for _ in range(2):
            with profiled(profiler) as prof:
                assert prof is profiler
                with prof.section("s", rows=5):
                    pass
        assert profiler.sections["s"].calls == 2
        assert profiler.sections["s"].rows == 10


class TestTraceMalloc:
    def test_opt_in_records_high_water(self):
        with profiled(trace_malloc=True) as profiler:
            buffers = [np.zeros(50_000) for _ in range(4)]
            del buffers
        assert profiler.alloc_peak_bytes is not None
        # Four 400 kB buffers were live at once.
        assert profiler.alloc_peak_bytes > 1_000_000
        assert "alloc_peak_bytes" in profiler.snapshot()

    def test_default_skips_tracemalloc(self):
        with profiled() as profiler:
            pass
        assert profiler.alloc_peak_bytes is None


class TestGBDTHotPaths:
    def test_pipeline_sections_populated_when_active(self, small_split):
        from repro.gbdt.boosting import GBDTParams
        from repro.pipeline.extractor import GBDTFeatureExtractor

        with profiled() as profiler:
            extractor = GBDTFeatureExtractor(GBDTParams(n_trees=3))
            extractor.fit(small_split.train)
            extractor.encode_environments(small_split.train)
        sections = profiler.sections
        assert sections["boosting_round"].calls == 3
        assert sections["histogram_build"].calls > 0
        assert sections["leaf_encode"].calls > 0
        assert sections["leaf_encode"].rows == small_split.train.n_samples
        assert sections["histogram_build"].rows > 0
        assert sections["histogram_build"].cells > 0

    def test_hot_paths_silent_when_inactive(self, small_split):
        from repro.gbdt.boosting import GBDTParams
        from repro.pipeline.extractor import GBDTFeatureExtractor

        assert active() is None
        extractor = GBDTFeatureExtractor(GBDTParams(n_trees=2))
        extractor.fit(small_split.train)  # must not raise or record anywhere
        assert active() is None
