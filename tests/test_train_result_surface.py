"""Tests for the unified TrainResult scoring surface.

Every trainer's result — pooled or per-environment — must expose the same
four scoring methods, so downstream code (pipeline, runner, persistence)
never needs isinstance checks.
"""

import numpy as np
import pytest

from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
from repro.train.base import BaseTrainConfig, stack_environments
from repro.train.registry import available_trainers, make_trainer


@pytest.fixture(scope="module")
def surface_envs():
    rng = np.random.default_rng(11)
    from repro.data.dataset import EnvironmentData

    envs = []
    for name, shift in (("A", 0.0), ("B", 0.5), ("C", -0.5)):
        x = rng.standard_normal((120, 5))
        logit = 1.5 * x[:, 0] - x[:, 1] + shift
        y = (rng.random(120) < 1 / (1 + np.exp(-logit))).astype(float)
        y[0], y[1] = 0.0, 1.0
        envs.append(EnvironmentData(name, x, y))
    return envs


class TestEveryTrainerSatisfiesSurface:
    def test_all_registry_trainers(self, surface_envs):
        for name in available_trainers():
            result = make_trainer(name, n_epochs=2).fit(surface_envs)
            x, _ = stack_environments(surface_envs)
            assert isinstance(result.is_per_environment, bool), name
            theta = result.theta_for_environment("A")
            assert theta.shape == result.theta.shape, name
            scores = result.predict_proba_env("A", x)
            assert scores.shape == (x.shape[0],), name
            groups = np.repeat(
                [e.name for e in surface_envs],
                [e.n_samples for e in surface_envs],
            )
            grouped = result.predict_proba_grouped(x, groups)
            assert grouped.shape == (x.shape[0],), name


class TestPooledResult:
    def test_not_per_environment(self, surface_envs):
        result = ERMTrainer(BaseTrainConfig(n_epochs=2)).fit(surface_envs)
        assert result.is_per_environment is False
        np.testing.assert_array_equal(result.theta_for_environment("A"),
                                      result.theta)

    def test_grouped_equals_plain_predict(self, surface_envs):
        result = ERMTrainer(BaseTrainConfig(n_epochs=2)).fit(surface_envs)
        x, _ = stack_environments(surface_envs)
        groups = np.repeat(
            [e.name for e in surface_envs],
            [e.n_samples for e in surface_envs],
        )
        np.testing.assert_array_equal(
            result.predict_proba_grouped(x, groups),
            result.predict_proba(x),
        )


class TestPerEnvironmentResult:
    @pytest.fixture(scope="class")
    def finetuned(self, surface_envs):
        return FineTuneTrainer(FineTuneConfig(n_epochs=30)).fit(surface_envs)

    def test_is_per_environment(self, finetuned):
        assert finetuned.is_per_environment is True

    def test_env_theta_routed(self, finetuned, surface_envs):
        theta_a = finetuned.theta_for_environment("A")
        assert not np.array_equal(theta_a, finetuned.theta)
        x = surface_envs[0].features
        np.testing.assert_array_equal(
            finetuned.predict_proba_env("A", x),
            finetuned.model.predict_proba(theta_a, x),
        )

    def test_unseen_environment_uses_pooled_theta(self, finetuned,
                                                  surface_envs):
        x = surface_envs[0].features
        np.testing.assert_array_equal(
            finetuned.predict_proba_env("Z", x),
            finetuned.model.predict_proba(finetuned.theta, x),
        )

    def test_grouped_scores_in_input_order(self, finetuned, surface_envs):
        # Interleave rows from all three environments.
        x = np.vstack([e.features[:4] for e in surface_envs])
        groups = np.repeat([e.name for e in surface_envs], 4)
        order = np.arange(x.shape[0])
        np.random.default_rng(0).shuffle(order)
        shuffled = finetuned.predict_proba_grouped(x[order], groups[order])
        straight = finetuned.predict_proba_grouped(x, groups)
        np.testing.assert_array_equal(shuffled, straight[order])

    def test_grouped_validates_lengths(self, finetuned, surface_envs):
        with pytest.raises(ValueError):
            finetuned.predict_proba_grouped(
                surface_envs[0].features, np.array(["A", "B"])
            )
