"""Unit tests for the meta-IRM trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import MetaIRMConfig
from repro.core.meta_irm import MetaIRMTrainer
from repro.models.logistic import LogisticModel


def _fit(envs, **kw):
    defaults = dict(n_epochs=30, learning_rate=0.05, inner_lr=0.1, seed=0)
    defaults.update(kw)
    return MetaIRMTrainer(MetaIRMConfig(**defaults)).fit(envs)


class TestTraining:
    def test_objective_decreases(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=60)
        objective = result.history.objective
        assert objective[-1] < objective[0]

    def test_learns_the_signal(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=100, learning_rate=0.1)
        # x0 has coefficient +1.5, x1 has -1.0 in every environment.
        assert result.theta[0] > 0.3
        assert result.theta[1] < -0.1

    def test_deterministic_given_seed(self, tiny_envs):
        a = _fit(tiny_envs, seed=3)
        b = _fit(tiny_envs, seed=3)
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_history_lengths(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=12)
        assert result.history.n_epochs == 12
        assert len(result.history.env_losses) == 12
        assert set(result.history.env_losses[0]) == {"A", "B", "C"}

    def test_callback_invoked_every_epoch(self, tiny_envs):
        calls = []

        def callback(epoch, theta):
            calls.append(epoch)
            return float(epoch)

        result = MetaIRMTrainer(
            MetaIRMConfig(n_epochs=7, learning_rate=0.05)
        ).fit(tiny_envs, callback=callback)
        assert calls == list(range(7))
        assert result.history.tracked == [float(e) for e in range(7)]


class TestSampledVariants:
    def test_sampled_meta_loss_is_unbiased_estimate(self, tiny_envs):
        """With the (M-1)/S scaling, the sampled objective estimates the
        complete objective: same order of magnitude on the first epoch."""
        complete = _fit(tiny_envs, n_epochs=1)
        sampled = _fit(tiny_envs, n_epochs=1, n_sampled_envs=1)
        full = complete.history.objective[0]
        estimate = sampled.history.objective[0]
        assert 0.5 * full < estimate < 2.0 * full

    def test_sample_size_capped_at_m_minus_one(self, tiny_envs):
        # Requesting more environments than exist degrades to complete.
        big_s = _fit(tiny_envs, n_epochs=5, n_sampled_envs=10, seed=1)
        complete = _fit(tiny_envs, n_epochs=5, seed=1)
        np.testing.assert_allclose(big_s.theta, complete.theta)

    def test_name_reflects_sampling(self):
        assert MetaIRMTrainer(MetaIRMConfig()).name == "meta-IRM"
        assert MetaIRMTrainer(
            MetaIRMConfig(n_sampled_envs=5)
        ).name == "meta-IRM(5)"


class TestFirstOrder:
    def test_first_order_differs_from_second_order(self, tiny_envs):
        fo = _fit(tiny_envs, first_order=True, n_epochs=20)
        so = _fit(tiny_envs, first_order=False, n_epochs=20)
        assert not np.allclose(fo.theta, so.theta)


class TestValidation:
    def test_empty_envs_rejected(self):
        with pytest.raises(ValueError):
            MetaIRMTrainer(MetaIRMConfig()).fit([])

    def test_result_predicts(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=5)
        probs = result.predict_proba(tiny_envs[0].features)
        assert probs.shape == (tiny_envs[0].n_samples,)
        assert np.all((probs > 0) & (probs < 1))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MetaIRMConfig(inner_lr=0)
        with pytest.raises(ValueError):
            MetaIRMConfig(lambda_penalty=-1)
        with pytest.raises(ValueError):
            MetaIRMConfig(n_sampled_envs=0)

    def test_model_dimension_matches(self, tiny_envs):
        result = _fit(tiny_envs, n_epochs=2)
        assert isinstance(result.model, LogisticModel)
        assert result.theta.shape == (tiny_envs[0].features.shape[1],)
