"""Unit tests of the process-pool engine and shared-memory packs."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from scipy import sparse

from repro.data.dataset import EnvironmentData
from repro.parallel import (
    ParallelEngine,
    SharedArrayPack,
    WorkerTaskError,
    environments_from_arrays,
    environments_to_arrays,
    spawn_task_seeds,
)

# Worker functions must be module-level to cross process boundaries.


def _square(x: int) -> int:
    return x * x


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError(f"boom {x}")
    return x


_INIT_CALLS: list[str] = []


def _record_init(tag: str) -> None:
    _INIT_CALLS.append(tag)


class TestParallelEngine:
    def test_results_in_submission_order(self):
        results = ParallelEngine(n_jobs=2).map(_square, range(7))
        assert results == [x * x for x in range(7)]

    def test_serial_is_the_same_map(self):
        serial = ParallelEngine(n_jobs=1).map(_square, range(7))
        pooled = ParallelEngine(n_jobs=3).map(_square, range(7))
        assert serial == pooled

    def test_more_payloads_than_workers(self):
        results = ParallelEngine(n_jobs=2).map(_square, range(20))
        assert results == [x * x for x in range(20)]

    def test_worker_exception_surfaces_with_index(self):
        with pytest.raises(WorkerTaskError) as excinfo:
            ParallelEngine(n_jobs=2).map(_fail_on_two, [0, 2, 1, 2])
        assert excinfo.value.index == 1
        assert "boom 2" in str(excinfo.value)
        assert "ValueError" in excinfo.value.worker_traceback

    def test_inline_exception_is_raw(self):
        # n_jobs=1 never crosses a process boundary, so the original
        # exception (with its real traceback) propagates unwrapped.
        with pytest.raises(ValueError, match="boom 2"):
            ParallelEngine(n_jobs=1).map(_fail_on_two, [0, 2])

    def test_inline_initializer_runs_once_first(self):
        _INIT_CALLS.clear()
        ParallelEngine(n_jobs=1).map(
            _square, range(3), initializer=_record_init, initargs=("x",)
        )
        assert _INIT_CALLS == ["x"]

    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ValueError):
            ParallelEngine(n_jobs=0)

    def test_empty_payloads(self):
        assert ParallelEngine(n_jobs=1).map(_square, []) == []


class TestSpawnTaskSeeds:
    def test_deterministic(self):
        assert spawn_task_seeds(7, 5) == spawn_task_seeds(7, 5)

    def test_pairwise_distinct(self):
        seeds = spawn_task_seeds(7, 64)
        assert len(set(seeds)) == len(seeds)

    def test_entropy_changes_streams(self):
        assert spawn_task_seeds(7, 4) != spawn_task_seeds(8, 4)

    def test_sequence_entropy(self):
        seeds = spawn_task_seeds((7, 0, 1), 3)
        assert len(seeds) == 3
        assert all(isinstance(s, int) and s >= 0 for s in seeds)


class TestSharedArrayPack:
    def test_round_trip_through_pickled_spec(self):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int32),
            "c": np.array([[True, False]]),
        }
        pack = SharedArrayPack.pack(arrays, meta={"tag": "t"})
        try:
            spec = pickle.loads(pickle.dumps(pack.spec))
            attached = SharedArrayPack.attach(spec)
            views = attached.arrays()
            for key, array in arrays.items():
                np.testing.assert_array_equal(views[key], array)
                assert views[key].dtype == array.dtype
            assert spec.metadata() == {"tag": "t"}
            attached.close()
        finally:
            pack.dispose()

    def test_views_are_read_only(self):
        pack = SharedArrayPack.pack({"a": np.zeros(4)})
        try:
            view = SharedArrayPack.attach(pack.spec).arrays()["a"]
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 1.0
        finally:
            pack.dispose()

    def test_offsets_are_aligned(self):
        pack = SharedArrayPack.pack({
            "odd": np.zeros(3, dtype=np.int8),
            "next": np.zeros(5, dtype=np.float64),
        })
        try:
            for entry in pack.spec.entries:
                assert entry.offset % 64 == 0
        finally:
            pack.dispose()

    def test_dispose_is_idempotent(self):
        pack = SharedArrayPack.pack({"a": np.zeros(2)})
        pack.dispose()
        pack.dispose()


class TestEnvironmentRoundTrip:
    def _environments(self) -> list[EnvironmentData]:
        rng = np.random.default_rng(0)
        dense = EnvironmentData(
            "DenseProv", rng.standard_normal((6, 3)),
            rng.integers(0, 2, 6).astype(float),
        )
        csr = sparse.random(8, 5, density=0.4, format="csr",
                            random_state=1, dtype=np.float64)
        sparse_env = EnvironmentData(
            "SparseProv", csr, rng.integers(0, 2, 8).astype(float)
        )
        return [dense, sparse_env]

    def test_round_trip(self):
        environments = self._environments()
        arrays, meta = environments_to_arrays(environments, "train")
        pack = SharedArrayPack.pack(arrays, meta)
        try:
            attached = SharedArrayPack.attach(pack.spec)
            rebuilt = environments_from_arrays(
                attached.arrays(), attached.spec.metadata(), "train"
            )
            assert [e.name for e in rebuilt] == [e.name for e in environments]
            for original, copy in zip(environments, rebuilt):
                np.testing.assert_array_equal(original.labels, copy.labels)
                if sparse.issparse(original.features):
                    assert sparse.issparse(copy.features)
                    np.testing.assert_array_equal(
                        original.features.toarray(), copy.features.toarray()
                    )
                else:
                    np.testing.assert_array_equal(
                        original.features, copy.features
                    )
        finally:
            pack.dispose()

    def test_prefixes_do_not_collide(self):
        environments = self._environments()
        train_arrays, train_meta = environments_to_arrays(
            environments, "train"
        )
        test_arrays, test_meta = environments_to_arrays(
            environments[:1], "test"
        )
        train_arrays.update(test_arrays)
        train_meta.update(test_meta)
        pack = SharedArrayPack.pack(train_arrays, train_meta)
        try:
            attached = SharedArrayPack.attach(pack.spec)
            meta = attached.spec.metadata()
            train = environments_from_arrays(attached.arrays(), meta, "train")
            test = environments_from_arrays(attached.arrays(), meta, "test")
            assert len(train) == 2 and len(test) == 1
        finally:
            pack.dispose()
