"""Unit tests for the temporal drift processes."""

import numpy as np
import pytest

from repro.data.provinces import default_registry
from repro.data.shifts import (
    covid_default_shift,
    spurious_strength,
    vehicle_mix,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestVehicleMix:
    def test_valid_distribution(self, registry):
        for province in registry:
            for year in (2016, 2018, 2020):
                mix = vehicle_mix(province, year)
                assert mix.shape == (5,)
                assert np.all(mix > 0)
                assert mix.sum() == pytest.approx(1.0)

    def test_mix_drifts_over_years(self, registry):
        guangdong = registry.get("Guangdong")
        mix_2016 = vehicle_mix(guangdong, 2016)
        mix_2020 = vehicle_mix(guangdong, 2020)
        assert np.abs(mix_2016 - mix_2020).sum() > 0.05

    def test_truck_tilt_raises_truck_share(self, registry):
        hub = registry.get("Guangdong")       # truck_tilt 0.10
        quiet = registry.get("Qinghai")       # truck_tilt 0
        assert vehicle_mix(hub, 2018)[4] > vehicle_mix(quiet, 2018)[4]

    def test_used_car_tilt_raises_used_share(self, registry):
        rural = registry.get("Qinghai")
        coastal = registry.get("Jiangsu")
        assert vehicle_mix(rural, 2018)[3] > vehicle_mix(coastal, 2018)[3]


class TestCovidShift:
    def test_zero_outside_2020(self, registry):
        hubei = registry.get("Hubei")
        for year in (2016, 2019):
            assert covid_default_shift(hubei, year, 1) == 0.0

    def test_zero_for_unexposed(self, registry):
        assert covid_default_shift(registry.get("Jiangsu"), 2020, 1) == 0.0

    def test_h1_shock_much_larger_than_h2(self, registry):
        hubei = registry.get("Hubei")
        h1 = covid_default_shift(hubei, 2020, 1)
        h2 = covid_default_shift(hubei, 2020, 2)
        assert h1 > 4 * h2 > 0


class TestSpuriousStrength:
    def test_training_years_full_strength(self, registry):
        jiangsu = registry.get("Jiangsu")
        assert spurious_strength(jiangsu, 2018, 1, 0.7) == pytest.approx(
            0.7 * jiangsu.spurious_polarity
        )

    def test_2020_decay(self, registry):
        jiangsu = registry.get("Jiangsu")
        before = abs(spurious_strength(jiangsu, 2019, 1, 0.7))
        after = abs(spurious_strength(jiangsu, 2020, 1, 0.7))
        assert after < before

    def test_covid_breaks_signal_in_h1(self, registry):
        hubei = registry.get("Hubei")
        h1 = abs(spurious_strength(hubei, 2020, 1, 0.7))
        h2 = abs(spurious_strength(hubei, 2020, 2, 0.7))
        assert h1 < 0.2 * h2

    def test_polarity_sign_carries(self, registry):
        xinjiang = registry.get("Xinjiang")
        assert spurious_strength(xinjiang, 2018, 1, 0.7) < 0
