"""Regenerate every paper artefact outside pytest and write a report.

A thin convenience wrapper over the experiment harness for users who want
the full set of tables/figures as one text report without the benchmark
machinery:

    python scripts/run_all_experiments.py [--n-samples N] [--out report.txt]

For shape assertions and timing, prefer ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.data.provinces import extended_registry
from repro.experiments.runner import ExperimentContext, ExperimentSettings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-samples", type=int, default=40_000)
    parser.add_argument("--data-seed", type=int, default=7)
    parser.add_argument("--trainer-seeds", type=int, nargs="+",
                        default=[0, 1, 2])
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args()

    settings = dict(
        n_samples=args.n_samples,
        data_seed=args.data_seed,
        trainer_seeds=tuple(args.trainer_seeds),
    )
    main_ctx = ExperimentContext(ExperimentSettings(**settings))
    iid_ctx = ExperimentContext(ExperimentSettings(**settings, split="iid"))
    extended_ctx = ExperimentContext(
        ExperimentSettings(
            n_samples=max(args.n_samples, 50_000),
            data_seed=args.data_seed,
            trainer_seeds=(args.trainer_seeds[0],),
            generator_overrides={"registry": extended_registry()},
        )
    )

    from repro.experiments import (
        fig1_province_map,
        fig4_vehicle_mix,
        fig5_online,
        fig9_mrq_length,
        fig10_guangdong_share,
        fig11_hubei,
        table1_main,
        table2_sampling,
        table3_timing,
        table4_gamma,
        table5_guangdong,
        table6_iid,
    )

    jobs = [
        ("Fig 1", lambda: fig1_province_map.format_fig1(
            fig1_province_map.run_fig1(main_ctx))),
        ("Fig 4", lambda: fig4_vehicle_mix.format_fig4(
            fig4_vehicle_mix.run_fig4(main_ctx.dataset,
                                      years=(2016, 2018, 2020)))),
        ("Fig 5", lambda: fig5_online.format_fig5(
            fig5_online.run_fig5(main_ctx))),
        ("Table I", lambda: table1_main.format_table1(
            table1_main.run_table1(main_ctx))),
        ("Table II", lambda: table2_sampling.format_table2(
            table2_sampling.run_table2(extended_ctx))),
        ("Table III + Fig 7", lambda: table3_timing.format_table3(
            table3_timing.run_table3(extended_ctx))),
        ("Figs 6/8", lambda: table2_sampling.format_curves(
            table2_sampling.run_training_curves(extended_ctx, every=10))),
        ("Fig 9", lambda: fig9_mrq_length.format_fig9(
            fig9_mrq_length.run_fig9(main_ctx))),
        ("Table IV", lambda: table4_gamma.format_table4(
            table4_gamma.run_table4(main_ctx))),
        ("Fig 10", lambda: fig10_guangdong_share.format_fig10(
            fig10_guangdong_share.run_fig10(main_ctx.dataset))),
        ("Table V", lambda: table5_guangdong.format_table5(
            table5_guangdong.run_table5(main_ctx))),
        ("Fig 11", lambda: fig11_hubei.format_fig11(
            fig11_hubei.run_fig11(main_ctx))),
        ("Table VI", lambda: table6_iid.format_table6(
            table6_iid.run_table6(iid_ctx))),
    ]

    sections = []
    for title, job in jobs:
        start = time.perf_counter()
        print(f"running {title} ...", file=sys.stderr)
        rendered = job()
        elapsed = time.perf_counter() - start
        sections.append(f"===== {title} ({elapsed:.0f}s) =====\n{rendered}")

    report = "\n\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
