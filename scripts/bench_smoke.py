#!/usr/bin/env python
"""Smoke-run every perf microbenchmark at tiny sizes.

Exercises the full ``repro.perfbench`` suite (including the JSON writer)
with :meth:`BenchConfig.smoke` sizes so benchmark code cannot silently rot
between the occasions someone runs the real tracked configuration.  The
same check runs under tier-1 via ``tests/test_perfbench_smoke.py``; this
script is the standalone form::

    PYTHONPATH=src python scripts/bench_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.perfbench import BenchConfig, run_suite, summarize, write_bench_json
from repro.perfbench.suites import BENCHMARKS


def main() -> int:
    config = BenchConfig.smoke()
    results = run_suite(config)
    missing = sorted(set(BENCHMARKS) - set(results))
    if missing:
        print(f"benchmarks did not run: {missing}", file=sys.stderr)
        return 1
    print(summarize(results))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_gbdt.json"
        write_bench_json(path, results, config)
        payload = json.loads(path.read_text())
    for key in ("format", "config", "machine", "benchmarks"):
        if key not in payload:
            print(f"BENCH json missing key: {key}", file=sys.stderr)
            return 1
    print("bench smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
