"""Developer tuning harness: check the Table I shape across seeds.

Not part of the library or the benchmark suite; used while calibrating the
synthetic generator and the default trainer hyper-parameters so the
qualitative shapes of the paper's tables hold robustly.

Run: python scripts/tune_shapes.py [n_samples] [data_seeds...]
"""

import sys
import time

import numpy as np

from repro import generate_default_dataset, temporal_split
from repro.baselines.erm import ERMTrainer
from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer
from repro.baselines.vrex import VRExConfig, VRExTrainer
from repro.core import (
    LightMIRMConfig,
    LightMIRMTrainer,
    MetaIRMConfig,
    MetaIRMTrainer,
)
from repro.metrics.fairness import evaluate_environments
from repro.pipeline import LoanDefaultPipeline
from repro.train.base import BaseTrainConfig

N_TRAINER_SEEDS = 3


def build_methods():
    """Method name -> factory(seed) using the candidate default configs."""
    common = dict(n_epochs=150, learning_rate=2.0, l2=1e-3)
    return {
        "ERM": lambda s: ERMTrainer(BaseTrainConfig(seed=s, **common)),
        "finetune": lambda s: FineTuneTrainer(FineTuneConfig(seed=s, **common)),
        "upsample": lambda s: UpSamplingTrainer(UpSamplingConfig(seed=s, **common)),
        "DRO": lambda s: GroupDROTrainer(GroupDROConfig(seed=s, **common)),
        "V-REx": lambda s: VRExTrainer(VRExConfig(seed=s, **common)),
        "metaIRM": lambda s: MetaIRMTrainer(MetaIRMConfig(
            seed=s, n_epochs=80, learning_rate=0.02, inner_lr=0.1,
            l2=1e-3, lambda_penalty=3.0)),
        "LightMIRM": lambda s: LightMIRMTrainer(LightMIRMConfig(
            seed=s, n_epochs=150, learning_rate=0.2, inner_lr=0.1,
            l2=1e-3, lambda_penalty=3.0)),
    }


def main() -> None:
    n_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    data_seeds = [int(a) for a in sys.argv[2:]] or [7, 11, 23]
    methods = build_methods()
    totals = {name: np.zeros(4) for name in methods}

    for dseed in data_seeds:
        dataset = generate_default_dataset(n_samples=n_samples, seed=dseed)
        split = temporal_split(dataset)
        pipe = LoanDefaultPipeline(ERMTrainer(BaseTrainConfig(n_epochs=1)))
        pipe.fit(split.train)
        envs = pipe.encode_environments(split.train)
        test_envs = pipe.encode_environments(split.test)
        labels = {e.name: e.labels for e in test_envs}

        print(f"=== data seed {dseed} (n={n_samples}) ===")
        for name, factory in methods.items():
            t0 = time.time()
            metrics = np.zeros(4)
            worsts = []
            for tseed in range(N_TRAINER_SEEDS):
                res = factory(tseed).fit(envs)
                if hasattr(res, "predict_proba_env"):
                    scores = {e.name: res.predict_proba_env(e.name, e.features)
                              for e in test_envs}
                else:
                    scores = {e.name: res.model.predict_proba(res.theta, e.features)
                              for e in test_envs}
                rep = evaluate_environments(labels, scores)
                metrics += np.array([rep.mean_ks, rep.worst_ks,
                                     rep.mean_auc, rep.worst_auc])
                worsts.append(rep.worst_ks_environment)
            metrics /= N_TRAINER_SEEDS
            totals[name] += metrics
            print(f"  {name:12s} mKS={metrics[0]:.4f} wKS={metrics[1]:.4f} "
                  f"mAUC={metrics[2]:.4f} wAUC={metrics[3]:.4f} "
                  f"worst={worsts} ({time.time()-t0:.0f}s)")

    print("=== mean over data seeds ===")
    for name, vals in totals.items():
        vals = vals / len(data_seeds)
        print(f"  {name:12s} mKS={vals[0]:.4f} wKS={vals[1]:.4f} "
              f"mAUC={vals[2]:.4f} wAUC={vals[3]:.4f}")


if __name__ == "__main__":
    main()
