"""Quickstart: train a fair loan default predictor with LightMIRM.

Generates a synthetic multi-province auto-loan platform, trains the paper's
GBDT+LR pipeline with the LightMIRM head, and reports the four headline
metrics (mean / worst KS and AUC over provinces) against a plain ERM head.

Run:  python examples/quickstart.py
"""

from repro import (
    ERMTrainer,
    LightMIRMTrainer,
    LoanDefaultPipeline,
    generate_default_dataset,
    temporal_split,
)
from repro.pipeline import GBDTFeatureExtractor


def main() -> None:
    # 1. Data: 30k applications, 12 provinces, 2016-2020 with drift.
    dataset = generate_default_dataset(n_samples=30_000, seed=7)
    print(f"platform: {dataset}")
    split = temporal_split(dataset)
    print(
        f"train 2016-2019: {split.train.n_samples} rows | "
        f"test 2020: {split.test.n_samples} rows"
    )

    # 2. Shared feature extraction (GBDT leaf one-hot encoding, Fig 2).
    extractor = GBDTFeatureExtractor().fit(split.train)
    print(f"GBDT encoded {extractor.n_output_features} leaf indicators")

    # 3. Train two heads on the same features: ERM vs LightMIRM.
    for trainer in (ERMTrainer(), LightMIRMTrainer()):
        pipeline = LoanDefaultPipeline(trainer, extractor=extractor)
        pipeline.fit(split.train)
        report = pipeline.evaluate(split.test)
        summary = report.summary()
        print(
            f"{trainer.name:12s} "
            f"mKS={summary['mKS']:.4f} wKS={summary['wKS']:.4f} "
            f"mAUC={summary['mAUC']:.4f} wAUC={summary['wAUC']:.4f} "
            f"(worst province: {report.worst_ks_environment})"
        )


if __name__ == "__main__":
    main()
