"""Province-wise fairness audit (the Fig 1 scenario).

Reproduces the paper's motivating observation: a model trained by plain ERM
performs dramatically worse in underrepresented provinces.  Prints a
per-province KS breakdown for ERM and LightMIRM side by side, the relative
spread that Fig 1 visualises as a map, and a paired-bootstrap check of
whether LightMIRM's win on the worst province is statistically resolvable.

Run:  python examples/fairness_report.py
"""

from repro import (
    ERMTrainer,
    LightMIRMTrainer,
    LoanDefaultPipeline,
    generate_default_dataset,
    temporal_split,
)
from repro.eval.reports import format_table
from repro.metrics import paired_bootstrap_difference
from repro.pipeline import GBDTFeatureExtractor


def main() -> None:
    dataset = generate_default_dataset(n_samples=30_000, seed=7)
    split = temporal_split(dataset)
    extractor = GBDTFeatureExtractor().fit(split.train)

    pipelines = {}
    reports = {}
    for trainer in (ERMTrainer(), LightMIRMTrainer()):
        pipeline = LoanDefaultPipeline(trainer, extractor=extractor)
        pipeline.fit(split.train)
        pipelines[trainer.name] = pipeline
        reports[trainer.name] = pipeline.evaluate(split.test)

    erm = reports["ERM"]
    light = reports["LightMIRM"]
    rows = []
    for name, erm_scores in sorted(
        erm.per_environment.items(), key=lambda kv: -kv[1].ks
    ):
        light_scores = light.per_environment[name]
        rows.append(
            {
                "province": name,
                "n_test": erm_scores.n_samples,
                "ERM KS": erm_scores.ks,
                "LightMIRM KS": light_scores.ks,
                "delta": light_scores.ks - erm_scores.ks,
            }
        )
    print(
        format_table(
            rows,
            columns=("province", "n_test", "ERM KS", "LightMIRM KS", "delta"),
            title="Province-wise KS (2020 test year)",
        )
    )
    print()
    for name, report in reports.items():
        spread = report.ks_spread()
        print(
            f"{name:12s} worst province {report.worst_ks_environment} "
            f"(wKS={report.worst_ks:.4f}); best-to-worst KS spread {spread:.4f}"
        )

    # Is LightMIRM's win on ERM's worst province statistically resolvable?
    # Paired bootstrap on the province's shared test rows.
    worst = erm.worst_ks_environment
    province_slice = split.test.filter_province(worst)
    diff = paired_bootstrap_difference(
        province_slice.labels,
        pipelines["LightMIRM"].predict_proba(province_slice),
        pipelines["ERM"].predict_proba(province_slice),
        n_resamples=500,
    )
    verdict = "resolvable" if diff.lower > 0 else "within sampling noise"
    print(
        f"\npaired bootstrap on {worst}: LightMIRM KS - ERM KS = {diff} "
        f"-> {verdict}"
    )


if __name__ == "__main__":
    main()
