"""Periodic-retrain workflow: tune, select, audit calibration, ship.

The paper stresses that "loan default prediction models have to be updated
periodically at a relatively high frequency" — which is why LightMIRM's
training cost matters.  This example shows the full refresh loop a
platform team would automate:

1. grid-search LightMIRM's λ and MRQ length on a validation split
   (a typed HPSpace driven by the engine-backed scheduler),
2. refit the winning configuration on all training data,
3. audit per-province calibration (the paper's fairness notion),
4. persist the model artifact for serving.

Run:  python examples/retrain_and_tune.py
"""

import tempfile

from repro import generate_default_dataset, temporal_split
from repro.core import LightMIRMConfig, LightMIRMTrainer
from repro.eval.reports import format_table
from repro.metrics import calibration_gap_by_environment
from repro.persist import load_pipeline, save_pipeline
from repro.pipeline import GBDTFeatureExtractor, LoanDefaultPipeline
from repro.tune import HPSpace, run_grid


def main() -> None:
    dataset = generate_default_dataset(n_samples=30_000, seed=7)
    split = temporal_split(dataset)
    extractor = GBDTFeatureExtractor().fit(split.train)
    environments = extractor.encode_environments(split.train)

    # --- 1. grid search on a per-province validation split --------------
    # The space is validated against LightMIRMConfig at construction, so
    # a typo'd field fails here, not after an hour of training.
    space = HPSpace.grid(
        "LightMIRM",
        {"lambda_penalty": [1.0, 3.0, 6.0], "queue_length": [3, 5, 7]},
    )
    search = run_grid(
        space,
        environments,
        objective="blend",   # (mKS + wKS) / 2 — the paper's dual goal
        blend_weight=0.5,
        n_jobs=2,            # bit-identical to n_jobs=1
    )
    rows = [
        {
            "lambda": t.params["lambda_penalty"],
            "L": t.params["queue_length"],
            "val mKS": t.report.mean_ks,
            "val wKS": t.report.worst_ks,
            "train (s)": round(t.train_seconds, 2),
        }
        for t in search.ranked()
    ]
    print(
        format_table(
            rows,
            columns=("lambda", "L", "val mKS", "val wKS", "train (s)"),
            title="Grid search (ranked by blended mKS/wKS)",
        )
    )
    print(f"\nselected: {dict(search.best.params)}")

    # --- 2. refit the winner on the full training data ------------------
    best_config = LightMIRMConfig(**search.best.params)
    pipeline = LoanDefaultPipeline(
        LightMIRMTrainer(best_config), extractor=extractor
    )
    pipeline.fit(split.train)
    report = pipeline.evaluate(split.test)
    print(f"2020 test: {report.summary()}")

    # --- 3. per-province calibration audit -------------------------------
    scores = pipeline.predict_proba(split.test)
    labels_by_env = {
        name: split.test.labels[split.test.provinces == name]
        for name in split.test.province_names()
    }
    probs_by_env = {
        name: scores[split.test.provinces == name]
        for name in split.test.province_names()
    }
    gaps = calibration_gap_by_environment(labels_by_env, probs_by_env)
    worst_province = max(gaps, key=gaps.get)
    print(
        f"calibration gaps (ECE): median "
        f"{sorted(gaps.values())[len(gaps) // 2]:.4f}, worst "
        f"{worst_province} at {gaps[worst_province]:.4f}"
    )

    # --- 4. ship the artifact --------------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        save_pipeline(pipeline, handle.name,
                      metadata={"selected": dict(search.best.params)})
        restored = load_pipeline(handle.name)
        check = abs(
            restored.predict_proba(split.test) - scores
        ).max()
        print(
            f"artifact saved to {handle.name}; restored scorer matches to "
            f"{check:.2e}"
        )


if __name__ == "__main__":
    main()
