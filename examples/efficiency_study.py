"""Training-cost study (the Table III / Fig 7 scenario).

Profiles the operation steps of complete meta-IRM, sampled meta-IRM(5) and
LightMIRM on a 26-province platform (the environment count where the
paper's S in {5, 10, 20} sampling sizes apply) and prints the per-step
costs, the step proportions, and the speedup ratios the complexity analysis
of Section III-F predicts (O(2M^2) vs O(4M) per epoch).

Run:  python examples/efficiency_study.py
"""

from repro.core import (
    LightMIRMConfig,
    LightMIRMTrainer,
    MetaIRMConfig,
    MetaIRMTrainer,
)
from repro.data import GeneratorConfig, LoanDataGenerator, temporal_split
from repro.data.provinces import extended_registry
from repro.eval.reports import format_table
from repro.pipeline import GBDTFeatureExtractor
from repro.timing import STEP_NAMES, StepTimer

PROFILE_EPOCHS = 10


def main() -> None:
    config = GeneratorConfig(
        n_samples=30_000, seed=7, registry=extended_registry()
    )
    dataset = LoanDataGenerator(config).generate()
    split = temporal_split(dataset)
    extractor = GBDTFeatureExtractor().fit(split.train)
    environments = extractor.encode_environments(split.train)
    print(
        f"{len(environments)} environments; complexity analysis predicts a "
        f"~{len(environments) / 2:.0f}x meta-loss step gap"
    )

    trainers = {
        "meta-IRM": MetaIRMTrainer(MetaIRMConfig(n_epochs=PROFILE_EPOCHS)),
        "meta-IRM(5)": MetaIRMTrainer(
            MetaIRMConfig(n_epochs=PROFILE_EPOCHS, n_sampled_envs=5)
        ),
        "LightMIRM": LightMIRMTrainer(
            LightMIRMConfig(n_epochs=PROFILE_EPOCHS)
        ),
    }

    timers: dict[str, StepTimer] = {}
    for name, trainer in trainers.items():
        timer = StepTimer(enabled=True)
        trainer.fit(environments, timer=timer)
        timers[name] = timer

    rows = []
    for step in STEP_NAMES:
        row: dict[str, object] = {"step": step}
        for name, timer in timers.items():
            row[name] = timer.total_step_seconds(step) / PROFILE_EPOCHS
        rows.append(row)
    epoch_row: dict[str, object] = {"step": "whole epoch"}
    for name, timer in timers.items():
        epoch_row[name] = timer.mean_epoch_seconds
    rows.append(epoch_row)

    print(
        format_table(
            rows,
            columns=("step",) + tuple(trainers),
            title="Per-epoch step cost (seconds)",
        )
    )

    complete = timers["meta-IRM"]
    light = timers["LightMIRM"]
    meta_ratio = complete.total_step_seconds(
        "calculating_meta_losses"
    ) / light.total_step_seconds("calculating_meta_losses")
    epoch_ratio = complete.mean_epoch_seconds / light.mean_epoch_seconds
    print()
    print(f"meta-loss step: LightMIRM is {meta_ratio:.1f}x faster")
    print(f"whole epoch   : LightMIRM is {epoch_ratio:.1f}x faster")


if __name__ == "__main__":
    main()
