"""Online companion-model simulation (the Fig 5 scenario).

The paper deploys the LightMIRM model as a "companion runner" next to the
incumbent approval system: loans the incumbent approves are additionally
screened at a threshold.  This example replays a held-out 2020 application
stream, sweeps the threshold, and prints the refusal-rate / bad-debt-rate
trade-off a risk team would use to pick an operating point.

Run:  python examples/online_companion.py
"""

import numpy as np

from repro import (
    LightMIRMTrainer,
    LoanDefaultPipeline,
    generate_default_dataset,
    temporal_split,
)
from repro.eval.online import replay_online_test
from repro.eval.reports import format_table


def main() -> None:
    dataset = generate_default_dataset(n_samples=30_000, seed=11)
    split = temporal_split(dataset)

    pipeline = LoanDefaultPipeline(LightMIRMTrainer())
    pipeline.fit(split.train)
    scores = pipeline.predict_proba(split.test)

    replay = replay_online_test(
        split.test.labels, scores, operating_threshold=0.5
    )

    # Show the operating curve at a handful of thresholds.
    curves = replay.curves
    rows = []
    for t in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8):
        i = int(np.argmin(np.abs(curves["thresholds"] - t)))
        rows.append(
            {
                "threshold": t,
                "refused": f"{curves['refusal_rate'][i]:.1%}",
                "bad debt": f"{curves['bad_debt_rate'][i]:.2%}",
                "good customers refused": f"{curves['false_positive_rate'][i]:.1%}",
            }
        )
    print(
        format_table(
            rows,
            columns=("threshold", "refused", "bad debt",
                     "good customers refused"),
            title="Companion-model operating curve (2020 replay)",
        )
    )
    print()
    print(f"without companion model: {replay.baseline_bad_debt_rate:.2%} bad debt")
    print(
        f"with companion @ 0.5   : {replay.companion_bad_debt_rate:.2%} bad debt "
        f"({replay.reduction_fraction:.0%} reduction, refusing "
        f"{replay.refusal_at_threshold:.1%} of applications)"
    )


if __name__ == "__main__":
    main()
