"""Full method comparison (the Table I scenario).

Trains all seven methods of the paper's comparison — ERM, ERM+fine-tuning,
Up Sampling, Group DRO, V-REx, meta-IRM and LightMIRM — against the same
GBDT leaf features and prints the Table I metrics, plus each method's
training wall-clock so the efficiency story is visible alongside quality.

Run:  python examples/compare_methods.py
"""

import time

from repro import generate_default_dataset, make_trainer, temporal_split
from repro.eval.reports import format_table, highlight_best
from repro.pipeline import GBDTFeatureExtractor, LoanDefaultPipeline
from repro.train.registry import available_trainers


def main() -> None:
    dataset = generate_default_dataset(n_samples=30_000, seed=7)
    split = temporal_split(dataset)
    extractor = GBDTFeatureExtractor().fit(split.train)

    rows = []
    for name in available_trainers():
        start = time.perf_counter()
        pipeline = LoanDefaultPipeline(make_trainer(name),
                                       extractor=extractor)
        pipeline.fit(split.train)
        elapsed = time.perf_counter() - start
        report = pipeline.evaluate(split.test)
        summary = report.summary()
        rows.append(
            {
                "method": name,
                "mKS": summary["mKS"],
                "wKS": summary["wKS"],
                "mAUC": summary["mAUC"],
                "wAUC": summary["wAUC"],
                "train (s)": round(elapsed, 2),
            }
        )

    print(
        format_table(
            rows,
            columns=("method", "mKS", "wKS", "mAUC", "wAUC", "train (s)"),
            title="Method comparison (temporal split, 2020 test)",
        )
    )
    print()
    print(f"best worst-province KS: {highlight_best(rows, 'wKS')}")
    print(f"best mean KS          : {highlight_best(rows, 'mKS')}")


if __name__ == "__main__":
    main()
