"""Explainability + drift audit (the paper's RQ5 / Section IV-B scenario).

Two diagnostics a model-risk team would run before deploying:

1. **Feature-role attribution** — decompose each head's weight mass over
   the raw features reached through the GBDT leaf paths, grouped by causal
   role.  The IRM-trained head should place visibly less mass on the
   spurious "regional signal" features than the ERM head (the paper's RQ5
   claim: IRM "captures invariant correlations").
2. **PSI drift report** — quantify which features actually shifted between
   the training years and 2020, confirming the covariate/concept drift
   story of Section IV-B.

Run:  python examples/explainability_audit.py
"""

from repro import generate_default_dataset, make_trainer, temporal_split
from repro.eval.reports import format_table
from repro.explain import attribution_by_role, head_feature_attribution
from repro.monitor import concept_drift_report, drift_report
from repro.pipeline import GBDTFeatureExtractor


def main() -> None:
    dataset = generate_default_dataset(n_samples=30_000, seed=7)
    split = temporal_split(dataset)
    extractor = GBDTFeatureExtractor().fit(split.train)
    environments = extractor.encode_environments(split.train)

    # --- 1. role attribution per training method -----------------------
    rows = []
    for name in ("ERM", "meta-IRM", "LightMIRM"):
        result = make_trainer(name, seed=0).fit(environments)
        attribution = head_feature_attribution(extractor, result.theta)
        shares = attribution_by_role(attribution, dataset.schema)
        row: dict[str, object] = {"method": name}
        row.update(shares)
        rows.append(row)
    print(
        format_table(
            rows,
            columns=("method", "invariant", "context", "spurious", "noise"),
            title="Head weight attribution by causal feature role",
        )
    )
    erm_spurious = next(r for r in rows if r["method"] == "ERM")["spurious"]
    light_spurious = next(
        r for r in rows if r["method"] == "LightMIRM"
    )["spurious"]
    print(
        f"\nLightMIRM puts {light_spurious:.1%} of its weight on spurious "
        f"features vs {erm_spurious:.1%} for ERM"
    )

    # --- 2. drift report ------------------------------------------------
    report = drift_report(split.train, split.test)
    drift_rows = [
        {"feature": f.name, "PSI": f.psi, "reading": f.reading}
        for f in report.worst(8)
    ]
    print()
    print(
        format_table(
            drift_rows,
            columns=("feature", "PSI", "reading"),
            title="Most-drifted features, 2016-2019 vs 2020 (PSI)",
        )
    )
    print(
        f"\ndefault rate {report.baseline_default_rate:.2%} -> "
        f"{report.monitoring_default_rate:.2%}; "
        f"{len(report.drifted())} features above the PSI 0.1 threshold"
    )

    # --- 3. concept drift: P(y|x) changes the marginals cannot see ------
    concept = concept_drift_report(split.train, split.test)
    concept_rows = [
        {
            "feature": d.name,
            "corr 2016-19": d.baseline_correlation,
            "corr 2020": d.monitoring_correlation,
            "shift": d.shift,
        }
        for d in concept[:8]
    ]
    print()
    print(
        format_table(
            concept_rows,
            columns=("feature", "corr 2016-19", "corr 2020", "shift"),
            title="Concept drift: feature-label correlation shifts",
        )
    )
    print(
        "\nthe regional signals lose predictive strength in 2020 while the "
        "invariant credit features hold — the drift ERM falls for"
    )


if __name__ == "__main__":
    main()
