"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that legacy tooling (and older pip versions that fall back to
``setup.py develop`` for editable installs) keeps working.
"""

from setuptools import setup

setup()
