"""Training infrastructure shared by all methods."""

from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
    TrainResult,
    stack_environments,
)
from repro.train.registry import available_trainers, make_trainer

__all__ = [
    "BaseTrainConfig",
    "EpochCallback",
    "Trainer",
    "TrainingHistory",
    "TrainResult",
    "stack_environments",
    "available_trainers",
    "make_trainer",
]
