"""Training infrastructure shared by all methods."""

from repro.train.base import (
    BaseTrainConfig,
    EpochCallback,
    Trainer,
    TrainingHistory,
    TrainResult,
    stack_environments,
)
from repro.train.registry import (
    TrainerInfo,
    available_trainers,
    make_trainer,
    penalty_parameter,
    resolve_trainer_name,
    trainer_names,
)

__all__ = [
    "BaseTrainConfig",
    "EpochCallback",
    "Trainer",
    "TrainerInfo",
    "TrainingHistory",
    "TrainResult",
    "stack_environments",
    "available_trainers",
    "make_trainer",
    "penalty_parameter",
    "resolve_trainer_name",
    "trainer_names",
]
