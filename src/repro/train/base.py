"""Trainer abstraction shared by every learning algorithm in the repo.

All methods in the paper's comparison (ERM, fine-tuning, up-sampling,
GroupDRO, V-REx, meta-IRM, LightMIRM) train the same LR head over the same
per-environment data; they differ only in how the parameter update is
computed.  The :class:`Trainer` ABC fixes the shared protocol: consume a
list of environments, run ``n_epochs`` full-batch outer iterations, record a
:class:`TrainingHistory`, and return a :class:`TrainResult`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing import StepTimer

__all__ = [
    "BaseTrainConfig",
    "TrainingHistory",
    "TrainResult",
    "Trainer",
    "EpochCallback",
    "stack_environments",
]

#: Called after every epoch with (epoch_index, theta); the return value, if
#: not None, is stored in ``history.tracked`` — the Figs 6/8 curve hook.
EpochCallback = Callable[[int, np.ndarray], float | None]


@dataclass(frozen=True)
class BaseTrainConfig:
    """Hyper-parameters common to every trainer.

    Attributes:
        n_epochs: Number of outer iterations (full passes).
        learning_rate: Step size of the (outer) gradient update.
        l2: L2 regularisation on the LR parameters.
        seed: RNG seed (parameter init and any sampling).
        init_scale: Std of the random normal parameter initialisation.
        batch_size: When set, each epoch draws a fresh random batch of this
            many rows per environment instead of using the full environment
            (the paper trains "in a mini-batch manner", footnote 6).
            ``None`` keeps full-batch training.
        optimizer: Outer-loop update rule: "sgd" (the paper's plain step,
            default), "momentum" or "adam".
    """

    n_epochs: int = 150
    learning_rate: float = 2.0
    l2: float = 1e-3
    seed: int = 0
    init_scale: float = 0.01
    batch_size: int | None = None
    optimizer: str = "sgd"

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1 when set")
        if self.optimizer not in ("sgd", "momentum", "adam"):
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                "choose sgd, momentum or adam"
            )


@dataclass
class TrainingHistory:
    """Per-epoch records captured during training."""

    objective: list[float] = field(default_factory=list)
    env_losses: list[dict[str, float]] = field(default_factory=list)
    tracked: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.objective)

    def final_objective(self) -> float:
        if not self.objective:
            raise RuntimeError("no epochs recorded")
        return self.objective[-1]


@dataclass(frozen=True)
class TrainResult:
    """Outcome of one training run.

    This is the *unified result surface*: every trainer — including the
    per-environment fine-tuning baseline — returns an instance of this
    class (or a subclass) and downstream code scores through the methods
    below without type inspection.  Subclasses that carry per-environment
    parameters override :attr:`is_per_environment` and
    :meth:`theta_for_environment`; the grouped scoring path then routes
    each row through its environment's parameters automatically.
    """

    trainer_name: str
    theta: np.ndarray
    model: LogisticModel
    history: TrainingHistory
    timer: StepTimer

    @property
    def is_per_environment(self) -> bool:
        """Whether scoring depends on the row's environment (default no)."""
        return False

    def theta_for_environment(self, name: str) -> np.ndarray:
        """Parameters used to score rows from a named environment."""
        del name
        return self.theta

    def predict_proba(self, features) -> np.ndarray:
        """Score new rows with the trained parameters."""
        return self.model.predict_proba(self.theta, features)

    def predict_proba_env(self, name: str, features) -> np.ndarray:
        """Score rows known to come from one environment."""
        return self.model.predict_proba(self.theta_for_environment(name),
                                        features)

    def predict_proba_grouped(self, features, groups: np.ndarray) -> np.ndarray:
        """Score rows grouped by environment, in input order.

        For plain results this is a single vectorized call; for
        per-environment results each group is scored with its own
        parameters.  ``groups`` must have one entry per feature row.

        Args:
            features: Dense or CSR design matrix, one row per sample.
            groups: Environment name per row (e.g. province labels).

        Returns:
            Probability per row, aligned with the input order.
        """
        if not self.is_per_environment:
            return self.predict_proba(features)
        groups = np.asarray(groups)
        if groups.shape[0] != features.shape[0]:
            raise ValueError(
                f"{groups.shape[0]} group labels for {features.shape[0]} rows"
            )
        scores = np.empty(features.shape[0])
        for name in np.unique(groups):
            mask = groups == name
            rows = features[np.flatnonzero(mask)]
            scores[mask] = self.predict_proba_env(str(name), rows)
        return scores


class Trainer(abc.ABC):
    """Base class: environment-aware trainer of the LR head."""

    #: Registry/display name; subclasses override.
    name: str = "base"

    def __init__(self, config: BaseTrainConfig):
        self.config = config
        self._tracer: Tracer = NULL_TRACER

    def fit(
        self,
        environments: Sequence[EnvironmentData],
        callback: EpochCallback | None = None,
        timer: StepTimer | None = None,
        tracer: Tracer | None = None,
    ) -> TrainResult:
        """Train on the given environments.

        Args:
            environments: Non-empty list of per-province data slices; all
                must share the feature dimension.
            callback: Optional per-epoch hook (e.g. test-KS tracking).
            timer: Optional step timer; when omitted, one is enabled only
                if a live tracer is attached (so tracing alone yields the
                Table III step spans).
            tracer: Optional run tracer; the whole fit becomes a ``fit``
                span, every epoch an ``epoch`` event, and the timer's
                steps ``step:<name>`` spans.  Disabled by default.

        Returns:
            A :class:`TrainResult` with final parameters and history.
        """
        environments = list(environments)
        if not environments:
            raise ValueError("need at least one environment")
        dims = {env.features.shape[1] for env in environments}
        if len(dims) != 1:
            raise ValueError(f"environments disagree on feature dim: {dims}")
        for env in environments:
            if env.n_samples == 0:
                raise ValueError(f"environment {env.name!r} is empty")
        n_features = dims.pop()
        model = LogisticModel(n_features, l2=self.config.l2)
        theta = model.init_params(seed=self.config.seed,
                                  scale=self.config.init_scale)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        timer = timer or StepTimer(enabled=self._tracer.enabled)
        self._tracer.attach_timer(timer)
        history = TrainingHistory()
        # Dedicated stream for mini-batch draws, decoupled from any
        # algorithm-internal sampling so batch_size=None reproduces the
        # full-batch trajectories exactly.
        self._batch_rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 0x6B617463])
        )
        from repro.train.optimizers import make_optimizer

        self._optimizer = make_optimizer(
            self.config.optimizer, self.config.learning_rate
        )

        with self._tracer.span(
            "fit",
            trainer=self.name,
            n_environments=len(environments),
            n_epochs=self.config.n_epochs,
            seed=self.config.seed,
        ):
            theta = self._run(
                environments, model, theta, history, callback, timer
            )
        return TrainResult(
            trainer_name=self.name,
            theta=theta,
            model=model,
            history=history,
            timer=timer,
        )

    @abc.abstractmethod
    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        """Algorithm-specific training loop; returns final parameters."""

    def _epoch_environments(
        self, environments: list[EnvironmentData]
    ) -> list[EnvironmentData]:
        """Per-epoch environment views: mini-batches when configured.

        With ``batch_size`` unset this returns the input list unchanged
        (zero overhead); otherwise each environment contributes a fresh
        uniform sample of at most ``batch_size`` rows.
        """
        batch_size = self.config.batch_size
        if batch_size is None:
            return environments
        views = []
        for env in environments:
            if env.n_samples <= batch_size:
                views.append(env)
                continue
            rows = self._batch_rng.choice(
                env.n_samples, size=batch_size, replace=False
            )
            views.append(
                EnvironmentData(env.name, env.features[rows], env.labels[rows])
            )
        return views

    def _record(
        self,
        history: TrainingHistory,
        objective: float,
        env_losses: dict[str, float],
        epoch: int,
        theta: np.ndarray,
        callback: EpochCallback | None,
        **extra,
    ) -> None:
        """Append one epoch's records, fire the callback, trace the epoch.

        With a live tracer, one ``epoch`` event is emitted carrying the
        objective, per-environment losses and any algorithm-specific
        ``extra`` fields (IRM penalty, gradient norm, MRQ state, sampled
        environments, ...).  Trainers should compute expensive extras only
        when ``self._tracer.enabled``.
        """
        history.objective.append(objective)
        history.env_losses.append(env_losses)
        tracked = None
        if callback is not None:
            tracked = callback(epoch, theta)
            if tracked is not None:
                history.tracked.append(tracked)
        if self._tracer.enabled:
            fields: dict = {
                "trainer": self.name,
                "epoch": epoch,
                "objective": float(objective),
                "env_losses": {k: float(v) for k, v in env_losses.items()},
            }
            if tracked is not None:
                fields["tracked"] = float(tracked)
            fields.update(extra)
            self._tracer.event("epoch", **fields)


def stack_environments(
    environments: Sequence[EnvironmentData],
) -> tuple[np.ndarray | sparse.csr_matrix, np.ndarray]:
    """Concatenate environments into one pooled (features, labels) pair."""
    feature_blocks = [env.features for env in environments]
    labels = np.concatenate([env.labels for env in environments])
    if any(sparse.issparse(block) for block in feature_blocks):
        return sparse.vstack(feature_blocks, format="csr"), labels
    return np.vstack(feature_blocks), labels
