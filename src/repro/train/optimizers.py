"""First-order optimizers for the outer training loop.

The paper's algorithms are written with plain gradient steps
(``θ ← θ − β·g``), which stays the default so the reproduced trajectories
match Algorithm 1/2 exactly.  Momentum and Adam are provided for users who
deploy the library on their own data, where adaptive steps usually converge
in far fewer epochs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "make_optimizer"]


class Optimizer(abc.ABC):
    """Stateful parameter updater: ``theta_new = step(theta, grad)``."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    @abc.abstractmethod
    def step(self, theta: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated parameters (does not mutate the inputs)."""


class SGD(Optimizer):
    """Plain gradient descent — the paper's update rule."""

    def step(self, theta: np.ndarray, grad: np.ndarray) -> np.ndarray:
        return theta - self.learning_rate * grad


class Momentum(Optimizer):
    """Heavy-ball momentum: ``v ← μ·v + g``, ``θ ← θ − β·v``."""

    def __init__(self, learning_rate: float, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def step(self, theta: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._velocity is None:
            self._velocity = np.zeros_like(theta)
        self._velocity = self.momentum * self._velocity + grad
        return theta - self.learning_rate * self._velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, theta: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None:
            self._m = np.zeros_like(theta)
            self._v = np.zeros_like(theta)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return theta - self.learning_rate * m_hat / (np.sqrt(v_hat)
                                                     + self.epsilon)


@dataclass(frozen=True)
class _Spec:
    factory: type[Optimizer]
    description: str


_OPTIMIZERS: dict[str, _Spec] = {
    "sgd": _Spec(SGD, "plain gradient descent (the paper's update)"),
    "momentum": _Spec(Momentum, "heavy-ball momentum"),
    "adam": _Spec(Adam, "Adam with bias correction"),
}


def make_optimizer(name: str, learning_rate: float, **kwargs) -> Optimizer:
    """Instantiate an optimizer by name.

    Args:
        name: One of ``"sgd"``, ``"momentum"``, ``"adam"``.
        learning_rate: Step size.
        **kwargs: Extra optimizer-specific options.

    Returns:
        A fresh optimizer instance (state is not shared between calls).
    """
    if name not in _OPTIMIZERS:
        raise KeyError(
            f"unknown optimizer {name!r}; known: {sorted(_OPTIMIZERS)}"
        )
    return _OPTIMIZERS[name].factory(learning_rate, **kwargs)
