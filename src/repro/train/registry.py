"""Name -> trainer factory registry used by the experiment harness.

Lookup is case-insensitive and alias-tolerant: ``"lightmirm"``,
``"meta-irm"``, ``"group_dro"`` and friends all resolve to their canonical
Table I names, and unknown names fail with a did-you-mean suggestion.
:func:`trainer_names` exposes per-trainer metadata (canonical name,
aliases, penalty field, config class) for the CLI ``list`` command.

Imports of the concrete trainers happen inside the factory functions: the
trainers themselves import :mod:`repro.train.base`, so importing them at
module scope would make ``repro.train`` circular.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

from repro.train.base import Trainer

__all__ = [
    "make_trainer",
    "available_trainers",
    "penalty_parameter",
    "resolve_trainer_name",
    "trainer_names",
    "TrainerInfo",
    "TrainerSpec",
]


@dataclass(frozen=True)
class TrainerInfo:
    """Registry metadata of one trainer.

    Attributes:
        name: Canonical Table I name (what :func:`available_trainers`
            lists and ``Trainer.name`` reports).
        aliases: Extra accepted spellings (already-normalised forms of
            the canonical name need not be listed).
        penalty_parameter: Config field weighting the trainer's invariance
            penalty, or ``None`` for pure risk minimisers.
        config_class: Name of the trainer's config dataclass.
    """

    name: str
    aliases: tuple[str, ...]
    penalty_parameter: str | None
    config_class: str


_TRAINERS = (
    TrainerInfo("ERM", (), None, "BaseTrainConfig"),
    TrainerInfo(
        "ERM + fine-tuning",
        ("fine-tuning", "finetune", "erm-finetune"),
        None,
        "FineTuneConfig",
    ),
    TrainerInfo("Up Sampling", ("upsample",), None, "UpSamplingConfig"),
    TrainerInfo("Group DRO", ("dro",), None, "GroupDROConfig"),
    TrainerInfo("V-REx", ("rex",), "variance_weight", "VRExConfig"),
    TrainerInfo("IRMv1", ("irm",), "penalty_weight", "IRMv1Config"),
    TrainerInfo("meta-IRM", (), "lambda_penalty", "MetaIRMConfig"),
    TrainerInfo("LightMIRM", ("light-mirm",), "lambda_penalty",
                "LightMIRMConfig"),
)

_BY_NAME = {info.name: info for info in _TRAINERS}


def _normalize(name: str) -> str:
    """Fold case and separators so alias matching is spelling-tolerant."""
    return re.sub(r"[\s\-_+]", "", name.lower())


_LOOKUP: dict[str, str] = {}
for _info in _TRAINERS:
    for _spelling in (_info.name, *_info.aliases):
        _LOOKUP[_normalize(_spelling)] = _info.name

#: Matches the sampled meta-IRM(S) syntax after normalisation.
_SAMPLED_RE = re.compile(r"^metairm\((-?\d+)\)$")


def trainer_names() -> list[TrainerInfo]:
    """Per-trainer registry metadata, in Table I order."""
    return list(_TRAINERS)


def available_trainers() -> list[str]:
    """Canonical names accepted by :func:`make_trainer`, in Table I order."""
    return [info.name for info in _TRAINERS]


def resolve_trainer_name(name: str) -> str:
    """Canonical trainer name for any accepted (case/alias) spelling.

    Args:
        name: A canonical name, an alias, or ``"meta-IRM(S)"`` in any
            casing/separator style.

    Returns:
        The canonical name (the sampled syntax resolves to
        ``"meta-IRM(S)"`` with its integer preserved).

    Raises:
        KeyError: For unknown names, with a did-you-mean suggestion when
            one is close enough.
    """
    normalized = _normalize(name)
    if normalized in _LOOKUP:
        return _LOOKUP[normalized]
    sampled = _SAMPLED_RE.match(normalized)
    if sampled:
        return f"meta-IRM({sampled.group(1)})"
    candidates = list(_LOOKUP) + [info.name for info in _TRAINERS]
    close = difflib.get_close_matches(normalized, candidates, n=1)
    hint = ""
    if close:
        canonical = _LOOKUP.get(close[0], close[0])
        hint = f"; did you mean {canonical!r}?"
    raise KeyError(
        f"unknown trainer {name!r}{hint} (known: {available_trainers()})"
    )


def penalty_parameter(name: str) -> str | None:
    """Config field holding a trainer's invariance-penalty weight, if any.

    The verification scorecard sweeps this field to test that larger
    penalties shrink the spurious weight mass (penalty monotonicity).

    Args:
        name: Any spelling :func:`resolve_trainer_name` accepts.

    Returns:
        The dataclass field name, or ``None`` for penalty-free trainers.

    Raises:
        KeyError: For unknown trainer names.
    """
    canonical = resolve_trainer_name(name)
    if canonical.startswith("meta-IRM("):
        canonical = "meta-IRM"
    return _BY_NAME[canonical].penalty_parameter


@dataclass(frozen=True)
class TrainerSpec:
    """Declarative, picklable recipe for building a seeded trainer.

    Experiment factories used to be closures over :func:`make_trainer`,
    which cannot cross a process boundary.  A spec captures the same
    information as plain data — any name :func:`resolve_trainer_name`
    accepts plus config overrides — so the parallel execution engine can
    ship it to workers and rebuild the identical trainer there.

    Attributes:
        name: Trainer name or alias (``"meta-IRM(5)"`` syntax included).
        overrides: Extra config fields forwarded to the trainer's config
            dataclass (everything except ``seed``).
    """

    name: str
    overrides: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **overrides) -> "TrainerSpec":
        """Spec from keyword overrides (sorted for a canonical form)."""
        return cls(name=name, overrides=tuple(sorted(overrides.items())))

    def build(self, seed: int) -> Trainer:
        """Instantiate the trainer for one training seed."""
        return make_trainer(self.name, seed=seed, **dict(self.overrides))

    def __call__(self, seed: int) -> Trainer:
        # Specs are drop-in replacements for ``Callable[[int], Trainer]``
        # factories, so serial callers need not distinguish the two.
        return self.build(seed)


def make_trainer(name: str, **config_overrides) -> Trainer:
    """Instantiate a trainer by its paper name (or any accepted alias).

    Args:
        name: Any spelling :func:`resolve_trainer_name` accepts, including
            ``"meta-IRM(S)"`` with an integer S for the sampled variants
            of Table II.
        **config_overrides: Forwarded to the trainer's config dataclass.

    Returns:
        A ready-to-fit :class:`~repro.train.base.Trainer`.

    Raises:
        KeyError: For unknown names (with a did-you-mean suggestion).
    """
    from repro.baselines.erm import ERMTrainer
    from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
    from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
    from repro.baselines.irmv1 import IRMv1Config, IRMv1Trainer
    from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer
    from repro.baselines.vrex import VRExConfig, VRExTrainer
    from repro.core.config import LightMIRMConfig, MetaIRMConfig
    from repro.core.lightmirm import LightMIRMTrainer
    from repro.core.meta_irm import MetaIRMTrainer
    from repro.train.base import BaseTrainConfig

    if name.startswith("meta-IRM(") and name.endswith(")"):
        # Legacy exact syntax kept on the fast path so the ValueError for a
        # malformed count (e.g. "meta-IRM(five)") is preserved verbatim.
        n_sampled = int(name[len("meta-IRM("):-1])
        return MetaIRMTrainer(
            MetaIRMConfig(n_sampled_envs=n_sampled, **config_overrides)
        )
    canonical = resolve_trainer_name(name)
    if canonical.startswith("meta-IRM(") and canonical.endswith(")"):
        n_sampled = int(canonical[len("meta-IRM("):-1])
        return MetaIRMTrainer(
            MetaIRMConfig(n_sampled_envs=n_sampled, **config_overrides)
        )
    factories = {
        "ERM": lambda: ERMTrainer(BaseTrainConfig(**config_overrides)),
        "ERM + fine-tuning": lambda: FineTuneTrainer(
            FineTuneConfig(**config_overrides)
        ),
        "Up Sampling": lambda: UpSamplingTrainer(
            UpSamplingConfig(**config_overrides)
        ),
        "Group DRO": lambda: GroupDROTrainer(GroupDROConfig(**config_overrides)),
        "V-REx": lambda: VRExTrainer(VRExConfig(**config_overrides)),
        "IRMv1": lambda: IRMv1Trainer(IRMv1Config(**config_overrides)),
        "meta-IRM": lambda: MetaIRMTrainer(MetaIRMConfig(**config_overrides)),
        "LightMIRM": lambda: LightMIRMTrainer(
            LightMIRMConfig(**config_overrides)
        ),
    }
    return factories[canonical]()
