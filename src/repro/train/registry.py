"""Name -> trainer factory registry used by the experiment harness.

Imports of the concrete trainers happen inside the factory functions: the
trainers themselves import :mod:`repro.train.base`, so importing them at
module scope would make ``repro.train`` circular.
"""

from __future__ import annotations

from repro.train.base import Trainer

__all__ = ["make_trainer", "available_trainers", "penalty_parameter"]

_TRAINER_NAMES = (
    "ERM",
    "ERM + fine-tuning",
    "Up Sampling",
    "Group DRO",
    "V-REx",
    "IRMv1",
    "meta-IRM",
    "LightMIRM",
)

#: Trainer -> name of the config field weighting its invariance penalty.
#: Trainers absent from this map have no such knob (pure risk minimisers).
_PENALTY_PARAMS = {
    "IRMv1": "penalty_weight",
    "V-REx": "variance_weight",
    "meta-IRM": "lambda_penalty",
    "LightMIRM": "lambda_penalty",
}


def available_trainers() -> list[str]:
    """Names accepted by :func:`make_trainer`, in Table I order."""
    return list(_TRAINER_NAMES)


def penalty_parameter(name: str) -> str | None:
    """Config field holding a trainer's invariance-penalty weight, if any.

    The verification scorecard sweeps this field to test that larger
    penalties shrink the spurious weight mass (penalty monotonicity).

    Args:
        name: A trainer name from :func:`available_trainers`.

    Returns:
        The dataclass field name, or ``None`` for penalty-free trainers.

    Raises:
        KeyError: For unknown trainer names.
    """
    if name not in _TRAINER_NAMES:
        raise KeyError(
            f"unknown trainer {name!r}; known: {available_trainers()}"
        )
    return _PENALTY_PARAMS.get(name)


def make_trainer(name: str, **config_overrides) -> Trainer:
    """Instantiate a trainer by its paper name.

    Args:
        name: One of :func:`available_trainers`, or ``"meta-IRM(S)"`` with an
            integer S for the sampled variants of Table II.
        **config_overrides: Forwarded to the trainer's config dataclass.

    Returns:
        A ready-to-fit :class:`~repro.train.base.Trainer`.

    Raises:
        KeyError: For unknown names.
    """
    from repro.baselines.erm import ERMTrainer
    from repro.baselines.finetune import FineTuneConfig, FineTuneTrainer
    from repro.baselines.group_dro import GroupDROConfig, GroupDROTrainer
    from repro.baselines.irmv1 import IRMv1Config, IRMv1Trainer
    from repro.baselines.upsampling import UpSamplingConfig, UpSamplingTrainer
    from repro.baselines.vrex import VRExConfig, VRExTrainer
    from repro.core.config import LightMIRMConfig, MetaIRMConfig
    from repro.core.lightmirm import LightMIRMTrainer
    from repro.core.meta_irm import MetaIRMTrainer
    from repro.train.base import BaseTrainConfig

    if name.startswith("meta-IRM(") and name.endswith(")"):
        n_sampled = int(name[len("meta-IRM("):-1])
        return MetaIRMTrainer(
            MetaIRMConfig(n_sampled_envs=n_sampled, **config_overrides)
        )
    factories = {
        "ERM": lambda: ERMTrainer(BaseTrainConfig(**config_overrides)),
        "ERM + fine-tuning": lambda: FineTuneTrainer(
            FineTuneConfig(**config_overrides)
        ),
        "Up Sampling": lambda: UpSamplingTrainer(
            UpSamplingConfig(**config_overrides)
        ),
        "Group DRO": lambda: GroupDROTrainer(GroupDROConfig(**config_overrides)),
        "V-REx": lambda: VRExTrainer(VRExConfig(**config_overrides)),
        "IRMv1": lambda: IRMv1Trainer(IRMv1Config(**config_overrides)),
        "meta-IRM": lambda: MetaIRMTrainer(MetaIRMConfig(**config_overrides)),
        "LightMIRM": lambda: LightMIRMTrainer(
            LightMIRMConfig(**config_overrides)
        ),
    }
    if name not in factories:
        raise KeyError(
            f"unknown trainer {name!r}; known: {available_trainers()}"
        )
    return factories[name]()
