"""Gradient-boosted decision trees with logistic loss (LightGBM substitute).

Implements the boosting loop around :class:`~repro.gbdt.tree.DecisionTree`:
second-order (Newton) boosting on the binary cross-entropy objective, with
shrinkage, row/feature subsampling, and validation-based early stopping.
This is the feature-extraction GBDT of the paper's "GBDT+LR" architecture.

The hot path is allocation-disciplined: one :class:`HistogramBuilder` (and
its fused-index matrix) is shared by every boosting round, feature bagging
threads the column subset into the kernels instead of materialising
``binned[:, cols]`` per round, and the ``*_binned`` prediction variants let
callers bin a feature matrix once (:meth:`GBDTClassifier.bin_features`) and
reuse it across scores, leaf indices, and staged probabilities.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import nullcontext
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Iterator, Mapping

import numpy as np

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.histogram import HistogramBuilder
from repro.gbdt.tree import DecisionTree, TreeParams
from repro.numerics import binary_cross_entropy, sigmoid
from repro.obs.profile import active as _active_profiler

__all__ = ["GBDTParams", "GBDTClassifier"]


@dataclass(frozen=True)
class GBDTParams:
    """Boosting hyper-parameters.

    Attributes:
        n_trees: Maximum number of boosting rounds.
        learning_rate: Shrinkage applied to each tree's contribution.
        max_bins: Histogram resolution for feature binning.
        subsample: Row-sampling fraction per tree (1.0 disables bagging).
        colsample: Feature-sampling fraction per tree.
        early_stopping_rounds: Stop when validation logloss has not improved
            for this many rounds (0 disables early stopping).
        seed: RNG seed for subsampling.
        dtype: Training-time floating dtype for histograms, split gains,
            leaf values, and the raw-score accumulator.  ``"float64"``
            (the default) is bit-identical to the historical behaviour;
            ``"float32"`` halves the hot-path working set at paper scale
            at the cost of ~1e-3-level probability drift (see
            ``docs/performance.md``).  Gradient/hessian *accumulation*
            inside the histogram kernels always runs in float64.
        tree: Per-tree growth parameters.
    """

    n_trees: int = 50
    learning_rate: float = 0.1
    max_bins: int = 64
    subsample: float = 1.0
    colsample: float = 1.0
    early_stopping_rounds: int = 0
    seed: int = 0
    dtype: str = "float64"
    tree: TreeParams = field(default_factory=TreeParams)

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < self.colsample <= 1.0:
            raise ValueError("colsample must be in (0, 1]")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")

    # ----------------------------------------------- flat config surface

    @classmethod
    def flat_fields(cls) -> tuple[str, ...]:
        """Every overridable knob as one flat namespace.

        The booster's own fields (minus the nested ``tree``) plus the
        :class:`~repro.gbdt.tree.TreeParams` growth fields — the surface
        hyper-parameter search spaces validate against and
        :meth:`replace_flat` routes through.
        """
        own = tuple(f.name for f in dataclass_fields(cls) if f.name != "tree")
        tree = tuple(f.name for f in dataclass_fields(TreeParams))
        return own + tree

    def replace_flat(self, overrides: Mapping[str, object]) -> "GBDTParams":
        """A copy with flat overrides routed to their owning dataclass.

        ``max_depth``/``max_leaves``-style growth knobs land on the
        nested :class:`TreeParams`, everything else on the booster.

        Raises:
            ValueError: For names on neither dataclass.
        """
        tree_names = {f.name for f in dataclass_fields(TreeParams)}
        own_names = {
            f.name for f in dataclass_fields(type(self)) if f.name != "tree"
        }
        booster: dict[str, object] = {}
        tree: dict[str, object] = {}
        for name, value in overrides.items():
            if name in own_names:
                booster[name] = value
            elif name in tree_names:
                tree[name] = value
            else:
                raise ValueError(
                    f"unknown GBDT parameter {name!r}; "
                    f"valid: {sorted(own_names | tree_names)}"
                )
        params = replace(self, **booster) if booster else self
        if tree:
            params = replace(params, tree=replace(params.tree, **tree))
        return params

    def canonical(self) -> dict:
        """JSON-compatible canonical form: every field, tree nested,
        deterministic key order — the fingerprinting input."""
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclass_fields(type(self)) if f.name != "tree"
        }
        payload["tree"] = {
            f.name: getattr(self.tree, f.name)
            for f in dataclass_fields(TreeParams)
        }
        return payload

    def fingerprint(self) -> str:
        """Stable 16-hex content hash of the full configuration.

        Two :class:`GBDTParams` agree on the fingerprint iff they agree
        on every field (including nested tree growth params) — the
        extractor-encoding cache keys on this plus the dataset
        fingerprint and split seed.
        """
        encoded = json.dumps(self.canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


class GBDTClassifier:
    """Binary classifier trained by Newton gradient boosting.

    Usage::

        model = GBDTClassifier(GBDTParams(n_trees=100))
        model.fit(X_train, y_train, X_valid, y_valid)
        proba = model.predict_proba(X_test)
        leaves = model.predict_leaves(X_test)   # for the GBDT+LR encoder

    Callers that need several views of the same rows (scores *and* leaf
    indices, or staged probabilities) should bin once and use the
    ``*_binned`` variants::

        binned = model.bin_features(X_test)
        proba = model.predict_proba_binned(binned)
        leaves = model.predict_leaves_binned(binned)
    """

    def __init__(self, params: GBDTParams | None = None):
        self.params = params or GBDTParams()
        self.binner = QuantileBinner(max_bins=self.params.max_bins)
        self.trees_: list[DecisionTree] = []
        self.tree_feature_subsets_: list[np.ndarray] = []
        self.base_score_: float = 0.0
        self.train_losses_: list[float] = []
        self.valid_losses_: list[float] = []

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees_)

    @property
    def n_trees_fitted(self) -> int:
        return len(self.trees_)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        valid_features: np.ndarray | None = None,
        valid_labels: np.ndarray | None = None,
    ) -> "GBDTClassifier":
        """Fit the boosted ensemble.

        Args:
            features: Training matrix ``(n, d)``.
            labels: Binary labels ``(n,)``.
            valid_features: Optional validation matrix for early stopping.
            valid_labels: Labels for the validation matrix.

        Returns:
            self.
        """
        # ``asarray`` with a matching dtype is a no-copy view; only
        # non-float inputs are upcast.  The binner accepts float32 and
        # float64 without copying either.
        labels = np.asarray(labels, dtype=np.float64).ravel()
        features = np.asarray(features)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._check_labels(labels)

        binned = self.binner.fit_transform(features)

        valid_binned = None
        if valid_features is not None:
            if valid_labels is None:
                raise ValueError("valid_labels required with valid_features")
            valid_labels = np.asarray(valid_labels, dtype=np.float64).ravel()
            valid_binned = self.binner.transform(valid_features)
        return self._fit_core(binned, labels, valid_binned, valid_labels)

    def fit_binned(
        self,
        binned: np.ndarray,
        labels: np.ndarray,
        binner: QuantileBinner,
        valid_binned: np.ndarray | None = None,
        valid_labels: np.ndarray | None = None,
    ) -> "GBDTClassifier":
        """Fit from a pre-binned uint8 matrix (streamed / packed datasets).

        The paper-scale pipeline bins rows chunk-at-a-time into shared
        memory (:func:`repro.gbdt.pack_generated`) so the raw float64
        matrix never exists; this entry point trains directly on that
        layout.

        Args:
            binned: ``(n, d)`` uint8 bin indices, produced by ``binner``.
            labels: Binary labels ``(n,)``.
            binner: The fitted :class:`QuantileBinner` that produced
                ``binned`` — adopted so serving-time ``bin_features``
                keeps working.  Its ``max_bins`` must match the params.
            valid_binned: Optional pre-binned validation matrix.
            valid_labels: Labels for the validation matrix.

        Returns:
            self.
        """
        if not binner.is_fitted:
            raise ValueError("binner must be fitted")
        if binner.max_bins != self.params.max_bins:
            raise ValueError(
                "binner.max_bins does not match GBDTParams.max_bins"
            )
        binned = np.asarray(binned)
        if binned.dtype != np.uint8:
            raise ValueError("binned matrix must be uint8")
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if binned.shape[0] != labels.shape[0]:
            raise ValueError("binned and labels disagree on sample count")
        if binned.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._check_labels(labels)
        self.binner = binner

        if valid_binned is not None:
            if valid_labels is None:
                raise ValueError("valid_labels required with valid_binned")
            valid_labels = np.asarray(valid_labels, dtype=np.float64).ravel()
            valid_binned = np.asarray(valid_binned)
        return self._fit_core(binned, labels, valid_binned, valid_labels)

    @staticmethod
    def _check_labels(labels: np.ndarray) -> None:
        if not np.all(np.isin(np.unique(labels), (0.0, 1.0))):
            raise ValueError("labels must be binary 0/1")

    def _fit_core(
        self,
        binned: np.ndarray,
        labels: np.ndarray,
        valid_binned: np.ndarray | None,
        valid_labels: np.ndarray | None,
    ) -> "GBDTClassifier":
        params = self.params
        rng = np.random.default_rng(params.seed)
        n, d = binned.shape
        value_dtype = np.dtype(params.dtype)
        builder = HistogramBuilder(
            binned, params.max_bins, hist_dtype=value_dtype
        )
        # float64 path: ``astype(copy=False)`` is the identity, so the
        # loop below is bit-identical to the historical implementation.
        labels_t = labels.astype(value_dtype, copy=False)

        use_valid = valid_binned is not None

        # Base score: log-odds of the prior default rate.
        prior = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(prior / (1.0 - prior)))
        raw = np.full(n, self.base_score_, dtype=value_dtype)
        if use_valid:
            valid_raw = np.full(
                valid_labels.shape[0], self.base_score_, dtype=value_dtype
            )

        self.trees_ = []
        self.tree_feature_subsets_ = []
        self.train_losses_ = []
        self.valid_losses_ = []
        best_valid = np.inf
        rounds_since_best = 0

        for _ in range(params.n_trees):
            profiler = _active_profiler()
            round_section = (
                profiler.section("boosting_round", rows=n)
                if profiler is not None else nullcontext()
            )
            with round_section:
                prob = sigmoid(raw)
                gradients = prob - labels_t
                hessians = np.maximum(prob * (1.0 - prob), 1e-12).astype(
                    value_dtype, copy=False
                )

                row_subset = None
                if params.subsample < 1.0:
                    size = max(1, int(round(params.subsample * n)))
                    row_subset = rng.choice(n, size=size, replace=False)
                    # Sorted rows make the histogram gathers sequential in
                    # memory; set-based statistics are order-invariant, so
                    # fitted trees are unchanged.
                    row_subset.sort()
                col_subset = None
                if params.colsample < 1.0:
                    size = max(1, int(round(params.colsample * d)))
                    col_subset = np.sort(
                        rng.choice(d, size=size, replace=False)
                    )

                tree = DecisionTree(params.tree)
                tree.fit(
                    binned,
                    gradients,
                    hessians,
                    max_bins=params.max_bins,
                    sample_indices=row_subset,
                    column_subset=col_subset,
                    builder=builder,
                    value_dtype=value_dtype,
                )
                self.trees_.append(tree)
                self.tree_feature_subsets_.append(
                    col_subset if col_subset is not None else np.arange(d)
                )

                raw += params.learning_rate * tree.predict_value(
                    binned, columns=col_subset
                )
                self.train_losses_.append(
                    binary_cross_entropy(labels, sigmoid(raw))
                )

            if use_valid:
                valid_raw += params.learning_rate * tree.predict_value(
                    valid_binned, columns=col_subset
                )
                valid_loss = binary_cross_entropy(
                    valid_labels, sigmoid(valid_raw)
                )
                self.valid_losses_.append(valid_loss)
                if valid_loss < best_valid - 1e-9:
                    best_valid = valid_loss
                    rounds_since_best = 0
                elif params.early_stopping_rounds:
                    rounds_since_best += 1
                    if rounds_since_best >= params.early_stopping_rounds:
                        break
        return self

    # ------------------------------------------------------- transform-once

    def bin_features(self, features: np.ndarray) -> np.ndarray:
        """Bin a raw feature matrix once, for reuse by ``*_binned`` calls."""
        self._check_fitted()
        return self.binner.transform(features)

    def decision_function_binned(self, binned: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds) over pre-binned rows."""
        self._check_fitted()
        raw = np.full(binned.shape[0], self.base_score_)
        for tree, cols in zip(self.trees_, self.tree_feature_subsets_):
            raw += self.params.learning_rate * tree.predict_value(
                binned, columns=cols
            )
        return raw

    def predict_proba_binned(self, binned: np.ndarray) -> np.ndarray:
        """Default probabilities over pre-binned rows."""
        return sigmoid(self.decision_function_binned(binned))

    def predict_leaves_binned(self, binned: np.ndarray) -> np.ndarray:
        """Leaf-index matrix ``(n, n_trees)`` over pre-binned rows.

        int32 — dense leaf indices are bounded by the per-tree leaf
        budget, and the narrow dtype halves the matrix the leaf encoder
        walks at paper scale.
        """
        self._check_fitted()
        leaves = np.empty((binned.shape[0], len(self.trees_)), dtype=np.int32)
        for t, (tree, cols) in enumerate(
            zip(self.trees_, self.tree_feature_subsets_)
        ):
            leaves[:, t] = tree.predict_leaf(binned, columns=cols)
        return leaves

    def staged_predict_proba_binned(
        self, binned: np.ndarray
    ) -> Iterator[np.ndarray]:
        """Yield probabilities after each boosting round (pre-binned rows)."""
        self._check_fitted()
        raw = np.full(binned.shape[0], self.base_score_)
        for tree, cols in zip(self.trees_, self.tree_feature_subsets_):
            raw = raw + self.params.learning_rate * tree.predict_value(
                binned, columns=cols
            )
            yield sigmoid(raw)

    # ------------------------------------------------------ raw-feature API

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds)."""
        return self.decision_function_binned(self.bin_features(features))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Predicted default probabilities."""
        return sigmoid(self.decision_function(features))

    def staged_predict_proba(self, features: np.ndarray):
        """Yield probabilities after each boosting round.

        Useful for convergence diagnostics and for choosing a truncation
        point post hoc; round ``k`` uses trees ``0..k`` inclusive.

        Yields:
            ``(n,)`` probability arrays, one per fitted tree.
        """
        yield from self.staged_predict_proba_binned(
            self.bin_features(features)
        )

    def predict_leaves(self, features: np.ndarray) -> np.ndarray:
        """Leaf index of every sample in every tree.

        Returns:
            ``(n, n_trees)`` int matrix; column ``t`` holds the dense leaf
            index of each sample in tree ``t`` — the categorical cross-
            feature the GBDT+LR encoder one-hot expands.
        """
        return self.predict_leaves_binned(self.bin_features(features))

    def leaves_per_tree(self) -> list[int]:
        """Leaf count of each fitted tree (sizes of the one-hot blocks)."""
        self._check_fitted()
        return [tree.n_leaves for tree in self.trees_]

    def feature_importance(self) -> np.ndarray:
        """Gain-based importance summed over trees, in input-column order."""
        self._check_fitted()
        d = len(self.binner.bin_edges_)
        importance = np.zeros(d)
        for tree, cols in zip(self.trees_, self.tree_feature_subsets_):
            importance[cols] += tree.feature_importance(cols.size)
        return importance

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("GBDTClassifier is not fitted")
