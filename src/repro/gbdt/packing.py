"""Memory-bounded packing of a streamed platform into binned shared memory.

The paper-scale pipeline (1.4M × 210) cannot afford the one-shot layout —
``(n, d)`` float64 raw features (2.35 GB) *plus* a binned copy.  This
module keeps peak RSS roughly flat with row count by never holding raw
rows beyond one generator cell:

1. **Sample pass** — stream :meth:`LoanDataGenerator.generate_chunks`
   through a bounded row reservoir and fit the
   :class:`~repro.gbdt.binning.QuantileBinner` on the sample.
2. **Pack pass** — allocate one :class:`~repro.parallel.shared.SharedArrayPack`
   block (uint8 bins + labels + grouping codes, 1/8th the float64
   footprint) and bin each chunk directly into it at its canonical row
   positions.

The result is exactly the binned matrix the GBDT hot path consumes
(:meth:`GBDTClassifier.fit_binned`), already laid out in the zero-copy
shared-memory container the parallel engine ships to workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.data.generator import LoanDataGenerator
from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.parallel.shared import PackSpec, SharedArrayPack

__all__ = [
    "PackedBinnedDataset",
    "pack_generated",
    "fit_extractor_encode",
    "leaf_encode_environments",
]

#: Domain-separation tag of the extractor early-stopping holdout ("xenc").
_ENCODE_SPLIT_TAG = 0x78656E63


def leaf_encode_environments(
    model: GBDTClassifier, environments: list[EnvironmentData]
) -> list[EnvironmentData]:
    """Leaf-encode raw per-province environments with a fitted GBDT.

    Each environment's features are binned once and one-hot leaf-encoded
    into the CSR design matrix the LR heads train on — the per-extractor
    half of a joint GBDT×head search.  The CSR arrays come out exactly as
    :class:`~repro.gbdt.leaf_encoder.LeafIndexEncoder` emits them
    (float32 data, int32 indices where they fit), so packing them into a
    :class:`~repro.parallel.shared.SharedArrayPack` and attaching from a
    worker round-trips byte-identically.
    """
    from repro.gbdt.leaf_encoder import LeafIndexEncoder

    encoder = LeafIndexEncoder(model)
    return [
        EnvironmentData(
            env.name,
            encoder.transform_binned(model.bin_features(env.features)),
            env.labels,
        )
        for env in environments
    ]


def fit_extractor_encode(
    params: GBDTParams,
    environments: list[EnvironmentData],
    *,
    holdout_fraction: float = 0.2,
    holdout_seed: int = 0,
) -> tuple[GBDTClassifier, list[EnvironmentData], float]:
    """Fit a GBDT extractor on pooled rows and leaf-encode every environment.

    The single encode path of the joint search: the cached scheduler runs
    it once per distinct extractor configuration, the uncached baseline
    once per (trial, rung) — bit-identical outputs either way, because
    everything below is a pure function of ``(params, environments,
    holdout_fraction, holdout_seed)``.

    Args:
        params: Full extractor configuration (already flat-override
            routed; see :meth:`GBDTParams.replace_flat`).
        environments: Raw per-province environments, in the order they
            should come back encoded.
        holdout_fraction: Pooled-row share held out for early stopping
            (only drawn when ``params.early_stopping_rounds > 0``).
        holdout_seed: Entropy of the holdout shuffle, fed through a
            tagged ``SeedSequence`` stream.

    Returns:
        ``(fitted model, encoded environments, encode_seconds)`` where
        ``encode_seconds`` covers the fit plus the leaf encoding.
    """
    started = time.perf_counter()
    features = np.vstack([np.asarray(env.features) for env in environments])
    labels = np.concatenate([env.labels for env in environments])
    model = GBDTClassifier(params)
    n = features.shape[0]
    if params.early_stopping_rounds and 0.0 < holdout_fraction < 1.0 \
            and n >= 50:
        rng = np.random.default_rng(
            np.random.SeedSequence([int(holdout_seed), _ENCODE_SPLIT_TAG])
        )
        order = rng.permutation(n)
        n_valid = max(1, int(round(holdout_fraction * n)))
        valid_rows, fit_rows = order[:n_valid], order[n_valid:]
        model.fit(features[fit_rows], labels[fit_rows],
                  valid_features=features[valid_rows],
                  valid_labels=labels[valid_rows])
    else:
        model.fit(features, labels)
    encoded = leaf_encode_environments(model, environments)
    return model, encoded, time.perf_counter() - started


@dataclass
class PackedBinnedDataset:
    """Binned dataset resident in one shared-memory block.

    Attributes:
        pack: The backing :class:`SharedArrayPack` (owner side).
        binner: The fitted binner (needed to bin serving-time raw rows).
        province_names: Code → name table for ``province_codes``.
    """

    pack: SharedArrayPack
    binner: QuantileBinner
    province_names: tuple[str, ...]

    def __post_init__(self) -> None:
        self._views = self.pack.arrays()

    # --------------------------------------------------------------- views

    @property
    def binned(self) -> np.ndarray:
        """Read-only ``(n, d)`` uint8 bin-index matrix."""
        return self._views["binned"]

    @property
    def labels(self) -> np.ndarray:
        """Read-only ``(n,)`` float64 labels."""
        return self._views["labels"]

    @property
    def province_codes(self) -> np.ndarray:
        """Read-only ``(n,)`` int16 codes into :attr:`province_names`."""
        return self._views["province_codes"]

    @property
    def years(self) -> np.ndarray:
        return self._views["years"]

    @property
    def halves(self) -> np.ndarray:
        return self._views["halves"]

    @property
    def n_samples(self) -> int:
        return self.binned.shape[0]

    @property
    def n_features(self) -> int:
        return self.binned.shape[1]

    @property
    def nbytes(self) -> int:
        """Size of the shared block (the resident cost of the dataset)."""
        return self.pack.nbytes

    # ------------------------------------------------------------- helpers

    def rows_for_province(self, name: str) -> np.ndarray:
        """Row indices of one province (environment slicing)."""
        code = self.province_names.index(name)
        return np.flatnonzero(self.province_codes == code)

    @property
    def spec(self) -> PackSpec:
        """Picklable handle for worker-side attachment."""
        return self.pack.spec

    # ------------------------------------------------------------- cleanup

    def dispose(self) -> None:
        """Release the shared block (owner side)."""
        self.pack.dispose()

    def __enter__(self) -> "PackedBinnedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


def pack_generated(
    generator: LoanDataGenerator,
    chunk_rows: int | None = None,
    max_bins: int = 64,
    sample_rows: int = 200_000,
    binner_seed: int = 0,
) -> PackedBinnedDataset:
    """Stream-generate, bin and pack a platform without materialising it.

    Two deterministic passes over :meth:`generate_chunks` (the generator
    re-streams identically at fixed seed): the first feeds the binner's
    row reservoir, the second bins every chunk into the shared block at
    its canonical row positions — so ``packed.binned`` is bit-identical
    to ``binner.transform(generator.generate().features)`` without the
    one-shot float64 matrix ever existing.

    Args:
        generator: Configured :class:`LoanDataGenerator`.
        chunk_rows: Chunk size of both streaming passes.
        max_bins: Histogram resolution (uint8 layout caps it at 256).
        sample_rows: Binner reservoir capacity — the raw-row memory bound.
        binner_seed: Reservoir RNG seed.

    Returns:
        An owning :class:`PackedBinnedDataset`; callers dispose it.
    """
    cfg = generator.config
    n, d = cfg.n_samples, generator.schema.n_features

    binner = QuantileBinner(max_bins=max_bins).fit_streamed(
        (chunk.features for chunk in generator.generate_chunks(chunk_rows)),
        sample_rows=sample_rows,
        seed=binner_seed,
    )

    province_names = tuple(cfg.registry.names)
    pack = SharedArrayPack.allocate(
        {
            "binned": ((n, d), "u1"),
            "labels": ((n,), "f8"),
            "province_codes": ((n,), "i2"),
            "years": ((n,), "i2"),
            "halves": ((n,), "i1"),
        },
        meta={"province_names": province_names, "max_bins": max_bins},
    )
    views = pack.writable_arrays()
    code_of = {name: i for i, name in enumerate(province_names)}
    for chunk in generator.generate_chunks(chunk_rows):
        rows = chunk.row_indices
        binner.transform_into(chunk.features, views["binned"], rows=rows)
        views["labels"][rows] = chunk.labels
        views["province_codes"][rows] = code_of[chunk.province]
        views["years"][rows] = chunk.year
        views["halves"][rows] = chunk.half
    return PackedBinnedDataset(pack=pack, binner=binner,
                               province_names=province_names)
