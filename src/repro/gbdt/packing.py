"""Memory-bounded packing of a streamed platform into binned shared memory.

The paper-scale pipeline (1.4M × 210) cannot afford the one-shot layout —
``(n, d)`` float64 raw features (2.35 GB) *plus* a binned copy.  This
module keeps peak RSS roughly flat with row count by never holding raw
rows beyond one generator cell:

1. **Sample pass** — stream :meth:`LoanDataGenerator.generate_chunks`
   through a bounded row reservoir and fit the
   :class:`~repro.gbdt.binning.QuantileBinner` on the sample.
2. **Pack pass** — allocate one :class:`~repro.parallel.shared.SharedArrayPack`
   block (uint8 bins + labels + grouping codes, 1/8th the float64
   footprint) and bin each chunk directly into it at its canonical row
   positions.

The result is exactly the binned matrix the GBDT hot path consumes
(:meth:`GBDTClassifier.fit_binned`), already laid out in the zero-copy
shared-memory container the parallel engine ships to workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import LoanDataGenerator
from repro.gbdt.binning import QuantileBinner
from repro.parallel.shared import PackSpec, SharedArrayPack

__all__ = ["PackedBinnedDataset", "pack_generated"]


@dataclass
class PackedBinnedDataset:
    """Binned dataset resident in one shared-memory block.

    Attributes:
        pack: The backing :class:`SharedArrayPack` (owner side).
        binner: The fitted binner (needed to bin serving-time raw rows).
        province_names: Code → name table for ``province_codes``.
    """

    pack: SharedArrayPack
    binner: QuantileBinner
    province_names: tuple[str, ...]

    def __post_init__(self) -> None:
        self._views = self.pack.arrays()

    # --------------------------------------------------------------- views

    @property
    def binned(self) -> np.ndarray:
        """Read-only ``(n, d)`` uint8 bin-index matrix."""
        return self._views["binned"]

    @property
    def labels(self) -> np.ndarray:
        """Read-only ``(n,)`` float64 labels."""
        return self._views["labels"]

    @property
    def province_codes(self) -> np.ndarray:
        """Read-only ``(n,)`` int16 codes into :attr:`province_names`."""
        return self._views["province_codes"]

    @property
    def years(self) -> np.ndarray:
        return self._views["years"]

    @property
    def halves(self) -> np.ndarray:
        return self._views["halves"]

    @property
    def n_samples(self) -> int:
        return self.binned.shape[0]

    @property
    def n_features(self) -> int:
        return self.binned.shape[1]

    @property
    def nbytes(self) -> int:
        """Size of the shared block (the resident cost of the dataset)."""
        return self.pack.nbytes

    # ------------------------------------------------------------- helpers

    def rows_for_province(self, name: str) -> np.ndarray:
        """Row indices of one province (environment slicing)."""
        code = self.province_names.index(name)
        return np.flatnonzero(self.province_codes == code)

    @property
    def spec(self) -> PackSpec:
        """Picklable handle for worker-side attachment."""
        return self.pack.spec

    # ------------------------------------------------------------- cleanup

    def dispose(self) -> None:
        """Release the shared block (owner side)."""
        self.pack.dispose()

    def __enter__(self) -> "PackedBinnedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


def pack_generated(
    generator: LoanDataGenerator,
    chunk_rows: int | None = None,
    max_bins: int = 64,
    sample_rows: int = 200_000,
    binner_seed: int = 0,
) -> PackedBinnedDataset:
    """Stream-generate, bin and pack a platform without materialising it.

    Two deterministic passes over :meth:`generate_chunks` (the generator
    re-streams identically at fixed seed): the first feeds the binner's
    row reservoir, the second bins every chunk into the shared block at
    its canonical row positions — so ``packed.binned`` is bit-identical
    to ``binner.transform(generator.generate().features)`` without the
    one-shot float64 matrix ever existing.

    Args:
        generator: Configured :class:`LoanDataGenerator`.
        chunk_rows: Chunk size of both streaming passes.
        max_bins: Histogram resolution (uint8 layout caps it at 256).
        sample_rows: Binner reservoir capacity — the raw-row memory bound.
        binner_seed: Reservoir RNG seed.

    Returns:
        An owning :class:`PackedBinnedDataset`; callers dispose it.
    """
    cfg = generator.config
    n, d = cfg.n_samples, generator.schema.n_features

    binner = QuantileBinner(max_bins=max_bins).fit_streamed(
        (chunk.features for chunk in generator.generate_chunks(chunk_rows)),
        sample_rows=sample_rows,
        seed=binner_seed,
    )

    province_names = tuple(cfg.registry.names)
    pack = SharedArrayPack.allocate(
        {
            "binned": ((n, d), "u1"),
            "labels": ((n,), "f8"),
            "province_codes": ((n,), "i2"),
            "years": ((n,), "i2"),
            "halves": ((n,), "i1"),
        },
        meta={"province_names": province_names, "max_bins": max_bins},
    )
    views = pack.writable_arrays()
    code_of = {name: i for i, name in enumerate(province_names)}
    for chunk in generator.generate_chunks(chunk_rows):
        rows = chunk.row_indices
        binner.transform_into(chunk.features, views["binned"], rows=rows)
        views["labels"][rows] = chunk.labels
        views["province_codes"][rows] = code_of[chunk.province]
        views["years"][rows] = chunk.year
        views["halves"][rows] = chunk.half
    return PackedBinnedDataset(pack=pack, binner=binner,
                               province_names=province_names)
