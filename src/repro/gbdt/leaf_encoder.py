"""Leaf-index one-hot encoding: the GBDT half of "GBDT+LR".

Following He et al. (2014) and Section III-C of the paper, each fitted tree
is treated as a non-linear transformation producing one categorical cross-
feature per instance — the index of the leaf the instance falls into.  The
categorical values are one-hot encoded per tree and concatenated into one
sparse multi-hot vector (exactly one active indicator per tree).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.gbdt.boosting import GBDTClassifier

__all__ = ["LeafIndexEncoder"]


class LeafIndexEncoder:
    """One-hot encoder over the leaf indices of a fitted GBDT.

    The encoder's output dimension is ``sum_t n_leaves(tree_t)``; column
    blocks follow tree order.  Rows are CSR-sparse with exactly one non-zero
    per tree, which the LR head exploits for fast products.
    """

    def __init__(self, model: GBDTClassifier):
        if not model.is_fitted:
            raise ValueError("encoder requires a fitted GBDTClassifier")
        self.model = model
        leaves = model.leaves_per_tree()
        self._offsets = np.concatenate(([0], np.cumsum(leaves)))
        self.n_output_features: int = int(self._offsets[-1])

    @property
    def n_trees(self) -> int:
        return len(self.model.trees_)

    def transform(self, features: np.ndarray) -> sparse.csr_matrix:
        """Encode raw features into the sparse multi-hot design matrix.

        Args:
            features: Raw ``(n, d)`` matrix in the GBDT's input space.

        Returns:
            CSR matrix of shape ``(n, n_output_features)`` with exactly
            ``n_trees`` ones per row.
        """
        leaf_matrix = self.model.predict_leaves(features)
        return self.encode_leaves(leaf_matrix)

    def encode_leaves(self, leaf_matrix: np.ndarray) -> sparse.csr_matrix:
        """Encode a precomputed ``(n, n_trees)`` leaf-index matrix."""
        leaf_matrix = np.asarray(leaf_matrix, dtype=np.int64)
        if leaf_matrix.ndim != 2 or leaf_matrix.shape[1] != self.n_trees:
            raise ValueError(
                f"expected (n, {self.n_trees}) leaf matrix, got {leaf_matrix.shape}"
            )
        per_tree_leaves = np.diff(self._offsets)
        if np.any(leaf_matrix < 0) or np.any(leaf_matrix >= per_tree_leaves[None, :]):
            raise ValueError("leaf index out of range for its tree")
        n = leaf_matrix.shape[0]
        # Column index of each active indicator: tree offset + leaf index.
        cols = (leaf_matrix + self._offsets[:-1][None, :]).ravel()
        rows = np.repeat(np.arange(n), self.n_trees)
        data = np.ones(cols.size)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, self.n_output_features)
        )

    def column_origin(self, column: int) -> tuple[int, int]:
        """Map an output column back to ``(tree_index, leaf_index)``."""
        if not 0 <= column < self.n_output_features:
            raise IndexError(f"column {column} out of range")
        tree = int(np.searchsorted(self._offsets, column, side="right")) - 1
        return tree, int(column - self._offsets[tree])
