"""Leaf-index one-hot encoding: the GBDT half of "GBDT+LR".

Following He et al. (2014) and Section III-C of the paper, each fitted tree
is treated as a non-linear transformation producing one categorical cross-
feature per instance — the index of the leaf the instance falls into.  The
categorical values are one-hot encoded per tree and concatenated into one
sparse multi-hot vector (exactly one active indicator per tree).

Because every row has exactly ``n_trees`` non-zeros at strictly increasing
column positions (tree blocks are laid out in tree order), the CSR arrays
are known in closed form — ``indptr`` is an arithmetic progression and
``indices`` the offset leaf matrix — so the matrix is assembled directly
without the COO→CSR conversion (duplicate summation, sort) round-trip.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.gbdt.boosting import GBDTClassifier
from repro.obs.profile import active as _active_profiler

__all__ = ["LeafIndexEncoder", "encode_leaf_matrix"]


def encode_leaf_matrix(
    leaf_matrix: np.ndarray, offsets: np.ndarray
) -> sparse.csr_matrix:
    """Build the multi-hot CSR matrix for a dense leaf-index matrix.

    Args:
        leaf_matrix: ``(n, n_trees)`` per-tree dense leaf indices.
        offsets: ``(n_trees + 1,)`` cumulative leaf counts; tree ``t``'s
            one-hot block spans columns ``[offsets[t], offsets[t + 1])``.

    Returns:
        CSR matrix of shape ``(n, offsets[-1])`` with exactly one non-zero
        per tree per row.  ``data`` uses float32 — the values are all 1.0,
        exactly representable, and scipy upcasts products with a float64
        parameter vector, so downstream results are bit-identical.
        ``indices``/``indptr`` use int32 (scipy's native index dtype)
        whenever ``nnz = n * n_trees`` and the column count fit in int32,
        halving index memory at paper scale; int64 otherwise.
    """
    n, n_trees = leaf_matrix.shape
    nnz = n * n_trees
    # scipy canonicalises mixed/int64 indices to int32 when it can, which
    # would silently copy; emitting int32 up front skips that round-trip.
    index_dtype = (
        np.int32
        if nnz < np.iinfo(np.int32).max and int(offsets[-1]) < np.iinfo(np.int32).max
        else np.int64
    )
    indices = np.ascontiguousarray(
        (leaf_matrix + offsets[:-1][None, :]).ravel(), dtype=index_dtype
    )
    indptr = np.arange(n + 1, dtype=index_dtype) * n_trees
    data = np.ones(indices.size, dtype=np.float32)
    # Column subsets within each row are strictly increasing (offsets grow
    # with the tree index), so the arrays are already in canonical form.
    matrix = sparse.csr_matrix(
        (data, indices, indptr), shape=(n, int(offsets[-1]))
    )
    return matrix


class LeafIndexEncoder:
    """One-hot encoder over the leaf indices of a fitted GBDT.

    The encoder's output dimension is ``sum_t n_leaves(tree_t)``; column
    blocks follow tree order.  Rows are CSR-sparse with exactly one non-zero
    per tree, which the LR head exploits for fast products.
    """

    def __init__(self, model: GBDTClassifier):
        if not model.is_fitted:
            raise ValueError("encoder requires a fitted GBDTClassifier")
        self.model = model
        leaves = model.leaves_per_tree()
        self._offsets = np.concatenate(([0], np.cumsum(leaves)))
        self.n_output_features: int = int(self._offsets[-1])

    @property
    def n_trees(self) -> int:
        return len(self.model.trees_)

    def transform(self, features: np.ndarray) -> sparse.csr_matrix:
        """Encode raw features into the sparse multi-hot design matrix.

        Args:
            features: Raw ``(n, d)`` matrix in the GBDT's input space.

        Returns:
            CSR matrix of shape ``(n, n_output_features)`` with exactly
            ``n_trees`` ones per row.
        """
        leaf_matrix = self.model.predict_leaves(features)
        return self.encode_leaves(leaf_matrix)

    def transform_binned(self, binned: np.ndarray) -> sparse.csr_matrix:
        """Encode pre-binned rows (see :meth:`GBDTClassifier.bin_features`).

        Lets a caller share one binned matrix between probability scoring
        and leaf encoding instead of re-binning per consumer.
        """
        return self.encode_leaves(self.model.predict_leaves_binned(binned))

    def encode_leaves(self, leaf_matrix: np.ndarray) -> sparse.csr_matrix:
        """Encode a precomputed ``(n, n_trees)`` leaf-index matrix."""
        leaf_matrix = np.asarray(leaf_matrix)
        if not np.issubdtype(leaf_matrix.dtype, np.integer):
            leaf_matrix = leaf_matrix.astype(np.int64)
        if leaf_matrix.ndim != 2 or leaf_matrix.shape[1] != self.n_trees:
            raise ValueError(
                f"expected (n, {self.n_trees}) leaf matrix, got {leaf_matrix.shape}"
            )
        per_tree_leaves = np.diff(self._offsets)
        if np.any(leaf_matrix < 0) or np.any(leaf_matrix >= per_tree_leaves[None, :]):
            raise ValueError("leaf index out of range for its tree")
        profiler = _active_profiler()
        if profiler is not None:
            with profiler.section(
                "leaf_encode",
                rows=int(leaf_matrix.shape[0]),
                cells=int(leaf_matrix.size),
            ):
                return encode_leaf_matrix(leaf_matrix, self._offsets)
        return encode_leaf_matrix(leaf_matrix, self._offsets)

    def column_origin(self, column: int) -> tuple[int, int]:
        """Map an output column back to ``(tree_index, leaf_index)``."""
        if not 0 <= column < self.n_output_features:
            raise IndexError(f"column {column} out of range")
        tree = int(np.searchsorted(self._offsets, column, side="right")) - 1
        return tree, int(column - self._offsets[tree])
