"""Quantile feature binning, the first stage of histogram-based GBDT.

LightGBM's speed comes from pre-discretising each feature into at most
``max_bins`` quantile buckets and then building gradient histograms over the
bucket indices instead of sorting raw values at every split.  This module
implements that discretisation: :class:`QuantileBinner` learns per-feature
bin upper edges on the training data and maps raw matrices to ``uint8``
(or ``uint16``) bin indices.

Two memory disciplines matter at paper scale (1.4M × 210):

* edges can be learned from a **streamed sample pass**
  (:meth:`QuantileBinner.fit_streamed`) — a bounded uniform reservoir of
  rows replaces the full matrix, so fitting never needs all rows resident;
* binned output can be written **directly into a caller-owned buffer**
  (:meth:`QuantileBinner.transform_into`), which is how the packed-dataset
  builder fills a shared-memory uint8 block chunk at a time.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["QuantileBinner", "ReservoirSampler"]


class ReservoirSampler:
    """Uniform without-replacement row reservoir over a stream of blocks.

    Classic Algorithm R, vectorised per block: once the reservoir is full,
    the row with global index ``t`` is accepted with probability ``k / (t +
    1)`` and overwrites a uniformly chosen slot.  Duplicate slot draws
    within one block resolve to the last write — the same outcome as
    processing the block row by row.  Deterministic given the seed and the
    block sequence.
    """

    def __init__(self, capacity: int, n_features: int, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._buffer = np.empty((capacity, n_features), dtype=np.float64)
        self._seen = 0

    @property
    def n_seen(self) -> int:
        """Total rows offered so far."""
        return self._seen

    def add(self, rows: np.ndarray) -> None:
        """Offer a block of rows to the reservoir."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self._buffer.shape[1]:
            raise ValueError(
                f"expected (m, {self._buffer.shape[1]}) block, got {rows.shape}"
            )
        m = rows.shape[0]
        k = self.capacity
        filled = min(k - self._seen, m) if self._seen < k else 0
        if filled > 0:
            self._buffer[self._seen:self._seen + filled] = rows[:filled]
        rest = rows[filled:]
        if rest.shape[0]:
            t = self._seen + filled + np.arange(rest.shape[0])
            accept = self._rng.random(rest.shape[0]) < k / (t + 1.0)
            n_accept = int(accept.sum())
            if n_accept:
                slots = self._rng.integers(0, k, size=n_accept)
                self._buffer[slots] = rest[accept]
        self._seen += m

    def sample(self) -> np.ndarray:
        """The current reservoir contents (rows seen if under capacity)."""
        return self._buffer[: min(self._seen, self.capacity)]


class QuantileBinner:
    """Per-feature quantile discretiser.

    Fit on the training matrix; transform maps each value to the index of
    the first bin whose upper edge is >= the value.  Values beyond the last
    learned edge fall into the final bin, so unseen test values never raise.

    Attributes:
        max_bins: Upper bound on bins per feature (including the overflow
            bin).  Must fit the chosen integer dtype.
        bin_edges_: After fitting, list (per feature) of strictly increasing
            upper edges; feature ``f`` has ``len(bin_edges_[f]) + 1`` bins.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        self.max_bins = max_bins
        self.bin_edges_: list[np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.bin_edges_ is not None

    def fit(self, features: np.ndarray) -> "QuantileBinner":
        """Learn bin edges from the training feature matrix.

        Args:
            features: Dense float matrix ``(n, d)``; all values finite.

        Returns:
            self.
        """
        features = self._check_matrix(features)
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for f in range(features.shape[1]):
            column = features[:, f]
            # method="lower" keeps candidates on observed values, so columns
            # with few distinct values get exactly that many bins instead of
            # interpolated pseudo-edges.
            candidate = np.unique(
                np.quantile(column, quantiles, method="lower")
            )
            # Degenerate (constant) columns get a single bin: no edges.
            if candidate.size and candidate[0] == candidate[-1]:
                candidate = candidate[:1]
                if column.min() == column.max():
                    candidate = np.empty(0)
            edges.append(candidate.astype(np.float64))
        self.bin_edges_ = edges
        return self

    def fit_streamed(
        self,
        blocks: Iterable[np.ndarray],
        sample_rows: int = 200_000,
        seed: int = 0,
    ) -> "QuantileBinner":
        """Learn bin edges from a stream of row blocks with bounded memory.

        A uniform row reservoir of at most ``sample_rows`` rows stands in
        for the full matrix; when the stream holds fewer rows than the
        reservoir, the fit is exactly :meth:`fit` on the concatenated
        stream.  Quantile-bin edges are order statistics, so a uniform row
        sample estimates them without any per-feature state.

        Args:
            blocks: Iterable of ``(m_i, d)`` float blocks (e.g.
                ``chunk.features`` from a streamed generator).
            sample_rows: Reservoir capacity — the memory bound.
            seed: Reservoir RNG seed (deterministic given the stream).

        Returns:
            self.
        """
        sampler: ReservoirSampler | None = None
        for block in blocks:
            block = self._check_matrix(block)
            if sampler is None:
                sampler = ReservoirSampler(sample_rows, block.shape[1],
                                           seed=seed)
            sampler.add(block)
        if sampler is None or sampler.n_seen == 0:
            raise ValueError("cannot fit a binner on an empty stream")
        return self.fit(sampler.sample())

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map raw features to bin indices.

        Args:
            features: Dense float matrix with the fitted column count.

        Returns:
            ``uint8`` matrix of bin indices, same shape as the input.
        """
        features = self._check_transform_input(features)
        binned = np.empty(features.shape, dtype=np.uint8)
        for f, edges in enumerate(self.bin_edges_):
            binned[:, f] = np.searchsorted(edges, features[:, f], side="left")
        return binned

    def transform_into(
        self,
        features: np.ndarray,
        out: np.ndarray,
        rows: np.ndarray | None = None,
    ) -> None:
        """Bin ``features`` directly into a caller-owned uint8 buffer.

        The streamed packing path owns one preallocated ``(n, d)`` block
        (typically shared memory) and fills it chunk at a time; this
        variant writes each chunk in place instead of allocating a binned
        copy per call.

        Args:
            features: Raw ``(m, d)`` block to bin.
            out: ``(n, d)`` uint8 destination.
            rows: Destination row indices (``(m,)``); ``None`` requires
                ``m == n`` and writes rows in order.
        """
        features = self._check_transform_input(features)
        if out.dtype != np.uint8 or out.ndim != 2:
            raise ValueError("out must be a 2-D uint8 buffer")
        if out.shape[1] != features.shape[1]:
            raise ValueError("out and features disagree on column count")
        if rows is None and out.shape[0] != features.shape[0]:
            raise ValueError("out and features disagree on row count")
        for f, edges in enumerate(self.bin_edges_):
            column = np.searchsorted(edges, features[:, f], side="left")
            if rows is None:
                out[:, f] = column
            else:
                out[rows, f] = column

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` then transform them."""
        return self.fit(features).transform(features)

    def n_bins(self, feature: int) -> int:
        """Number of occupied bins for one feature after fitting."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.bin_edges_[feature]) + 1

    def bin_upper_value(self, feature: int, bin_index: int) -> float:
        """Raw-value upper edge of a bin (``inf`` for the overflow bin)."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        edges = self.bin_edges_[feature]
        if bin_index >= len(edges):
            return float("inf")
        return float(edges[bin_index])

    def _check_transform_input(self, features: np.ndarray) -> np.ndarray:
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        features = self._check_matrix(features)
        if features.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {features.shape[1]}"
            )
        return features

    @staticmethod
    def _check_matrix(features: np.ndarray) -> np.ndarray:
        # No forced float64 copy: float32 inputs (the reduced-precision
        # hot path) and float64 inputs pass through untouched; only
        # non-float dtypes are upcast.  searchsorted handles the
        # edge/value dtype mix per column.
        features = np.asarray(features)
        if features.dtype not in (np.float32, np.float64):
            features = features.astype(np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if not np.all(np.isfinite(features)):
            raise ValueError("features must be finite")
        return features
