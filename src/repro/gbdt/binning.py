"""Quantile feature binning, the first stage of histogram-based GBDT.

LightGBM's speed comes from pre-discretising each feature into at most
``max_bins`` quantile buckets and then building gradient histograms over the
bucket indices instead of sorting raw values at every split.  This module
implements that discretisation: :class:`QuantileBinner` learns per-feature
bin upper edges on the training data and maps raw matrices to ``uint8``
(or ``uint16``) bin indices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Per-feature quantile discretiser.

    Fit on the training matrix; transform maps each value to the index of
    the first bin whose upper edge is >= the value.  Values beyond the last
    learned edge fall into the final bin, so unseen test values never raise.

    Attributes:
        max_bins: Upper bound on bins per feature (including the overflow
            bin).  Must fit the chosen integer dtype.
        bin_edges_: After fitting, list (per feature) of strictly increasing
            upper edges; feature ``f`` has ``len(bin_edges_[f]) + 1`` bins.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        self.max_bins = max_bins
        self.bin_edges_: list[np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.bin_edges_ is not None

    def fit(self, features: np.ndarray) -> "QuantileBinner":
        """Learn bin edges from the training feature matrix.

        Args:
            features: Dense float matrix ``(n, d)``; all values finite.

        Returns:
            self.
        """
        features = self._check_matrix(features)
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for f in range(features.shape[1]):
            column = features[:, f]
            # method="lower" keeps candidates on observed values, so columns
            # with few distinct values get exactly that many bins instead of
            # interpolated pseudo-edges.
            candidate = np.unique(
                np.quantile(column, quantiles, method="lower")
            )
            # Degenerate (constant) columns get a single bin: no edges.
            if candidate.size and candidate[0] == candidate[-1]:
                candidate = candidate[:1]
                if column.min() == column.max():
                    candidate = np.empty(0)
            edges.append(candidate.astype(np.float64))
        self.bin_edges_ = edges
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map raw features to bin indices.

        Args:
            features: Dense float matrix with the fitted column count.

        Returns:
            ``uint8`` matrix of bin indices, same shape as the input.
        """
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        features = self._check_matrix(features)
        if features.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {features.shape[1]}"
            )
        binned = np.empty(features.shape, dtype=np.uint8)
        for f, edges in enumerate(self.bin_edges_):
            binned[:, f] = np.searchsorted(edges, features[:, f], side="left")
        return binned

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` then transform them."""
        return self.fit(features).transform(features)

    def n_bins(self, feature: int) -> int:
        """Number of occupied bins for one feature after fitting."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.bin_edges_[feature]) + 1

    def bin_upper_value(self, feature: int, bin_index: int) -> float:
        """Raw-value upper edge of a bin (``inf`` for the overflow bin)."""
        if self.bin_edges_ is None:
            raise RuntimeError("binner is not fitted")
        edges = self.bin_edges_[feature]
        if bin_index >= len(edges):
            return float("inf")
        return float(edges[bin_index])

    @staticmethod
    def _check_matrix(features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if not np.all(np.isfinite(features)):
            raise ValueError("features must be finite")
        return features
