"""A single regression tree grown leaf-wise (best-first), LightGBM style.

Each boosting round fits one :class:`DecisionTree` to the current gradient /
hessian statistics.  Unlike level-wise (XGBoost-classic) growth, leaf-wise
growth repeatedly splits the leaf with the globally largest gain until the
leaf budget is exhausted — the strategy LightGBM popularised and the one the
paper's feature extractor relies on (each tree's leaves become the categories
of one cross-feature).

Inference is served from a *flattened* struct-of-arrays form built once
after fitting (:class:`FlatTree`): parallel ``feature`` / ``threshold`` /
``left`` / ``right`` / ``leaf_index`` arrays in which every leaf points to
itself.  Routing all rows is then an ``O(depth × n)`` vectorised descent
— ``node = left[node] + (bin > threshold[node])`` — instead of an
``O(n_nodes × n)`` per-node mask loop.  The descent leans on two
structural facts: siblings are appended consecutively during growth (so
``right == left + 1`` always), and bin thresholds fit in a byte (so each
node's feature and threshold pack into one int32, halving the per-level
gather work).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.gbdt.histogram import HistogramBuilder, NodeHistogram

__all__ = ["TreeParams", "DecisionTree", "SplitInfo", "FlatTree"]


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters of one tree.

    Attributes:
        max_leaves: Leaf budget (LightGBM's ``num_leaves``).
        max_depth: Depth cap; -1 disables the cap.
        min_child_samples: Minimum samples a child must keep.
        min_child_hessian: Minimum hessian mass a child must keep.
        reg_lambda: L2 regularisation on leaf values.
        min_split_gain: Minimum gain for a split to be accepted.
    """

    max_leaves: int = 31
    max_depth: int = -1
    min_child_samples: int = 20
    min_child_hessian: float = 1e-3
    reg_lambda: float = 1.0
    min_split_gain: float = 1e-7

    def __post_init__(self) -> None:
        if self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        if self.min_child_samples < 1:
            raise ValueError("min_child_samples must be >= 1")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")


@dataclass(frozen=True)
class SplitInfo:
    """Best split found for a node (or None when no valid split exists)."""

    feature: int
    bin_threshold: int  # go left when bin <= threshold
    gain: float
    left_grad: float
    left_hess: float
    left_count: int


@dataclass
class _Node:
    """Mutable tree node used during growth and flattened for prediction.

    ``sample_indices`` and ``histogram`` are growth-time state; they are
    dropped after fitting and absent on deserialised trees.
    """

    node_id: int
    depth: int
    sample_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    histogram: NodeHistogram | None = None
    feature: int = -1
    bin_threshold: int = -1
    left: int = -1
    right: int = -1
    leaf_index: int = -1  # dense index among leaves; -1 for internal nodes
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left == -1


@dataclass(frozen=True)
class FlatTree:
    """Struct-of-arrays prediction form of a fitted tree.

    Leaves are encoded as self-loops (``left == right == node_id`` with an
    always-true threshold), so ``depth`` routing iterations settle every
    row on its leaf regardless of where it landed earlier.

    Attributes:
        feature: ``(n_nodes,)`` int32 split feature (0 for leaves).
        threshold: ``(n_nodes,)`` int32 bin threshold (max for leaves, so
            any bin compares ``<=`` and the self-loop is taken).
        left: ``(n_nodes,)`` int32 left-child id (self for leaves).
        right: ``(n_nodes,)`` int32 right-child id (self for leaves).
        leaf_index: ``(n_nodes,)`` int64 dense leaf index (-1 internal).
        value: ``(n_leaves,)`` float64 leaf values, by dense leaf index.
        depth: Maximum leaf depth — the routing iteration count.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_index: np.ndarray
    value: np.ndarray
    depth: int

    #: Leaf threshold in the packed form: no uint8 bin exceeds it, so a
    #: leaf's self-loop edge is always the "left" (not-greater) branch.
    _LEAF_THRESHOLD = 255

    def __post_init__(self) -> None:
        # Fast routing packs each node's (left, feature, threshold) into
        # one int64 — a single gather per descent level.  It needs
        # right == left + 1 (siblings are appended consecutively during
        # growth), byte-sized thresholds, and features below 2^24.  All
        # hold for every tree this codebase grows or deserialises; the
        # general where()-descent remains as a fallback.
        internal = self.leaf_index < 0
        packable = bool(
            np.array_equal(self.right[internal], self.left[internal] + 1)
            and np.all(self.threshold[internal] >= 0)
            and np.all(self.threshold[internal] < self._LEAF_THRESHOLD)
            and (self.feature.size == 0
                 or int(self.feature.max()) < 1 << 24)
        )
        pack = None
        if packable:
            byte_thr = np.where(
                internal, self.threshold, self._LEAF_THRESHOLD
            ).astype(np.int64)
            pack = (
                (self.left.astype(np.int64) << 32)
                | (self.feature.astype(np.int64) << 8)
                | byte_thr
            )
        object.__setattr__(self, "_pack", pack)

    @classmethod
    def from_nodes(cls, nodes: list[_Node], n_leaves: int,
                   value_dtype: np.dtype | type | str = np.float64,
                   ) -> "FlatTree":
        """Compact a node list into the parallel-array form.

        Args:
            nodes: Growth-time node list.
            n_leaves: Dense leaf count.
            value_dtype: Dtype of the leaf-value array (float32 on the
                opt-in reduced-precision path; persisted trees always
                restore as float64).
        """
        n_nodes = len(nodes)
        feature = np.zeros(n_nodes, dtype=np.int32)
        threshold = np.full(n_nodes, np.iinfo(np.int32).max, dtype=np.int32)
        left = np.arange(n_nodes, dtype=np.int32)
        right = np.arange(n_nodes, dtype=np.int32)
        leaf_index = np.full(n_nodes, -1, dtype=np.int64)
        value = np.zeros(max(n_leaves, 1), dtype=value_dtype)
        depth = 0
        for node in nodes:
            if node.is_leaf:
                leaf_index[node.node_id] = node.leaf_index
                value[node.leaf_index] = node.value
                depth = max(depth, node.depth)
            else:
                feature[node.node_id] = node.feature
                threshold[node.node_id] = node.bin_threshold
                left[node.node_id] = node.left
                right[node.node_id] = node.right
        return cls(feature=feature, threshold=threshold, left=left,
                   right=right, leaf_index=leaf_index, value=value,
                   depth=depth)

    def route(self, binned: np.ndarray,
              columns: np.ndarray | None = None) -> np.ndarray:
        """Vectorised descent: leaf *node id* of every row.

        Args:
            binned: ``(n, d)`` bin-index matrix.  ``d`` is the tree's own
                feature space when ``columns`` is None, else the full
                matrix the tree's features index into via ``columns``.
            columns: Optional map from tree-local feature id to column of
                ``binned`` (feature bagging without slicing the matrix).

        Returns:
            ``(n,)`` integer node ids, all leaves.
        """
        if self._pack is None:
            return self._route_general(binned, columns)
        n, d = binned.shape
        pack = self._pack
        if columns is not None:
            # Remap tree-local features to matrix columns once per call
            # (n_nodes entries) instead of per routed row.
            cols = np.asarray(columns, dtype=np.int64)
            pack = (
                (self.left.astype(np.int64) << 32)
                | (cols[self.feature] << 8)
                | (pack & 255)
            )
        flat_bins = binned.ravel()
        row_offset = np.arange(n, dtype=np.int64) * d
        node = np.zeros(n, dtype=np.int64)
        for _ in range(self.depth):
            p = pack[node]
            bins = flat_bins[row_offset + ((p >> 8) & 0xFFFFFF)]
            node = (p >> 32) + (bins > (p & 255))
        return node

    def _route_general(self, binned: np.ndarray,
                       columns: np.ndarray | None) -> np.ndarray:
        """where()-based descent for trees the packed form cannot encode."""
        n = binned.shape[0]
        feature = self.feature
        if columns is not None:
            feature = np.asarray(columns, dtype=np.int64)[self.feature]
        node = np.zeros(n, dtype=np.int32)
        rows = np.arange(n)
        for _ in range(self.depth):
            bins = binned[rows, feature[node]]
            go_left = bins <= self.threshold[node]
            node = np.where(go_left, self.left[node], self.right[node])
        return node


class DecisionTree:
    """Histogram-based regression tree over pre-binned features.

    The tree is fit on second-order statistics (gradients and hessians of an
    arbitrary twice-differentiable loss), so the same class serves logloss
    boosting here and could serve any GBDT objective.
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self._nodes: list[_Node] = []
        self._n_leaves = 0
        self._flat: FlatTree | None = None
        self._value_dtype: np.dtype = np.dtype(np.float64)

    @property
    def n_leaves(self) -> int:
        """Number of leaves after fitting."""
        return self._n_leaves

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def flat(self) -> FlatTree:
        """The struct-of-arrays prediction form (built lazily)."""
        if self._flat is None:
            if not self._nodes:
                raise RuntimeError("tree is not fitted")
            self._flat = FlatTree.from_nodes(self._nodes, self._n_leaves,
                                             self._value_dtype)
        return self._flat

    def fit(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        max_bins: int,
        sample_indices: np.ndarray | None = None,
        column_subset: np.ndarray | None = None,
        builder: HistogramBuilder | None = None,
        value_dtype: np.dtype | type | str = np.float64,
    ) -> "DecisionTree":
        """Grow the tree on (possibly subsampled) training rows.

        Args:
            binned: ``(n, d)`` uint8 bin indices for all training rows.
            gradients: Per-row first-order loss derivatives.
            hessians: Per-row second-order loss derivatives.
            max_bins: Histogram width.
            sample_indices: Optional row subset (bagging).
            column_subset: Optional sorted column indices (feature bagging).
                Node features are stored relative to this subset, exactly
                as if the tree had been fit on ``binned[:, column_subset]``
                — but without materialising that copy.
            builder: Optional shared :class:`HistogramBuilder` over
                ``binned`` (the boosting loop passes one per ensemble).
            value_dtype: Leaf-value storage dtype (float32 on the opt-in
                reduced-precision path).

        Returns:
            self.
        """
        if sample_indices is None:
            sample_indices = np.arange(binned.shape[0])
        if sample_indices.size == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._nodes = []
        self._n_leaves = 0
        self._flat = None
        self._max_bins = max_bins
        self._value_dtype = np.dtype(value_dtype)
        if builder is None:
            builder = HistogramBuilder(binned, max_bins)
        # Growth-time references, dropped at the end of fit().
        self._builder = builder
        self._binned = binned
        self._column_subset = column_subset
        self._gradients = gradients
        self._hessians = hessians

        root_hist = builder.build(gradients, hessians, sample_indices,
                                  column_subset)
        root = _Node(node_id=0, depth=0, sample_indices=sample_indices,
                     histogram=root_hist)
        self._nodes.append(root)

        # Max-heap of candidate splits keyed by gain; the tiebreaker keeps
        # heap ordering deterministic when gains tie.
        heap: list[tuple[float, int, int, SplitInfo]] = []
        tiebreak = itertools.count()

        def push_candidate(node: _Node) -> None:
            split = self._best_split(node)
            if split is not None:
                heapq.heappush(heap, (-split.gain, next(tiebreak),
                                      node.node_id, split))

        push_candidate(root)
        n_leaves = 1
        while heap and n_leaves < self.params.max_leaves:
            _, __, node_id, split = heapq.heappop(heap)
            node = self._nodes[node_id]
            left, right = self._apply_split(node, split)
            n_leaves += 1
            push_candidate(left)
            push_candidate(right)

        self._finalize_leaves()
        self._flat = FlatTree.from_nodes(self._nodes, self._n_leaves,
                                         self._value_dtype)
        del self._builder, self._binned, self._column_subset
        del self._gradients, self._hessians
        return self

    def _best_split(self, node: _Node) -> SplitInfo | None:
        """Find the highest-gain valid split over all features at once.

        Fully vectorised: 2-D prefix sums over the (feature, bin)
        histogram, one validity mask, gains evaluated on the valid slots
        only, and a single flat argmax.  Row-major flattening makes the
        tie-break deterministic — lowest feature, then lowest bin — which
        is exactly the order the seed per-feature loop
        (:func:`repro.perfbench.reference.best_split_seed`) visits
        candidates in, so the two are bit-identical (golden-tested).
        """
        params = self.params
        if params.max_depth >= 0 and node.depth >= params.max_depth:
            return None
        hist = node.histogram
        total_grad = hist.total_grad
        total_hess = hist.total_hess
        total_count = hist.total_count
        if total_count < 2 * params.min_child_samples:
            return None
        parent_score = total_grad**2 / (total_hess + params.reg_lambda)

        # Prefix sums over bins: splitting after bin b sends bins <= b left.
        # The last bin cannot be a split point (nothing would go right).
        lg = np.cumsum(hist.grad, axis=1)[:, :-1]
        lh = np.cumsum(hist.hess, axis=1)[:, :-1]
        lc = np.cumsum(hist.count, axis=1)[:, :-1]
        rg = total_grad - lg
        rh = total_hess - lh
        rc = total_count - lc
        valid = (
            (lc >= params.min_child_samples)
            & (rc >= params.min_child_samples)
            & (lh >= params.min_child_hessian)
            & (rh >= params.min_child_hessian)
        )
        if not valid.any():
            return None
        # Gains inherit the histogram dtype: float64 on the default path
        # (bit-identical to the seed loop), float32 on the reduced-
        # precision path.
        gains = np.full(lg.shape, -np.inf, dtype=lg.dtype)
        gains[valid] = (
            lg[valid] ** 2 / (lh[valid] + params.reg_lambda)
            + rg[valid] ** 2 / (rh[valid] + params.reg_lambda)
            - parent_score
        )
        flat = int(np.argmax(gains))
        f, b = divmod(flat, gains.shape[1])
        if gains[f, b] <= params.min_split_gain:
            return None
        return SplitInfo(
            feature=int(f),
            bin_threshold=int(b),
            gain=float(gains[f, b]),
            left_grad=float(lg[f, b]),
            left_hess=float(lh[f, b]),
            left_count=int(lc[f, b]),
        )

    def _apply_split(
        self, node: _Node, split: SplitInfo
    ) -> tuple[_Node, _Node]:
        """Materialise a split: partition rows, build child histograms."""
        rows = node.sample_indices
        column = split.feature
        if self._column_subset is not None:
            column = self._column_subset[split.feature]
        goes_left = self._binned[rows, column] <= split.bin_threshold
        left_rows = rows[goes_left]
        right_rows = rows[~goes_left]

        # Histogram subtraction trick: build the smaller side, derive the other.
        if left_rows.size <= right_rows.size:
            left_hist = self._builder.build(
                self._gradients, self._hessians, left_rows,
                self._column_subset,
            )
            right_hist = node.histogram.subtract(left_hist)
        else:
            right_hist = self._builder.build(
                self._gradients, self._hessians, right_rows,
                self._column_subset,
            )
            left_hist = node.histogram.subtract(right_hist)

        left = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                     sample_indices=left_rows, histogram=left_hist)
        self._nodes.append(left)
        right = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                      sample_indices=right_rows, histogram=right_hist)
        self._nodes.append(right)

        node.feature = split.feature
        node.bin_threshold = split.bin_threshold
        node.left = left.node_id
        node.right = right.node_id
        node.sample_indices = np.empty(0, dtype=np.int64)  # free memory
        return left, right

    def _finalize_leaves(self) -> None:
        """Assign dense leaf indices and Newton-step leaf values."""
        leaf_counter = 0
        for node in self._nodes:
            if node.is_leaf:
                node.leaf_index = leaf_counter
                leaf_counter += 1
                hist = node.histogram
                node.value = -hist.total_grad / (
                    hist.total_hess + self.params.reg_lambda
                )
                node.sample_indices = np.empty(0, dtype=np.int64)
        self._n_leaves = leaf_counter

    def predict_leaf(
        self, binned: np.ndarray, columns: np.ndarray | None = None
    ) -> np.ndarray:
        """Route rows to leaves; returns the dense leaf index per row.

        Args:
            binned: ``(n, d)`` bin-index matrix from the same binner — the
                tree's own feature space, or the full matrix together with
                ``columns``.
            columns: Optional tree-local-feature → column map, so callers
                with feature-bagged trees never slice the binned matrix.

        Returns:
            ``(n,)`` int array of leaf indices in ``[0, n_leaves)``.
        """
        flat = self.flat
        return flat.leaf_index[flat.route(binned, columns)]

    def predict_value(
        self, binned: np.ndarray, columns: np.ndarray | None = None
    ) -> np.ndarray:
        """Raw leaf values (pre-shrinkage contribution of this tree)."""
        return self.flat.value[self.predict_leaf(binned, columns)]

    def feature_importance(self, n_features: int) -> np.ndarray:
        """Total split gain attributed to each feature.

        Requires growth-time histograms, so it is unavailable on trees
        restored from serialised form.
        """
        if any(n.histogram is None for n in self._nodes):
            raise RuntimeError(
                "feature importance requires growth-time histograms "
                "(unavailable on deserialised trees)"
            )
        importance = np.zeros(n_features)
        for node in self._nodes:
            if not node.is_leaf:
                left = self._nodes[node.left].histogram
                right = self._nodes[node.right].histogram
                parent = node.histogram
                lam = self.params.reg_lambda
                gain = (
                    left.total_grad**2 / (left.total_hess + lam)
                    + right.total_grad**2 / (right.total_hess + lam)
                    - parent.total_grad**2 / (parent.total_hess + lam)
                )
                importance[node.feature] += max(gain, 0.0)
        return importance
