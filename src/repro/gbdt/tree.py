"""A single regression tree grown leaf-wise (best-first), LightGBM style.

Each boosting round fits one :class:`DecisionTree` to the current gradient /
hessian statistics.  Unlike level-wise (XGBoost-classic) growth, leaf-wise
growth repeatedly splits the leaf with the globally largest gain until the
leaf budget is exhausted — the strategy LightGBM popularised and the one the
paper's feature extractor relies on (each tree's leaves become the categories
of one cross-feature).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.gbdt.histogram import NodeHistogram, build_histogram

__all__ = ["TreeParams", "DecisionTree", "SplitInfo"]


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters of one tree.

    Attributes:
        max_leaves: Leaf budget (LightGBM's ``num_leaves``).
        max_depth: Depth cap; -1 disables the cap.
        min_child_samples: Minimum samples a child must keep.
        min_child_hessian: Minimum hessian mass a child must keep.
        reg_lambda: L2 regularisation on leaf values.
        min_split_gain: Minimum gain for a split to be accepted.
    """

    max_leaves: int = 31
    max_depth: int = -1
    min_child_samples: int = 20
    min_child_hessian: float = 1e-3
    reg_lambda: float = 1.0
    min_split_gain: float = 1e-7

    def __post_init__(self) -> None:
        if self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        if self.min_child_samples < 1:
            raise ValueError("min_child_samples must be >= 1")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")


@dataclass(frozen=True)
class SplitInfo:
    """Best split found for a node (or None when no valid split exists)."""

    feature: int
    bin_threshold: int  # go left when bin <= threshold
    gain: float
    left_grad: float
    left_hess: float
    left_count: int


@dataclass
class _Node:
    """Mutable tree node used during growth and flattened for prediction.

    ``sample_indices`` and ``histogram`` are growth-time state; they are
    dropped after fitting and absent on deserialised trees.
    """

    node_id: int
    depth: int
    sample_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    histogram: NodeHistogram | None = None
    feature: int = -1
    bin_threshold: int = -1
    left: int = -1
    right: int = -1
    leaf_index: int = -1  # dense index among leaves; -1 for internal nodes
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left == -1


class DecisionTree:
    """Histogram-based regression tree over pre-binned features.

    The tree is fit on second-order statistics (gradients and hessians of an
    arbitrary twice-differentiable loss), so the same class serves logloss
    boosting here and could serve any GBDT objective.
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self._nodes: list[_Node] = []
        self._n_leaves = 0

    @property
    def n_leaves(self) -> int:
        """Number of leaves after fitting."""
        return self._n_leaves

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def fit(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        max_bins: int,
        sample_indices: np.ndarray | None = None,
    ) -> "DecisionTree":
        """Grow the tree on (possibly subsampled) training rows.

        Args:
            binned: ``(n, d)`` uint8 bin indices for all training rows.
            gradients: Per-row first-order loss derivatives.
            hessians: Per-row second-order loss derivatives.
            max_bins: Histogram width.
            sample_indices: Optional row subset (bagging).

        Returns:
            self.
        """
        if sample_indices is None:
            sample_indices = np.arange(binned.shape[0])
        if sample_indices.size == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._nodes = []
        self._n_leaves = 0
        self._max_bins = max_bins

        root_hist = build_histogram(binned, gradients, hessians,
                                    sample_indices, max_bins)
        root = _Node(node_id=0, depth=0, sample_indices=sample_indices,
                     histogram=root_hist)
        self._nodes.append(root)

        # Max-heap of candidate splits keyed by gain; the tiebreaker keeps
        # heap ordering deterministic when gains tie.
        heap: list[tuple[float, int, int, SplitInfo]] = []
        tiebreak = itertools.count()

        def push_candidate(node: _Node) -> None:
            split = self._best_split(node)
            if split is not None:
                heapq.heappush(heap, (-split.gain, next(tiebreak),
                                      node.node_id, split))

        push_candidate(root)
        n_leaves = 1
        while heap and n_leaves < self.params.max_leaves:
            _, __, node_id, split = heapq.heappop(heap)
            node = self._nodes[node_id]
            left, right = self._apply_split(node, split, binned, gradients,
                                            hessians)
            n_leaves += 1
            push_candidate(left)
            push_candidate(right)

        self._finalize_leaves()
        return self

    def _best_split(self, node: _Node) -> SplitInfo | None:
        """Scan every feature's histogram for the highest-gain valid split."""
        params = self.params
        if params.max_depth >= 0 and node.depth >= params.max_depth:
            return None
        hist = node.histogram
        total_grad = hist.total_grad
        total_hess = hist.total_hess
        total_count = hist.total_count
        if total_count < 2 * params.min_child_samples:
            return None
        parent_score = total_grad**2 / (total_hess + params.reg_lambda)

        best: SplitInfo | None = None
        # Prefix sums over bins: splitting after bin b sends bins <= b left.
        left_grad = np.cumsum(hist.grad, axis=1)
        left_hess = np.cumsum(hist.hess, axis=1)
        left_count = np.cumsum(hist.count, axis=1)
        for f in range(hist.grad.shape[0]):
            lg = left_grad[f, :-1]
            lh = left_hess[f, :-1]
            lc = left_count[f, :-1]
            rg = total_grad - lg
            rh = total_hess - lh
            rc = total_count - lc
            valid = (
                (lc >= params.min_child_samples)
                & (rc >= params.min_child_samples)
                & (lh >= params.min_child_hessian)
                & (rh >= params.min_child_hessian)
            )
            if not np.any(valid):
                continue
            gains = np.full(lg.shape, -np.inf)
            gains[valid] = (
                lg[valid] ** 2 / (lh[valid] + params.reg_lambda)
                + rg[valid] ** 2 / (rh[valid] + params.reg_lambda)
                - parent_score
            )
            b = int(np.argmax(gains))
            if gains[b] <= params.min_split_gain:
                continue
            if best is None or gains[b] > best.gain:
                best = SplitInfo(
                    feature=f,
                    bin_threshold=b,
                    gain=float(gains[b]),
                    left_grad=float(lg[b]),
                    left_hess=float(lh[b]),
                    left_count=int(lc[b]),
                )
        return best

    def _apply_split(
        self,
        node: _Node,
        split: SplitInfo,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> tuple[_Node, _Node]:
        """Materialise a split: partition rows, build child histograms."""
        rows = node.sample_indices
        goes_left = binned[rows, split.feature] <= split.bin_threshold
        left_rows = rows[goes_left]
        right_rows = rows[~goes_left]

        # Histogram subtraction trick: build the smaller side, derive the other.
        if left_rows.size <= right_rows.size:
            left_hist = build_histogram(binned, gradients, hessians,
                                        left_rows, self._max_bins)
            right_hist = node.histogram.subtract(left_hist)
        else:
            right_hist = build_histogram(binned, gradients, hessians,
                                         right_rows, self._max_bins)
            left_hist = node.histogram.subtract(right_hist)

        left = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                     sample_indices=left_rows, histogram=left_hist)
        self._nodes.append(left)
        right = _Node(node_id=len(self._nodes), depth=node.depth + 1,
                      sample_indices=right_rows, histogram=right_hist)
        self._nodes.append(right)

        node.feature = split.feature
        node.bin_threshold = split.bin_threshold
        node.left = left.node_id
        node.right = right.node_id
        node.sample_indices = np.empty(0, dtype=np.int64)  # free memory
        return left, right

    def _finalize_leaves(self) -> None:
        """Assign dense leaf indices and Newton-step leaf values."""
        leaf_counter = 0
        for node in self._nodes:
            if node.is_leaf:
                node.leaf_index = leaf_counter
                leaf_counter += 1
                hist = node.histogram
                node.value = -hist.total_grad / (
                    hist.total_hess + self.params.reg_lambda
                )
                node.sample_indices = np.empty(0, dtype=np.int64)
        self._n_leaves = leaf_counter

    def predict_leaf(self, binned: np.ndarray) -> np.ndarray:
        """Route rows to leaves; returns the dense leaf index per row.

        Args:
            binned: ``(n, d)`` bin-index matrix from the same binner.

        Returns:
            ``(n,)`` int array of leaf indices in ``[0, n_leaves)``.
        """
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        n = binned.shape[0]
        current = np.zeros(n, dtype=np.int64)
        # Children always have larger ids than their parent, so a single
        # in-order pass routes every row to its leaf.
        for node in self._nodes:
            if node.is_leaf:
                continue
            here = current == node.node_id
            if not np.any(here):
                continue
            goes_left = binned[here, node.feature] <= node.bin_threshold
            dest = np.where(goes_left, node.left, node.right)
            current[here] = dest
        leaf_index_of_node = np.array(
            [node.leaf_index for node in self._nodes], dtype=np.int64
        )
        return leaf_index_of_node[current]

    def predict_value(self, binned: np.ndarray) -> np.ndarray:
        """Raw leaf values (pre-shrinkage contribution of this tree)."""
        leaf_values = np.array(
            [node.value for node in self._nodes if node.is_leaf]
        )
        return leaf_values[self.predict_leaf(binned)]

    def feature_importance(self, n_features: int) -> np.ndarray:
        """Total split gain attributed to each feature.

        Requires growth-time histograms, so it is unavailable on trees
        restored from serialised form.
        """
        if any(n.histogram is None for n in self._nodes):
            raise RuntimeError(
                "feature importance requires growth-time histograms "
                "(unavailable on deserialised trees)"
            )
        importance = np.zeros(n_features)
        for node in self._nodes:
            if not node.is_leaf:
                left = self._nodes[node.left].histogram
                right = self._nodes[node.right].histogram
                parent = node.histogram
                lam = self.params.reg_lambda
                gain = (
                    left.total_grad**2 / (left.total_hess + lam)
                    + right.total_grad**2 / (right.total_hess + lam)
                    - parent.total_grad**2 / (parent.total_hess + lam)
                )
                importance[node.feature] += max(gain, 0.0)
        return importance
