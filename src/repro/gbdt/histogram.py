"""Gradient/hessian histograms over binned features.

For a candidate node holding sample set S, the best split of feature ``f``
is found by accumulating, per bin ``b``, the gradient sum ``G[f, b]`` and
hessian sum ``H[f, b]`` over samples in S, then scanning the prefix sums.
This module builds those histograms with vectorised ``bincount`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NodeHistogram", "build_histogram"]


@dataclass(frozen=True)
class NodeHistogram:
    """Per-feature gradient and hessian histograms for one tree node.

    Attributes:
        grad: ``(n_features, max_bins)`` gradient sums.
        hess: ``(n_features, max_bins)`` hessian sums.
        count: ``(n_features, max_bins)`` sample counts.
    """

    grad: np.ndarray
    hess: np.ndarray
    count: np.ndarray

    @property
    def total_grad(self) -> float:
        """Gradient sum over the node (identical for every feature row)."""
        return float(self.grad[0].sum())

    @property
    def total_hess(self) -> float:
        """Hessian sum over the node."""
        return float(self.hess[0].sum())

    @property
    def total_count(self) -> int:
        """Sample count in the node."""
        return int(self.count[0].sum())

    def subtract(self, sibling: "NodeHistogram") -> "NodeHistogram":
        """Histogram of the complement child via the subtraction trick.

        LightGBM builds the smaller child's histogram directly and obtains
        the larger child's as ``parent - smaller`` — halving histogram work.
        """
        return NodeHistogram(
            grad=self.grad - sibling.grad,
            hess=self.hess - sibling.hess,
            count=self.count - sibling.count,
        )


def build_histogram(
    binned: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    sample_indices: np.ndarray,
    max_bins: int,
) -> NodeHistogram:
    """Accumulate per-bin gradient/hessian sums for one node.

    Args:
        binned: Full ``(n, d)`` uint8 bin-index matrix.
        gradients: Per-sample gradients ``(n,)``.
        hessians: Per-sample hessians ``(n,)``.
        sample_indices: Row indices belonging to the node.
        max_bins: Histogram width (bins per feature).

    Returns:
        A :class:`NodeHistogram` with ``(d, max_bins)`` arrays.
    """
    n_features = binned.shape[1]
    grad = np.zeros((n_features, max_bins))
    hess = np.zeros((n_features, max_bins))
    count = np.zeros((n_features, max_bins))
    node_bins = binned[sample_indices]
    node_grad = gradients[sample_indices]
    node_hess = hessians[sample_indices]
    for f in range(n_features):
        bins_f = node_bins[:, f]
        grad[f] = np.bincount(bins_f, weights=node_grad, minlength=max_bins)
        hess[f] = np.bincount(bins_f, weights=node_hess, minlength=max_bins)
        count[f] = np.bincount(bins_f, minlength=max_bins)
    return NodeHistogram(grad=grad, hess=hess, count=count)
