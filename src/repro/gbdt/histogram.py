"""Gradient/hessian histograms over binned features.

For a candidate node holding sample set S, the best split of feature ``f``
is found by accumulating, per bin ``b``, the gradient sum ``G[f, b]`` and
hessian sum ``H[f, b]`` over samples in S, then scanning the prefix sums.

:class:`HistogramBuilder` owns prepared views of the binned matrix and
picks the faster of two accumulation kernels per node:

* **Per-feature over a transposed matrix** (large nodes).  Each feature's
  bins are one contiguous row of a ``(d, n)`` uint8 transpose — small
  enough to stay cache-resident across builds — converted into a reused
  ``intp`` scratch row once per feature so every ``np.bincount`` call
  skips its internal cast-to-intp allocation.  The per-row weight vector
  is passed as-is; no ``(k, d)`` weight expansion is ever materialised.
* **Fused-index flat bincount** (small nodes).  Every (row, feature) cell
  maps to the flat slot ``feature * max_bins + bin`` and three bincounts
  over the raveled block build the whole histogram, amortising call
  overhead that would dominate a 3·d-call loop on a few hundred rows.

Two further structural facts are exploited: full-matrix bin *counts* do
not depend on the gradients, so they are computed once per builder and
served from cache on every full-row build (every boosting round re-bins
nothing and, without row subsampling, recounts nothing); and column
subsets (feature bagging) are handled inside both kernels instead of
materialising ``binned[:, cols]``.

Both kernels accumulate each histogram slot in row order — exactly the
order a naive per-feature ``bincount`` over ``binned[sample_indices]``
uses — so the float sums are bit-identical to the seed implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.profile import active as _active_profiler

__all__ = ["NodeHistogram", "HistogramBuilder", "build_histogram"]


@dataclass(frozen=True)
class NodeHistogram:
    """Per-feature gradient and hessian histograms for one tree node.

    Attributes:
        grad: ``(n_features, max_bins)`` gradient sums (float64, or
            float32 on the opt-in reduced-precision path).
        hess: ``(n_features, max_bins)`` hessian sums (same dtype).
        count: ``(n_features, max_bins)`` int64 sample counts.
    """

    grad: np.ndarray
    hess: np.ndarray
    count: np.ndarray

    @property
    def total_grad(self) -> float:
        """Gradient sum over the node (identical for every feature row)."""
        return float(self.grad[0].sum())

    @property
    def total_hess(self) -> float:
        """Hessian sum over the node."""
        return float(self.hess[0].sum())

    @property
    def total_count(self) -> int:
        """Sample count in the node."""
        return int(self.count[0].sum())

    def subtract(self, sibling: "NodeHistogram") -> "NodeHistogram":
        """Histogram of the complement child via the subtraction trick.

        LightGBM builds the smaller child's histogram directly and obtains
        the larger child's as ``parent - smaller`` — halving histogram work.
        """
        return NodeHistogram(
            grad=self.grad - sibling.grad,
            hess=self.hess - sibling.hess,
            count=self.count - sibling.count,
        )


class HistogramBuilder:
    """Reusable histogram kernel over one binned matrix.

    Construct once per boosting run (the transposed matrix costs one
    ``(d, n)`` uint8 materialisation), then call :meth:`build` for every
    tree node.  The builder is read-only with respect to the binned data,
    so one instance serves every tree of an ensemble, including trees fit
    on feature subsets.
    """

    #: Node size (rows) above which the per-feature kernel beats the
    #: fused-index kernel (bincount call overhead amortised).
    _PER_FEATURE_MIN_ROWS = 8192

    def __init__(self, binned: np.ndarray, max_bins: int,
                 hist_dtype: np.dtype | type | str = np.float64):
        binned = np.asarray(binned)
        if binned.ndim != 2:
            raise ValueError("binned must be a 2-D matrix")
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        # Accumulation always happens in float64 (np.bincount's native
        # accumulator); hist_dtype only controls the *stored* histogram
        # dtype — (d, max_bins) arrays, so the float32 cast is cheap and
        # downstream split-gain math runs in reduced precision.
        self.hist_dtype = np.dtype(hist_dtype)
        if self.hist_dtype not in (np.float32, np.float64):
            raise ValueError("hist_dtype must be float32 or float64")
        self.max_bins = int(max_bins)
        self.n_samples, self.n_features = binned.shape
        self._binned = binned
        # One contiguous uint8 row per feature; small enough to stay
        # cache-resident across the thousands of builds of a boosting run.
        self._bins_t = np.ascontiguousarray(binned.T)
        # Reused intp row: bincount takes intp input as-is, skipping the
        # cast-to-intp copy it would otherwise allocate per call.
        self._scratch = np.empty(self.n_samples, dtype=np.intp)
        self._row_ids = np.arange(self.n_samples, dtype=np.int64)
        self._col_ids = np.arange(self.n_features)
        self._weight_buf = np.empty(0, dtype=np.float64)
        self._full_counts_cache: np.ndarray | None = None

    def build(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        sample_indices: np.ndarray | None,
        column_subset: np.ndarray | None = None,
    ) -> NodeHistogram:
        """Accumulate per-bin gradient/hessian/count sums for one node.

        Args:
            gradients: Per-sample gradients ``(n,)`` over the full matrix.
            hessians: Per-sample hessians ``(n,)``.
            sample_indices: Row indices belonging to the node (None for
                all rows).
            column_subset: Optional sorted feature-column indices; the
                returned histogram rows follow subset order, matching a
                tree grown in the subset feature space.

        Returns:
            A :class:`NodeHistogram` with ``(d_sub, max_bins)`` arrays.
        """
        if sample_indices is not None and self._is_all_rows(sample_indices):
            sample_indices = None
        profiler = _active_profiler()
        if profiler is not None:
            n_rows = (
                self.n_samples if sample_indices is None
                else sample_indices.size
            )
            n_cols = (
                self.n_features if column_subset is None
                else len(column_subset)
            )
            with profiler.section(
                "histogram_build",
                rows=int(n_rows),
                cells=int(n_cols) * self.max_bins,
            ):
                return self._dispatch(
                    gradients, hessians, sample_indices, column_subset
                )
        return self._dispatch(
            gradients, hessians, sample_indices, column_subset
        )

    def _dispatch(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        sample_indices: np.ndarray | None,
        column_subset: np.ndarray | None,
    ) -> NodeHistogram:
        """Kernel selection (rows already normalised by :meth:`build`)."""
        if sample_indices is None:
            return self._build_per_feature(
                gradients, hessians, None, column_subset
            )
        if sample_indices.size >= self._PER_FEATURE_MIN_ROWS:
            return self._build_per_feature(
                gradients, hessians, sample_indices, column_subset
            )
        return self._build_fused(
            gradients, hessians, sample_indices, column_subset
        )

    def _is_all_rows(self, sample_indices: np.ndarray) -> bool:
        """True iff ``sample_indices`` is exactly ``arange(n)``.

        Only the identity ordering may skip the row gather: a permutation
        of all rows would accumulate slots in a different order and change
        the low bits of the float sums.
        """
        return sample_indices.size == self.n_samples and bool(
            (sample_indices == self._row_ids).all()
        )

    def _columns(self, column_subset: np.ndarray | None) -> np.ndarray:
        if column_subset is None:
            return self._col_ids
        return np.asarray(column_subset)

    def _full_counts(self) -> np.ndarray:
        """Per-feature bin counts of the full matrix, computed once.

        Counts depend only on the binned values, never on the gradient
        statistics, so every full-row build of every boosting round can
        share them.
        """
        if self._full_counts_cache is None:
            mb = self.max_bins
            out = np.empty((self.n_features, mb), dtype=np.int64)
            bins = self._scratch
            for f in range(self.n_features):
                np.copyto(bins, self._bins_t[f], casting="unsafe")
                out[f] = np.bincount(bins, minlength=mb)
            self._full_counts_cache = out
        return self._full_counts_cache

    def _build_per_feature(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        sample_indices: np.ndarray | None,
        column_subset: np.ndarray | None,
    ) -> NodeHistogram:
        """Large-node kernel: one bincount per (feature, statistic)."""
        columns = self._columns(column_subset)
        mb = self.max_bins
        bc = np.bincount
        grad = np.empty((columns.size, mb), dtype=self.hist_dtype)
        hess = np.empty((columns.size, mb), dtype=self.hist_dtype)

        if sample_indices is None:
            grad_w = np.ascontiguousarray(gradients, dtype=np.float64)
            hess_w = np.ascontiguousarray(hessians, dtype=np.float64)
            counts = self._full_counts()
            count = (
                counts.copy() if column_subset is None else counts[columns]
            )
            bins = self._scratch
            for out, col in enumerate(columns):
                np.copyto(bins, self._bins_t[col], casting="unsafe")
                grad[out] = bc(bins, weights=grad_w, minlength=mb)
                hess[out] = bc(bins, weights=hess_w, minlength=mb)
            return NodeHistogram(grad=grad, hess=hess, count=count)

        grad_w = gradients[sample_indices]
        hess_w = hessians[sample_indices]
        count = np.empty((columns.size, mb), dtype=np.int64)
        bins = self._scratch[: sample_indices.size]
        for out, col in enumerate(columns):
            bins[:] = self._bins_t[col][sample_indices]
            grad[out] = bc(bins, weights=grad_w, minlength=mb)
            hess[out] = bc(bins, weights=hess_w, minlength=mb)
            count[out] = bc(bins, minlength=mb)
        return NodeHistogram(grad=grad, hess=hess, count=count)

    def _build_fused(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        sample_indices: np.ndarray,
        column_subset: np.ndarray | None,
    ) -> NodeHistogram:
        """Small-node kernel: three flat bincounts over fused slot ids."""
        if column_subset is None:
            block = self._binned[sample_indices]
        else:
            block = self._binned[np.ix_(sample_indices, column_subset)]
        n_node, n_cols = block.shape
        offsets = np.arange(n_cols, dtype=np.int64) * self.max_bins
        # Slot of cell (i, f): f * max_bins + bin — int64 so bincount
        # takes the array as-is.
        slots = (block + offsets[None, :]).ravel()
        n_slots = n_cols * self.max_bins

        count = np.bincount(slots, minlength=n_slots)
        grad = np.bincount(
            slots,
            weights=self._expand(gradients[sample_indices], n_cols),
            minlength=n_slots,
        )
        hess = np.bincount(
            slots,
            weights=self._expand(hessians[sample_indices], n_cols),
            minlength=n_slots,
        )
        shape = (n_cols, self.max_bins)
        return NodeHistogram(
            grad=grad.reshape(shape).astype(self.hist_dtype, copy=False),
            hess=hess.reshape(shape).astype(self.hist_dtype, copy=False),
            count=count.reshape(shape),
        )

    def _expand(self, values: np.ndarray, n_cols: int) -> np.ndarray:
        """Tile per-row values across columns into the reusable scratch.

        Returns a ``(len(values) * n_cols,)`` view of the scratch buffer
        where every row value repeats ``n_cols`` times — aligned with the
        row-major ravel of the gathered fused-index block.
        """
        needed = values.size * n_cols
        if self._weight_buf.size < needed:
            self._weight_buf = np.empty(needed, dtype=np.float64)
        out = self._weight_buf[:needed]
        out.reshape(values.size, n_cols)[:] = values[:, None]
        return out


def build_histogram(
    binned: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    sample_indices: np.ndarray,
    max_bins: int,
) -> NodeHistogram:
    """One-shot histogram build (constructs a throwaway builder).

    Prefer a shared :class:`HistogramBuilder` when building many nodes
    over the same binned matrix; this wrapper exists for single builds
    and backward compatibility.

    Args:
        binned: Full ``(n, d)`` uint8 bin-index matrix.
        gradients: Per-sample gradients ``(n,)``.
        hessians: Per-sample hessians ``(n,)``.
        sample_indices: Row indices belonging to the node.
        max_bins: Histogram width (bins per feature).

    Returns:
        A :class:`NodeHistogram` with ``(d, max_bins)`` arrays.
    """
    builder = HistogramBuilder(binned, max_bins)
    return builder.build(gradients, hessians, sample_indices)
