"""From-scratch histogram GBDT (LightGBM substitute) and leaf encoder."""

from repro.gbdt.binning import QuantileBinner
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.histogram import NodeHistogram, build_histogram
from repro.gbdt.leaf_encoder import LeafIndexEncoder
from repro.gbdt.tree import DecisionTree, SplitInfo, TreeParams

__all__ = [
    "QuantileBinner",
    "GBDTClassifier",
    "GBDTParams",
    "NodeHistogram",
    "build_histogram",
    "LeafIndexEncoder",
    "DecisionTree",
    "SplitInfo",
    "TreeParams",
]
