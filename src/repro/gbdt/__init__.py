"""From-scratch histogram GBDT (LightGBM substitute) and leaf encoder."""

from repro.gbdt.binning import QuantileBinner, ReservoirSampler
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.histogram import HistogramBuilder, NodeHistogram, build_histogram
from repro.gbdt.leaf_encoder import LeafIndexEncoder, encode_leaf_matrix
from repro.gbdt.packing import (
    PackedBinnedDataset,
    fit_extractor_encode,
    leaf_encode_environments,
    pack_generated,
)
from repro.gbdt.tree import DecisionTree, FlatTree, SplitInfo, TreeParams

__all__ = [
    "QuantileBinner",
    "ReservoirSampler",
    "PackedBinnedDataset",
    "pack_generated",
    "fit_extractor_encode",
    "leaf_encode_environments",
    "GBDTClassifier",
    "GBDTParams",
    "HistogramBuilder",
    "NodeHistogram",
    "build_histogram",
    "LeafIndexEncoder",
    "encode_leaf_matrix",
    "DecisionTree",
    "FlatTree",
    "SplitInfo",
    "TreeParams",
]
