"""End-to-end GBDT+LR pipeline and the shared feature-extraction stage."""

from repro.pipeline.extractor import GBDTFeatureExtractor, default_gbdt_params
from repro.pipeline.pipeline import LoanDefaultPipeline

__all__ = ["GBDTFeatureExtractor", "default_gbdt_params", "LoanDefaultPipeline"]
