"""End-to-end GBDT+LR loan default prediction pipeline (Fig 2).

Composes the three stages of the paper's model:

1. **Feature extraction** — a GBDT trained on the pooled raw features by
   plain cross-entropy (Section III-C; the GBDT itself is always ERM-trained,
   only the LR head differs between methods).
2. **Leaf encoding** — every tree's leaf index becomes a one-hot categorical
   cross-feature; concatenation yields the sparse multi-hot design matrix.
3. **LR head** — trained by any :class:`~repro.train.base.Trainer`
   (ERM, GroupDRO, V-REx, meta-IRM, LightMIRM, ...) over the per-province
   environments of the encoded data.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import EnvironmentData, LoanDataset
from repro.gbdt.boosting import GBDTParams
from repro.metrics.fairness import FairnessReport, evaluate_environments
from repro.obs.profile import profiled
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.timing import StepTimer
from repro.train.base import EpochCallback, Trainer, TrainResult

__all__ = ["LoanDefaultPipeline"]


class LoanDefaultPipeline:
    """GBDT feature extraction + environment-aware LR head.

    Usage::

        pipeline = LoanDefaultPipeline(LightMIRMTrainer())
        pipeline.fit(train_dataset)
        report = pipeline.evaluate(test_dataset)
        print(report.summary())

    A pre-fitted :class:`~repro.pipeline.extractor.GBDTFeatureExtractor` can
    be supplied to share the (method-independent) extraction stage between
    several heads, which is how the experiment harness runs comparisons.
    """

    def __init__(
        self,
        trainer: Trainer,
        gbdt_params: GBDTParams | None = None,
        extractor: GBDTFeatureExtractor | None = None,
    ):
        if extractor is not None and gbdt_params is not None:
            raise ValueError("pass either gbdt_params or a prefit extractor")
        self.trainer = trainer
        self.extractor = extractor or GBDTFeatureExtractor(gbdt_params)
        self.result_: TrainResult | None = None

    @property
    def is_fitted(self) -> bool:
        return self.result_ is not None

    def fit(
        self,
        train: LoanDataset,
        callback: EpochCallback | None = None,
        timer: StepTimer | None = None,
        tracer: Tracer | None = None,
    ) -> "LoanDefaultPipeline":
        """Fit the GBDT extractor (if needed), encode, train the LR head.

        Args:
            train: Training dataset (multiple provinces required for the
                IRM-family trainers).
            callback: Per-epoch hook forwarded to the LR trainer.
            timer: Optional step timer; the one-off leaf encoding is charged
                to the ``transforming_format`` step (Table III).
            tracer: Optional run tracer.  The GBDT stage runs under kernel
                profiling (histogram builds, boosting rounds, leaf encode)
                and its aggregates land in a ``gbdt_profile`` event; the LR
                stage is traced through the trainer.

        Returns:
            self.

        Raises:
            RuntimeError: If the pipeline is already fitted.  Re-fitting
                silently discarded the previous head (while keeping the old
                GBDT, so the two stages could come from different data);
                call :meth:`reset` first to refit deliberately.
        """
        if self.is_fitted:
            raise RuntimeError(
                "pipeline is already fitted; call reset() before fitting "
                "again, or build a fresh pipeline"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        timer = timer or StepTimer(enabled=tracer.enabled)
        # Attach before the one-off encode so its transforming_format step
        # is mirrored into the log (the trainer re-attaches harmlessly).
        tracer.attach_timer(timer)
        if tracer.enabled:
            with tracer.span("gbdt_stage"), profiled() as profiler:
                if not self.extractor.is_fitted:
                    self.extractor.fit(train)
                with timer.step("transforming_format"):
                    environments = self.extractor.encode_environments(train)
            tracer.event("gbdt_profile", **profiler.snapshot())
        else:
            if not self.extractor.is_fitted:
                self.extractor.fit(train)
            with timer.step("transforming_format"):
                environments = self.extractor.encode_environments(train)
        self.result_ = self.trainer.fit(environments, callback=callback,
                                        timer=timer, tracer=tracer)
        return self

    def encode_environments(self, dataset: LoanDataset) -> list[EnvironmentData]:
        """Per-province environments in the encoded (leaf one-hot) space."""
        return self.extractor.encode_environments(dataset)

    def reset(self) -> "LoanDefaultPipeline":
        """Discard the trained LR head so the pipeline can be refit.

        The fitted GBDT extraction stage is kept — it is method-independent
        and deliberately shareable between heads; pass a fresh pipeline if
        the extractor itself must be retrained.
        """
        self.result_ = None
        return self

    def predict_proba(self, dataset: LoanDataset) -> np.ndarray:
        """Default probabilities for every row, in dataset order.

        For per-environment results (the fine-tuning baseline), rows from
        provinces seen at training time are scored with that province's
        fine-tuned parameters — routed through the unified
        :meth:`~repro.train.base.TrainResult.predict_proba_grouped` surface.
        """
        self._check_fitted()
        encoded = self.extractor.transform(dataset)
        return self.result_.predict_proba_grouped(encoded, dataset.provinces)

    def evaluate(self, test: LoanDataset) -> FairnessReport:
        """Per-province KS/AUC report on a test dataset."""
        self._check_fitted()
        scores = self.predict_proba(test)
        labels_by_env: dict[str, np.ndarray] = {}
        scores_by_env: dict[str, np.ndarray] = {}
        for name in test.province_names():
            mask = test.provinces == name
            labels_by_env[name] = test.labels[mask]
            scores_by_env[name] = scores[mask]
        return evaluate_environments(labels_by_env, scores_by_env)

    @property
    def gbdt_(self):
        """The fitted GBDT model (back-compat accessor)."""
        return self.extractor.model_

    @property
    def encoder_(self):
        """The fitted leaf encoder (back-compat accessor)."""
        return self.extractor.encoder_

    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise RuntimeError("pipeline is not fitted")
