"""GBDT feature-extraction stage, reusable across many LR-head trainers.

Separating the extractor from :class:`~repro.pipeline.pipeline.LoanDefaultPipeline`
lets the experiment harness fit the (method-independent) GBDT once and train
all seven LR heads of Table I against the same encoded design matrix — which
is also exactly how the paper's comparison is set up: the feature extraction
module is shared, only the LR learning paradigm differs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.data.dataset import EnvironmentData, LoanDataset
from repro.data.splits import validation_split
from repro.gbdt.boosting import GBDTClassifier, GBDTParams
from repro.gbdt.leaf_encoder import LeafIndexEncoder

__all__ = ["GBDTFeatureExtractor", "default_gbdt_params"]


def default_gbdt_params() -> GBDTParams:
    """The GBDT configuration used by all experiments.

    ``colsample < 1`` matters beyond regularisation: feature subsampling
    yields some trees that never touch the spurious regional signals, giving
    the IRM-trained head clean leaf indicators to up-weight.
    """
    return GBDTParams(
        n_trees=40, learning_rate=0.1, colsample=0.7, early_stopping_rounds=10
    )


class GBDTFeatureExtractor:
    """Fits the GBDT on pooled data and exposes the leaf one-hot encoding."""

    def __init__(
        self,
        params: GBDTParams | None = None,
        validation_fraction: float = 0.2,
    ):
        self.params = params or default_gbdt_params()
        self.validation_fraction = validation_fraction
        self.model_: GBDTClassifier | None = None
        self.encoder_: LeafIndexEncoder | None = None

    @property
    def is_fitted(self) -> bool:
        return self.encoder_ is not None

    @property
    def n_output_features(self) -> int:
        self._check_fitted()
        return self.encoder_.n_output_features

    def fit(self, train: LoanDataset) -> "GBDTFeatureExtractor":
        """Train the GBDT by pooled cross-entropy (Section III-C)."""
        fit_part, valid_part = self._split(train)
        self.model_ = GBDTClassifier(self.params)
        self.model_.fit(
            fit_part.features,
            fit_part.labels,
            valid_features=valid_part.features if valid_part else None,
            valid_labels=valid_part.labels if valid_part else None,
        )
        self.encoder_ = LeafIndexEncoder(self.model_)
        return self

    def _split(self, train: LoanDataset):
        if (
            self.params.early_stopping_rounds
            and 0.0 < self.validation_fraction < 1.0
            and train.n_samples >= 50
        ):
            split = validation_split(
                train, validation_fraction=self.validation_fraction
            )
            return split.train, split.test
        return train, None

    def transform(self, dataset: LoanDataset) -> sparse.csr_matrix:
        """Encode all rows of a dataset into the multi-hot leaf space."""
        self._check_fitted()
        # Bin once, then route + encode from the shared binned matrix.
        binned = self.model_.bin_features(dataset.features)
        return self.encoder_.transform_binned(binned)

    def encode_environments(self, dataset: LoanDataset) -> list[EnvironmentData]:
        """Per-province environments in the encoded space, sorted by name."""
        encoded = self.transform(dataset)
        return [
            EnvironmentData(
                name,
                encoded[np.flatnonzero(dataset.provinces == name)],
                dataset.labels[dataset.provinces == name],
            )
            for name in dataset.province_names()
        ]

    def _check_fitted(self) -> None:
        if self.encoder_ is None:
            raise RuntimeError("feature extractor is not fitted")
