"""Command-line interface for the LightMIRM reproduction.

Usage (after ``pip install -e .``)::

    python -m repro generate --n-samples 40000 --out platform.npz
    python -m repro train --method LightMIRM --data platform.npz --out model.json
    python -m repro evaluate --model model.json --data platform.npz
    python -m repro experiment table1
    python -m repro bench --out BENCH_gbdt.json
    python -m repro verify --out VERIFY_invariance.json
    python -m repro list

``experiment`` runs one of the paper's tables/figures at a configurable
scale and prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.dataset import LoanDataset
from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.data.splits import temporal_split
from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.metrics.fairness import evaluate_environments
from repro.persist.artifacts import load_pipeline, save_pipeline
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.train.registry import available_trainers, make_trainer

__all__ = ["main", "build_parser"]

#: Experiment id -> (runner, formatter) import paths, resolved lazily.
EXPERIMENTS = {
    "fig1": ("fig1_province_map", "run_fig1", "format_fig1", "context"),
    "fig4": ("fig4_vehicle_mix", "run_fig4", "format_fig4", "dataset"),
    "fig5": ("fig5_online", "run_fig5", "format_fig5", "context"),
    "table1": ("table1_main", "run_table1", "format_table1", "context"),
    "table2": ("table2_sampling", "run_table2", "format_table2", "context"),
    "table3": ("table3_timing", "run_table3", "format_table3", "context"),
    "fig9": ("fig9_mrq_length", "run_fig9", "format_fig9", "context"),
    "table4": ("table4_gamma", "run_table4", "format_table4", "context"),
    "fig10": ("fig10_guangdong_share", "run_fig10", "format_fig10", "dataset"),
    "table5": ("table5_guangdong", "run_table5", "format_table5", "context"),
    "fig11": ("fig11_hubei", "run_fig11", "format_fig11", "context"),
    "table6": ("table6_iid", "run_table6", "format_table6", "context"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightMIRM reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic platform")
    gen.add_argument("--n-samples", type=int, default=40_000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--total-features", type=int, default=60)
    gen.add_argument("--out", required=True, help="output .npz path")

    train = sub.add_parser("train", help="train a GBDT+LR pipeline")
    train.add_argument("--method", default="LightMIRM",
                       help="trainer name (see `repro list`)")
    train.add_argument("--data", required=True, help="dataset .npz path")
    train.add_argument("--out", help="save the fitted model as JSON")
    train.add_argument("--seed", type=int, default=0)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved model")
    evaluate.add_argument("--model", required=True, help="model JSON path")
    evaluate.add_argument("--data", required=True, help="dataset .npz path")

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--n-samples", type=int, default=40_000)
    experiment.add_argument("--data-seed", type=int, default=7)
    experiment.add_argument("--trainer-seeds", type=int, nargs="+",
                            default=[0, 1, 2])

    bench = sub.add_parser(
        "bench", help="run the tracked GBDT perf microbenchmarks"
    )
    bench.add_argument("--out", default="BENCH_gbdt.json",
                       help="output JSON path (default: BENCH_gbdt.json)")
    bench.add_argument("--quick", action="store_true",
                       help="tiny smoke sizes instead of the tracked config")
    bench.add_argument("--repeats", type=int,
                       help="override the per-benchmark repeat count")
    bench.add_argument("--n-rows", type=int, help="override benchmark rows")
    bench.add_argument("--n-features", type=int,
                       help="override benchmark feature count")
    bench.add_argument("--max-bins", type=int,
                       help="override benchmark histogram bins")
    bench.add_argument("--only", nargs="+", metavar="NAME",
                       help="run a subset of benchmarks (see docs)")

    verify = sub.add_parser(
        "verify", help="run the invariance scorecard on the SEM bed"
    )
    verify.add_argument("--out", default="VERIFY_invariance.json",
                        help="output JSON path "
                             "(default: VERIFY_invariance.json)")
    verify.add_argument("--smoke", action="store_true",
                        help="CI-sized bed instead of the tracked config")
    verify.add_argument("--seed", type=int, default=0,
                        help="SEM bed seed (trainer seeds are fixed)")
    verify.add_argument("--n-per-env", type=int,
                        help="override rows per training environment")
    verify.add_argument("--epochs", type=int,
                        help="override trainer epochs")

    sub.add_parser("list", help="list trainers and experiments")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        n_samples=args.n_samples,
        seed=args.seed,
        total_features=args.total_features,
    )
    dataset = LoanDataGenerator(config).generate()
    dataset.save(args.out)
    print(f"wrote {dataset} to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = LoanDataset.load(args.data)
    split = temporal_split(dataset)
    pipeline = LoanDefaultPipeline(make_trainer(args.method, seed=args.seed))
    pipeline.fit(split.train)
    report = pipeline.evaluate(split.test)
    summary = report.summary()
    print(
        f"{args.method}: "
        + "  ".join(f"{k}={v:.4f}" for k, v in summary.items())
        + f"  (worst province: {report.worst_ks_environment})"
    )
    if args.out:
        save_pipeline(pipeline, args.out,
                      metadata={"method": args.method, "seed": args.seed})
        print(f"saved model to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    scorer = load_pipeline(args.model)
    dataset = LoanDataset.load(args.data)
    test = temporal_split(dataset).test
    scores = scorer.predict_proba(test)
    labels_by_env = {
        name: test.labels[test.provinces == name]
        for name in test.province_names()
    }
    scores_by_env = {
        name: scores[test.provinces == name]
        for name in test.province_names()
    }
    report = evaluate_environments(labels_by_env, scores_by_env)
    print(f"model: {scorer.trainer_name} (metadata: {scorer.metadata})")
    for name, env_scores in report.per_environment.items():
        print(f"  {name:14s} KS={env_scores.ks:.4f} AUC={env_scores.auc:.4f}")
    summary = report.summary()
    print("  " + "  ".join(f"{k}={v:.4f}" for k, v in summary.items()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module_name, run_name, format_name, input_kind = EXPERIMENTS[args.id]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    run = getattr(module, run_name)
    formatter = getattr(module, format_name)
    split = "iid" if args.id == "table6" else "temporal"
    context = ExperimentContext(
        ExperimentSettings(
            n_samples=args.n_samples,
            data_seed=args.data_seed,
            trainer_seeds=tuple(args.trainer_seeds),
            split=split,
        )
    )
    result = run(context.dataset if input_kind == "dataset" else context)
    print(formatter(result))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.perfbench import (
        BenchConfig, run_suite, summarize, write_bench_json,
    )

    config = BenchConfig.smoke() if args.quick else BenchConfig()
    overrides = {
        name: getattr(args, name)
        for name in ("repeats", "n_rows", "n_features", "max_bins")
        if getattr(args, name) is not None
    }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    results = run_suite(config, only=args.only)
    print(summarize(results))
    write_bench_json(args.out, results, config)
    print(f"wrote {args.out}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.verify import (
        SEMConfig, VerifyConfig, run_verification, summarize_verification,
        write_verify_json,
    )

    config = (VerifyConfig.smoke(seed=args.seed) if args.smoke
              else VerifyConfig(sem=SEMConfig(seed=args.seed)))
    if args.n_per_env is not None:
        config = dataclasses.replace(
            config, sem=dataclasses.replace(config.sem,
                                            n_per_env=args.n_per_env)
        )
    if args.epochs is not None:
        config = dataclasses.replace(config, n_epochs=args.epochs)
    payload = run_verification(config)
    print(summarize_verification(payload))
    write_verify_json(args.out, payload)
    print(f"wrote {args.out}")
    return 0 if payload["all_passed"] else 1


def _cmd_list(_: argparse.Namespace) -> int:
    print("trainers:")
    for name in available_trainers():
        print(f"  {name}")
    print('  meta-IRM(S)  # sampled variant, e.g. "meta-IRM(5)"')
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "experiment": _cmd_experiment,
    "bench": _cmd_bench,
    "verify": _cmd_verify,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
