"""Command-line interface for the LightMIRM reproduction.

Usage (after ``pip install -e .``)::

    python -m repro generate --n-samples 40000 --out platform.npz
    python -m repro train --method LightMIRM --data platform.npz --out model.json
    python -m repro train --method LightMIRM --data platform.npz --registry reg/
    python -m repro evaluate --model model.json --data platform.npz
    python -m repro registry list --root reg/
    python -m repro registry promote --root reg/ --version v0002
    python -m repro serve-score --registry reg/ --data platform.npz
    python -m repro serve-run --registry reg/ --data platform.npz --workers 4
    python -m repro serve-run --registry reg/ --data platform.npz \\
        --workers 4 --metrics-port 9100 --trace serve.jsonl
    python -m repro obs top --url http://127.0.0.1:9100
    python -m repro experiment table1
    python -m repro experiment table1 --jobs 4
    python -m repro bench --out BENCH_gbdt.json
    python -m repro bench --jobs 2 4 8 --parallel-out BENCH_parallel.json
    python -m repro serve-bench --out BENCH_serving.json
    python -m repro scale-bench --out BENCH_scale.json
    python -m repro scale-bench --smoke --save-model scale_model.json
    python -m repro serve-bench --model scale_model.json
    python -m repro verify --out VERIFY_invariance.json
    python -m repro tune --trainers LightMIRM IRMv1 --jobs 4
    python -m repro tune --smoke --trace tune.jsonl
    python -m repro train --method LightMIRM --data platform.npz --trace run.jsonl
    python -m repro obs report run.jsonl
    python -m repro list

``experiment`` runs one of the paper's tables/figures at a configurable
scale and prints the same rows/series the paper reports.  ``--trace PATH``
(on ``train``, ``verify``, ``serve-bench`` and ``experiment``) records a
structured JSONL run log; ``repro obs report|summary|diff`` renders it
offline (see ``docs/observability.md``).  ``serve-run --metrics-port``
turns on the live telemetry plane (Prometheus + JSON exposition, online
drift/SLO monitors, health alerts) and ``repro obs top`` watches it.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.dataset import LoanDataset
from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.data.splits import temporal_split
from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.metrics.fairness import evaluate_environments
from repro.obs.runlog import run_manifest_fields
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pipeline.pipeline import LoanDefaultPipeline
from repro.serve.registry import ModelRegistry
from repro.train.registry import make_trainer, trainer_names

__all__ = ["main", "build_parser"]

#: Experiment id -> (runner, formatter) import paths, resolved lazily.
EXPERIMENTS = {
    "fig1": ("fig1_province_map", "run_fig1", "format_fig1", "context"),
    "fig4": ("fig4_vehicle_mix", "run_fig4", "format_fig4", "dataset"),
    "fig5": ("fig5_online", "run_fig5", "format_fig5", "context"),
    "table1": ("table1_main", "run_table1", "format_table1", "context"),
    "table2": ("table2_sampling", "run_table2", "format_table2", "context"),
    "table3": ("table3_timing", "run_table3", "format_table3", "context"),
    "fig9": ("fig9_mrq_length", "run_fig9", "format_fig9", "context"),
    "table4": ("table4_gamma", "run_table4", "format_table4", "context"),
    "fig10": ("fig10_guangdong_share", "run_fig10", "format_fig10", "dataset"),
    "table5": ("table5_guangdong", "run_table5", "format_table5", "context"),
    "fig11": ("fig11_hubei", "run_fig11", "format_fig11", "context"),
    "table6": ("table6_iid", "run_table6", "format_table6", "context"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightMIRM reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic platform")
    gen.add_argument("--n-samples", type=int, default=40_000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--total-features", type=int, default=60)
    gen.add_argument("--out", required=True, help="output .npz path")

    train = sub.add_parser("train", help="train a GBDT+LR pipeline")
    train.add_argument("--method", default="LightMIRM",
                       help="trainer name or alias (see `repro list`)")
    train.add_argument("--data", required=True, help="dataset .npz path")
    train.add_argument("--out", help="save the fitted model as JSON")
    train.add_argument("--registry",
                       help="save the fitted model as a new registry version")
    train.add_argument("--slot", choices=("champion", "challenger"),
                       help="promote the saved version into a slot "
                            "(with --registry)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--epochs", type=int,
                       help="override the trainer's epoch count")
    train.add_argument("--trace", metavar="PATH",
                       help="write a structured JSONL run log")

    evaluate = sub.add_parser("evaluate", help="evaluate a saved model")
    evaluate.add_argument("--model", required=True, help="model JSON path")
    evaluate.add_argument("--data", required=True, help="dataset .npz path")

    registry = sub.add_parser(
        "registry", help="inspect or mutate a model registry"
    )
    registry.add_argument("action",
                          choices=("list", "promote", "rollback", "show"))
    registry.add_argument("--root", required=True, help="registry directory")
    registry.add_argument("--version", help="version id (promote/show)")
    registry.add_argument("--slot", default="champion",
                          choices=("champion", "challenger"),
                          help="slot for promote/rollback")

    serve = sub.add_parser(
        "serve-score",
        help="score a dataset through the micro-batched scoring service",
    )
    serve.add_argument("--registry", required=True, help="registry directory")
    serve.add_argument("--data", required=True, help="dataset .npz path")
    serve.add_argument("--batch-size", type=int, default=256)
    serve.add_argument("--cache-size", type=int, default=0,
                       help="leaf-pattern LRU entries (0 disables)")
    serve.add_argument("--limit", type=int,
                       help="score only the first N test rows")
    serve.add_argument("--drift-threshold", type=float,
                       help="enable the PSI drift guard at this threshold")

    serve_run = sub.add_parser(
        "serve-run",
        help="score a dataset through the multi-worker shared-memory "
             "front-end",
    )
    serve_run.add_argument("--registry", required=True,
                           help="registry directory")
    serve_run.add_argument("--data", required=True, help="dataset .npz path")
    serve_run.add_argument("--workers", type=int, default=2,
                           help="scoring worker processes (default: 2)")
    serve_run.add_argument("--batch-size", type=int, default=64,
                           help="per-worker micro-batch size")
    serve_run.add_argument("--max-queue", type=int, default=1024,
                           help="admission bound before requests shed")
    serve_run.add_argument("--limit", type=int,
                           help="score only the first N test rows")
    serve_run.add_argument("--drift-threshold", type=float,
                           help="enable the PSI drift guard at this "
                                "threshold")
    serve_run.add_argument("--repeat", type=int, default=1,
                           help="score the row stream N times (soak runs)")
    serve_run.add_argument("--metrics-port", type=int, metavar="PORT",
                           help="enable the live telemetry plane and serve "
                                "Prometheus text + JSON snapshots on this "
                                "port (0 picks an ephemeral port)")
    serve_run.add_argument("--metrics-snapshot", metavar="PATH",
                           help="enable the live telemetry plane and append "
                                "periodic JSON snapshot lines to PATH "
                                "(headless CI alternative to a scraper)")
    serve_run.add_argument("--snapshot-interval", type=float, default=2.0,
                           help="seconds between --metrics-snapshot lines")
    serve_run.add_argument("--trace", metavar="PATH",
                           help="write a structured JSONL run log (health "
                                "alerts and transitions land here)")

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--n-samples", type=int, default=40_000)
    experiment.add_argument("--data-seed", type=int, default=7)
    experiment.add_argument("--trainer-seeds", type=int, nargs="+",
                            default=[0, 1, 2])
    experiment.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the trainer fan-out "
                                 "(results are bit-identical to --jobs 1)")
    experiment.add_argument("--trace", metavar="PATH",
                            help="write a structured JSONL run log")

    bench = sub.add_parser(
        "bench", help="run the tracked GBDT perf microbenchmarks"
    )
    bench.add_argument("--out", default="BENCH_gbdt.json",
                       help="output JSON path (default: BENCH_gbdt.json)")
    bench.add_argument("--quick", action="store_true",
                       help="tiny smoke sizes instead of the tracked config")
    bench.add_argument("--repeats", type=int,
                       help="override the per-benchmark repeat count")
    bench.add_argument("--n-rows", type=int, help="override benchmark rows")
    bench.add_argument("--n-features", type=int,
                       help="override benchmark feature count")
    bench.add_argument("--max-bins", type=int,
                       help="override benchmark histogram bins")
    bench.add_argument("--only", nargs="+", metavar="NAME",
                       help="run a subset of benchmarks (see docs)")
    bench.add_argument("--jobs", type=int, nargs="+", metavar="N",
                       help="run the parallel-scaling suite instead: "
                            "experiment fan-out serial vs each worker "
                            "count, written to --parallel-out")
    bench.add_argument("--parallel-out", default="BENCH_parallel.json",
                       help="output JSON path for --jobs "
                            "(default: BENCH_parallel.json)")

    serve_bench = sub.add_parser(
        "serve-bench", help="run the tracked serving benchmarks"
    )
    serve_bench.add_argument("--out", default="BENCH_serving.json",
                             help="output JSON path "
                                  "(default: BENCH_serving.json)")
    serve_bench.add_argument("--quick", action="store_true",
                             help="tiny smoke sizes instead of the tracked "
                                  "config")
    serve_bench.add_argument("--only", nargs="+", metavar="NAME",
                             help="run a subset of serving benchmarks")
    serve_bench.add_argument("--model", metavar="PATH",
                             help="serve a saved artifact (e.g. the scale "
                                  "bench's --save-model output) instead of "
                                  "training the fixture")
    serve_bench.add_argument("--workers", type=int, nargs="+", metavar="N",
                             help="worker counts for the multi-worker "
                                  "scenario (default: 1 2 4; 1 2 with "
                                  "--quick)")
    serve_bench.add_argument("--trace", metavar="PATH",
                             help="write a structured JSONL run log")

    scale_bench = sub.add_parser(
        "scale-bench",
        help="run the paper-scale end-to-end benchmark (wall-clock + RSS)",
    )
    scale_bench.add_argument("--out", default="BENCH_scale.json",
                             help="output JSON path "
                                  "(default: BENCH_scale.json)")
    scale_bench.add_argument("--smoke", action="store_true",
                             help="one 20k-row point instead of the "
                                  "tracked 100k/500k/1.4M configuration")
    scale_bench.add_argument("--rows", type=int, nargs="+", metavar="N",
                             help="override the measured row counts")
    scale_bench.add_argument("--dtype", choices=("float32", "float64"),
                             help="override the GBDT hot-path dtype")
    scale_bench.add_argument("--chunk-rows", type=int,
                             help="override the streaming chunk size")
    scale_bench.add_argument("--no-isolate", action="store_true",
                             help="run points in-process (faster, but peak "
                                  "RSS becomes the parent's lifetime peak)")
    scale_bench.add_argument("--save-model", metavar="PATH",
                             help="save the largest point's trained "
                                  "pipeline as a serving artifact")

    verify = sub.add_parser(
        "verify", help="run the invariance scorecard on the SEM bed"
    )
    verify.add_argument("--out", default="VERIFY_invariance.json",
                        help="output JSON path "
                             "(default: VERIFY_invariance.json)")
    verify.add_argument("--smoke", action="store_true",
                        help="CI-sized bed instead of the tracked config")
    verify.add_argument("--seed", type=int, default=0,
                        help="SEM bed seed (trainer seeds are fixed)")
    verify.add_argument("--n-per-env", type=int,
                        help="override rows per training environment")
    verify.add_argument("--epochs", type=int,
                        help="override trainer epochs")
    verify.add_argument("--trace", metavar="PATH",
                        help="write a structured JSONL run log")

    tune = sub.add_parser(
        "tune",
        help="ASHA hyper-parameter search over the parallel engine",
    )
    tune.add_argument("--trainers", nargs="+", metavar="NAME",
                      default=["LightMIRM"],
                      help="trainers to search with their registered "
                           "default spaces (default: LightMIRM)")
    tune.add_argument("--trials", type=int, default=9,
                      help="configurations sampled per trainer")
    tune.add_argument("--eta", type=int, default=3,
                      help="halving rate between rungs")
    tune.add_argument("--min-epochs", type=int, default=5,
                      help="epoch budget of rung 0")
    tune.add_argument("--max-epochs", type=int, default=45,
                      help="epoch budget cap of the last rung")
    tune.add_argument("--objective", default="blend",
                      choices=("mKS", "wKS", "mAUC", "wAUC", "blend"),
                      help="trial-ranking metric (default: blend)")
    tune.add_argument("--blend-weight", type=float, default=0.5,
                      help="worst-province weight of the blend objective")
    tune.add_argument("--validation-fraction", type=float, default=0.25,
                      help="held-out share of each training environment")
    tune.add_argument("--n-samples", type=int, default=40_000,
                      help="synthetic platform size")
    tune.add_argument("--data-seed", type=int, default=7,
                      help="seed of the synthetic platform")
    tune.add_argument("--seed", type=int, default=0,
                      help="search seed (split, sampling, trial seeds)")
    tune.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the trial fan-out "
                           "(results are bit-identical to --jobs 1)")
    tune.add_argument("--trace", metavar="PATH",
                      help="write a structured JSONL run log (also the "
                           "search's resumable state)")
    tune.add_argument("--resume", metavar="RUNLOG",
                      help="replay matching trials from a previous "
                           "run's --trace log instead of retraining")
    tune.add_argument("--out", default="TUNE_leaderboard.json",
                      help="leaderboard JSON path "
                           "(default: TUNE_leaderboard.json)")
    tune.add_argument("--registry", metavar="DIR",
                      help="refit the winning trial and import it as "
                           "the registry's challenger")
    tune.add_argument("--smoke", action="store_true",
                      help="CI-sized search: 2-rung ASHA over ERM and "
                           "LightMIRM on a small generator")
    tune.add_argument("--joint", action="store_true",
                      help="search the GBDT extractor jointly with each "
                           "head (default extractor space; distinct "
                           "extractor encodings are fitted once and "
                           "shared through the shm cache)")
    tune.add_argument("--extractors", type=int, default=3,
                      help="distinct extractor configurations shared "
                           "round-robin across --joint trials")
    tune.add_argument("--cache-bytes", type=int, metavar="BYTES",
                      help="LRU budget of the --joint encoding cache "
                           "(default: unbounded)")
    tune.add_argument("--no-cache", action="store_true",
                      help="--joint only: re-encode inline per trial "
                           "instead of using the cache (bit-identical, "
                           "slower; for verification)")

    tune_bench = sub.add_parser(
        "tune-bench",
        help="benchmark the joint search cached vs uncached "
             "(BENCH_tune.json)",
    )
    tune_bench.add_argument("--out", default="BENCH_tune.json",
                            help="output path (default: BENCH_tune.json)")
    tune_bench.add_argument("--smoke", action="store_true",
                            help="tiny CI-sized comparison")
    tune_bench.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the trial fan-out")

    obs = sub.add_parser(
        "obs",
        help="render a run log (report/summary/diff) or the live plane "
             "(top)",
    )
    obs.add_argument("action", choices=("report", "summary", "diff", "top"))
    obs.add_argument("paths", nargs="*", metavar="RUNLOG",
                     help="run log path (diff takes exactly two; top takes "
                          "none)")
    obs.add_argument("--max-curve-rows", type=int, default=20,
                     help="rows per convergence-curve table in `report`")
    obs.add_argument("--url", metavar="URL",
                     help="top: exporter base URL "
                          "(e.g. http://127.0.0.1:9100)")
    obs.add_argument("--file", metavar="PATH",
                     help="top: tail a --metrics-snapshot file instead")
    obs.add_argument("--interval", type=float, default=2.0,
                     help="top: refresh period in seconds")
    obs.add_argument("--iterations", type=int,
                     help="top: stop after N redraws (default: until ^C)")

    sub.add_parser("list", help="list trainers and experiments")
    return parser


def _make_tracer(args: argparse.Namespace, command: str, **fields) -> Tracer:
    """Tracer for a CLI run: opens ``--trace`` and writes the manifest."""
    if getattr(args, "trace", None) is None:
        return NULL_TRACER
    tracer = Tracer(path=args.trace)
    tracer.write_manifest(**run_manifest_fields(command, **fields))
    return tracer


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        n_samples=args.n_samples,
        seed=args.seed,
        total_features=args.total_features,
    )
    dataset = LoanDataGenerator(config).generate()
    dataset.save(args.out)
    print(f"wrote {dataset} to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = LoanDataset.load(args.data)
    split = temporal_split(dataset)
    overrides = {} if args.epochs is None else {"n_epochs": args.epochs}
    trainer = make_trainer(args.method, seed=args.seed, **overrides)
    tracer = _make_tracer(
        args, "train",
        config={"method": args.method, **overrides},
        seed=args.seed,
        dataset=split.train,
        method=args.method,
        data=args.data,
    )
    pipeline = LoanDefaultPipeline(trainer)
    pipeline.fit(split.train, tracer=tracer)
    tracer.write_metrics()
    tracer.close()
    if args.trace:
        print(f"wrote run log to {args.trace}")
    report = pipeline.evaluate(split.test)
    summary = report.summary()
    print(
        f"{args.method}: "
        + "  ".join(f"{k}={v:.4f}" for k, v in summary.items())
        + f"  (worst province: {report.worst_ks_environment})"
    )
    metadata = {"method": args.method, "seed": args.seed}
    if args.out:
        ModelRegistry.save_file(pipeline, args.out, metadata=metadata)
        print(f"saved model to {args.out}")
    if args.registry:
        registry = ModelRegistry(args.registry)
        version = registry.save(pipeline, metadata=metadata, slot=args.slot)
        print(f"saved registry version {version} "
              f"(slots: {registry.slots()})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    scorer = ModelRegistry.load_file(args.model)
    dataset = LoanDataset.load(args.data)
    test = temporal_split(dataset).test
    scores = scorer.predict_proba(test)
    labels_by_env = {
        name: test.labels[test.provinces == name]
        for name in test.province_names()
    }
    scores_by_env = {
        name: scores[test.provinces == name]
        for name in test.province_names()
    }
    report = evaluate_environments(labels_by_env, scores_by_env)
    print(f"model: {scorer.trainer_name} (metadata: {scorer.metadata})")
    for name, env_scores in report.per_environment.items():
        print(f"  {name:14s} KS={env_scores.ks:.4f} AUC={env_scores.auc:.4f}")
    summary = report.summary()
    print("  " + "  ".join(f"{k}={v:.4f}" for k, v in summary.items()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module_name, run_name, format_name, input_kind = EXPERIMENTS[args.id]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    run = getattr(module, run_name)
    formatter = getattr(module, format_name)
    split = "iid" if args.id == "table6" else "temporal"
    tracer = _make_tracer(
        args, "experiment",
        config={"id": args.id, "n_samples": args.n_samples, "split": split,
                "jobs": args.jobs},
        seed=args.data_seed,
    )
    context = ExperimentContext(
        ExperimentSettings(
            n_samples=args.n_samples,
            data_seed=args.data_seed,
            trainer_seeds=tuple(args.trainer_seeds),
            split=split,
            n_jobs=args.jobs,
        ),
        tracer=tracer,
    )
    result = run(context.dataset if input_kind == "dataset" else context)
    tracer.close()
    if getattr(args, "trace", None):
        print(f"wrote run log to {args.trace}")
    print(formatter(result))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.perfbench import (
        BenchConfig, run_suite, summarize, write_bench_json,
    )

    if args.jobs:
        from repro.perfbench import (
            ParallelBenchConfig, run_parallel_suite, summarize_parallel,
            write_parallel_bench_json,
        )

        parallel_config = (ParallelBenchConfig.smoke() if args.quick
                           else ParallelBenchConfig())
        parallel_config = dataclasses.replace(
            parallel_config, worker_counts=tuple(args.jobs)
        )
        results = run_parallel_suite(parallel_config)
        print(summarize_parallel(results))
        write_parallel_bench_json(args.parallel_out, results,
                                  parallel_config)
        print(f"wrote {args.parallel_out}")
        return 0

    config = BenchConfig.smoke() if args.quick else BenchConfig()
    overrides = {
        name: getattr(args, name)
        for name in ("repeats", "n_rows", "n_features", "max_bins")
        if getattr(args, name) is not None
    }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    results = run_suite(config, only=args.only)
    print(summarize(results))
    write_bench_json(args.out, results, config)
    print(f"wrote {args.out}")
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.root)
    if args.action == "list":
        slots = registry.slots()
        by_version = {v: s for s, v in slots.items()}
        for entry in registry.versions():
            marker = f"  <- {by_version[entry.version]}" \
                if entry.version in by_version else ""
            print(f"{entry.version}  {entry.trainer_name:20s} "
                  f"{entry.metadata}{marker}")
        if not registry.versions():
            print("(empty registry)")
        return 0
    if args.action == "show":
        if not args.version:
            print("--version is required for show", file=sys.stderr)
            return 2
        entry = registry.describe(args.version)
        print(f"version:  {entry.version}")
        print(f"trainer:  {entry.trainer_name}")
        print(f"path:     {entry.path}")
        print(f"metadata: {entry.metadata}")
        return 0
    if args.action == "promote":
        if not args.version:
            print("--version is required for promote", file=sys.stderr)
            return 2
        registry.promote(args.version, slot=args.slot)
        print(f"promoted {args.version} to {args.slot} "
              f"(slots: {registry.slots()})")
        return 0
    registry_version = registry.rollback(slot=args.slot)
    print(f"rolled back {args.slot} to {registry_version} "
          f"(slots: {registry.slots()})")
    return 0


def _cmd_serve_score(args: argparse.Namespace) -> int:
    from repro.serve.degradation import DriftGuard
    from repro.serve.service import ScoringService, ServiceConfig

    registry = ModelRegistry(args.registry)
    dataset = LoanDataset.load(args.data)
    split = temporal_split(dataset)
    rows = split.test.features
    if args.limit is not None:
        rows = rows[: args.limit]

    guard = None
    if args.drift_threshold is not None:
        from repro.monitor.streaming import StreamingPSI

        guard = DriftGuard(
            StreamingPSI.from_dataset(split.train),
            psi_threshold=args.drift_threshold,
        )
    service = ScoringService.from_registry(
        registry,
        config=ServiceConfig(max_batch_size=args.batch_size,
                             cache_size=args.cache_size),
        drift_guard=guard,
    )
    tickets = [service.submit(row) for row in rows]
    service.flush()
    scores = [t.score for t in tickets]
    print(f"scored {len(scores)} rows "
          f"(mean p={sum(scores) / len(scores):.4f}, "
          f"serving slot: {service.snapshot()['serving']})")
    print(service.telemetry.summary())
    if guard is not None:
        state = guard.snapshot()
        print(f"drift guard     max_psi={state['max_psi']:.4f} "
              f"tripped={state['tripped']}")
    return 0


def _cmd_serve_run(args: argparse.Namespace) -> int:
    from repro.serve.degradation import DriftGuard
    from repro.serve.frontend import FrontendConfig, ScoringFrontend

    registry = ModelRegistry(args.registry)
    dataset = LoanDataset.load(args.data)
    split = temporal_split(dataset)
    rows = split.test.features
    provinces = split.test.provinces
    if args.limit is not None:
        rows = rows[: args.limit]
        provinces = provinces[: args.limit]

    guard = None
    if args.drift_threshold is not None:
        from repro.monitor.streaming import StreamingPSI

        guard = DriftGuard(
            StreamingPSI.from_dataset(split.train),
            psi_threshold=args.drift_threshold,
        )

    live = args.metrics_port is not None or args.metrics_snapshot is not None
    pipeline = registry.load("champion")
    monitors: dict = {}
    tracer = NULL_TRACER
    if live:
        from repro.obs.live import (
            CalibrationMonitor, HealthMonitor, ScoreDriftMonitor, SLOConfig,
            SLOTracker,
        )

        # Baseline the score monitors on the champion's own training
        # scores: that is the distribution it was gated on, so any walk
        # away from it is drift by definition.
        baseline_rows = split.train.features[:5000]
        baseline_scores = pipeline.predict_proba(baseline_rows)
        tracer = _make_tracer(
            args, "serve-run",
            config={"workers": args.workers, "batch_size": args.batch_size},
        )
        monitors = {
            "score_drift": ScoreDriftMonitor(
                baseline_scores,
                window_rows=max(50, min(500, len(rows) // 4 or 50)),
            ),
            "calibration": CalibrationMonitor(
                reference_mean=float(baseline_scores.mean())
            ),
            "slo_tracker": SLOTracker([
                SLOConfig("admission", error_budget=0.01),
                SLOConfig("latency", error_budget=0.05),
            ]),
            "health_monitor": HealthMonitor(tracer=tracer),
        }
    frontend = ScoringFrontend(
        pipeline,
        FrontendConfig(n_workers=args.workers,
                       max_batch_size=args.batch_size,
                       max_queue=args.max_queue,
                       live_metrics=live),
        drift_guard=guard,
        **monitors,
    )
    frontend.start()
    exporter = writer = None
    try:
        if args.metrics_port is not None:
            from repro.obs.live import MetricsExporter

            exporter = MetricsExporter(frontend.live_snapshot,
                                       port=args.metrics_port)
            port = exporter.start()
            print(f"metrics         http://127.0.0.1:{port}/metrics "
                  f"(JSON at /snapshot)")
        if args.metrics_snapshot is not None:
            from repro.obs.live import SnapshotFileWriter

            writer = SnapshotFileWriter(frontend.live_snapshot,
                                        args.metrics_snapshot,
                                        interval_s=args.snapshot_interval)
            writer.start()
        results = []
        for _ in range(max(1, args.repeat)):
            results.extend(frontend.score_stream(rows, provinces=provinces))
        snap = frontend.snapshot()  # before stop() retires the packs
    finally:
        if writer is not None:
            writer.stop()
        if exporter is not None:
            exporter.stop()
        frontend.stop()
        tracer.close()
    scored = [r.score for r in results if r.ok]
    latency = snap["telemetry"]["request_latency"]
    print(f"scored {len(scored)}/{len(results)} rows across "
          f"{args.workers} workers "
          f"(mean p={sum(scored) / max(len(scored), 1):.4f}, "
          f"generation {snap['generation']})")
    print(f"latency         p50 {latency['p50_s'] * 1e3:.3f} ms   "
          f"p99 {latency['p99_s'] * 1e3:.3f} ms")
    print(f"admission       admitted={snap['telemetry']['admitted']} "
          f"shed={snap['telemetry']['shed']} "
          f"errors={snap['telemetry']['errors']}")
    if guard is not None:
        state = guard.snapshot()
        print(f"drift guard     max_psi={state['max_psi']:.4f} "
              f"tripped={state['tripped']}")
    workers = snap.get("workers")
    if workers is not None:
        hit_rate = workers.get("cache_hit_rate")
        hit = "n/a" if hit_rate is None else f"{hit_rate:.2%}"
        print(f"workers         rows={workers['counters']['rows_scored']} "
              f"batches={workers['counters']['batches']} "
              f"cache_hit_rate={hit} "
              f"reporting={workers['workers_reporting']}")
    if live:
        health = frontend.health_monitor.snapshot()
        print(f"health          state={health['state']} "
              f"alerts={health['n_alerts']}")
        if args.metrics_snapshot is not None:
            print(f"wrote snapshots to {args.metrics_snapshot}")
    if args.trace:
        print(f"wrote run log to {args.trace}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.perfbench import (
        ServingBenchConfig, run_serving_suite, summarize_serving,
        write_serving_bench_json,
    )

    config = (ServingBenchConfig.smoke() if args.quick
              else ServingBenchConfig())
    if args.workers:
        config = dataclasses.replace(
            config, worker_counts=tuple(args.workers)
        )
    tracer = _make_tracer(
        args, "serve-bench",
        config={"quick": bool(args.quick)},
        seed=config.seed,
    )
    results = run_serving_suite(config, only=args.only, tracer=tracer,
                                model_path=args.model)
    tracer.close()
    if args.trace:
        print(f"wrote run log to {args.trace}")
    print(summarize_serving(results))
    write_serving_bench_json(args.out, results, config)
    print(f"wrote {args.out}")
    return 0


def _cmd_scale_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.perfbench import (
        ScaleBenchConfig, dtype_tolerance_check, run_scale_suite,
        summarize_scale, write_scale_bench_json,
    )

    config = ScaleBenchConfig.smoke() if args.smoke else ScaleBenchConfig()
    overrides = {}
    if args.rows:
        overrides["row_counts"] = tuple(args.rows)
    if args.dtype:
        overrides["dtype"] = args.dtype
    if args.chunk_rows:
        overrides["chunk_rows"] = args.chunk_rows
    if overrides:
        config = dataclasses.replace(config, **overrides)

    tolerance = dtype_tolerance_check(config)
    status = "passed" if tolerance["passed"] else "FAILED"
    print(f"float32 tolerance {status}: "
          f"|dAUC|={tolerance['auc_delta']:.5f} "
          f"(<= {tolerance['auc_tolerance']})  "
          f"|dKS|={tolerance['ks_delta']:.5f} "
          f"(<= {tolerance['ks_tolerance']})")
    results = run_scale_suite(config, isolate=not args.no_isolate,
                              save_model=args.save_model)
    print(summarize_scale(results))
    write_scale_bench_json(args.out, results, config, tolerance)
    print(f"wrote {args.out}")
    if args.save_model:
        print(f"saved scale model to {args.save_model}")
    return 0 if tolerance["passed"] else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.verify import (
        SEMConfig, VerifyConfig, run_verification, summarize_verification,
        write_verify_json,
    )

    config = (VerifyConfig.smoke(seed=args.seed) if args.smoke
              else VerifyConfig(sem=SEMConfig(seed=args.seed)))
    if args.n_per_env is not None:
        config = dataclasses.replace(
            config, sem=dataclasses.replace(config.sem,
                                            n_per_env=args.n_per_env)
        )
    if args.epochs is not None:
        config = dataclasses.replace(config, n_epochs=args.epochs)
    tracer = _make_tracer(
        args, "verify",
        config={"smoke": bool(args.smoke), "n_epochs": config.n_epochs},
        seed=args.seed,
    )
    payload = run_verification(config, tracer=tracer)
    tracer.close()
    if args.trace:
        print(f"wrote run log to {args.trace}")
    print(summarize_verification(payload))
    write_verify_json(args.out, payload)
    print(f"wrote {args.out}")
    return 0 if payload["all_passed"] else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    import dataclasses
    import tempfile

    from repro.train.registry import resolve_trainer_name
    from repro.tune import (
        ASHAConfig,
        HPSpace,
        build_leaderboard,
        default_extractor_space,
        default_space,
        load_trial_records,
        run_asha,
        run_joint_asha,
        write_leaderboard,
    )

    if args.smoke:
        trainers = ["ERM", "LightMIRM"]
        config = ASHAConfig(
            n_trials=4, eta=2, min_epochs=4, max_epochs=8,
            objective=args.objective, blend_weight=args.blend_weight,
            validation_fraction=args.validation_fraction, seed=args.seed,
        )
        n_samples = 3_000
    else:
        trainers = list(args.trainers)
        config = ASHAConfig(
            n_trials=args.trials, eta=args.eta,
            min_epochs=args.min_epochs, max_epochs=args.max_epochs,
            objective=args.objective, blend_weight=args.blend_weight,
            validation_fraction=args.validation_fraction, seed=args.seed,
        )
        n_samples = args.n_samples
    # Resolve (and validate) names up front so a typo fails before any
    # data is generated.
    trainers = [resolve_trainer_name(name) for name in trainers]

    resume = None
    if args.resume:
        resume = load_trial_records(args.resume)
        print(f"resuming: {len(resume)} trial records from {args.resume}")

    joint_fields = {}
    if args.joint:
        joint_fields = {"joint": True, "n_extractors": args.extractors,
                       "cached": not args.no_cache,
                       "cache_bytes": args.cache_bytes}
    tracer = _make_tracer(
        args, "tune",
        config={**dataclasses.asdict(config), "trainers": trainers,
                "n_samples": n_samples, "jobs": args.jobs, **joint_fields},
        seed=args.seed,
    )
    context = ExperimentContext(
        ExperimentSettings(n_samples=n_samples, data_seed=args.data_seed)
    )
    if args.joint:
        # Joint searches own the encoding: hand them the *raw*
        # per-province environments, not the GBDT-encoded ones.
        raw_environments = context.split.train.environments()
    results = []
    for name in trainers:
        if args.joint:
            result, stats = run_joint_asha(
                HPSpace.joint(default_extractor_space(), default_space(name)),
                raw_environments,
                config,
                n_extractors=args.extractors,
                n_jobs=args.jobs,
                tracer=tracer,
                resume=resume,
                use_cache=not args.no_cache,
                cache_bytes=args.cache_bytes,
            )
            if stats is not None:
                print(f"{name}: cache hits={stats.hits} "
                      f"misses={stats.misses} "
                      f"hit-rate={stats.hit_rate:.2f} "
                      f"encode={stats.encode_seconds:.2f}s "
                      f"saved={stats.encode_seconds_saved:.2f}s "
                      f"published={stats.published_bytes}B "
                      f"evictions={stats.evictions}")
        else:
            result = run_asha(
                default_space(name),
                context.train_environments,
                config,
                n_jobs=args.jobs,
                tracer=tracer,
                resume=resume,
            )
        best = result.best
        value = best.objective_value(config.objective, config.blend_weight)
        print(f"{name}: best {best.trial_id} "
              f"{config.objective}={value:.4f} params={dict(best.params)}")
        results.append(result)
    tracer.close()
    if args.trace:
        print(f"wrote run log to {args.trace}")

    leaderboard = build_leaderboard(
        results,
        seed=args.seed,
        search_config={**dataclasses.asdict(config), "trainers": trainers,
                       "n_samples": n_samples, "data_seed": args.data_seed,
                       **joint_fields},
    )
    write_leaderboard(leaderboard, args.out)
    winner = leaderboard["leaderboard"][0]
    print(f"wrote {args.out} "
          f"({len(leaderboard['leaderboard'])} trials; winner: "
          f"{winner['trainer']} {winner['trial']})")

    if args.registry:
        overrides = dict(winner["params"])
        # Joint winners carry their extractor half as a sub-dict: refit
        # the pipeline's GBDT with it instead of handing it to the head.
        extractor_overrides = overrides.pop("extractor", None)
        gbdt_params = None
        if extractor_overrides is not None:
            from repro.pipeline.extractor import default_gbdt_params

            gbdt_params = default_gbdt_params().replace_flat(
                extractor_overrides
            )
        if winner["budget"] is not None:
            overrides["n_epochs"] = winner["budget"]
        pipeline = LoanDefaultPipeline(
            make_trainer(winner["trainer"], seed=winner["seed"], **overrides),
            gbdt_params=gbdt_params,
        )
        pipeline.fit(context.split.train)
        metadata = {
            "tuned": True,
            "trainer": winner["trainer"],
            "trial": winner["trial"],
            "objective": leaderboard["objective"],
            "objective_value": winner["objective_value"],
            "search_seed": args.seed,
        }
        registry = ModelRegistry(args.registry)
        with tempfile.TemporaryDirectory() as tmp:
            artifact = f"{tmp}/tuned_model.json"
            ModelRegistry.save_file(pipeline, artifact, metadata=metadata)
            version = registry.import_file(artifact, slot="challenger")
        print(f"imported winner as challenger version {version} "
              f"(slots: {registry.slots()})")
    return 0


def _cmd_tune_bench(args: argparse.Namespace) -> int:
    from repro.perfbench import (
        TuneBenchConfig,
        run_tune_benchmark,
        summarize_tune,
        write_tune_bench_json,
    )

    config = TuneBenchConfig.smoke() if args.smoke else TuneBenchConfig()
    if args.jobs != 1:
        import dataclasses

        config = dataclasses.replace(config, n_jobs=args.jobs)
    results = run_tune_benchmark(config)
    print(summarize_tune(results))
    write_tune_bench_json(args.out, results, config)
    print(f"wrote {args.out}")
    return 0 if results["joint_search"]["bit_identical"] else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import format_diff, format_report, format_summary, load_run

    if args.action == "top":
        from repro.obs.live import run_top

        if args.paths or (args.url is None) == (args.file is None):
            print("obs top takes no run logs; give exactly one of "
                  "--url or --file", file=sys.stderr)
            return 2
        return run_top(url=args.url, file=args.file,
                       interval_s=args.interval,
                       iterations=args.iterations)
    if args.action == "diff":
        if len(args.paths) != 2:
            print("obs diff takes exactly two run logs", file=sys.stderr)
            return 2
        run_a, run_b = (load_run(p) for p in args.paths)
        print(format_diff(run_a, run_b,
                          label_a=args.paths[0], label_b=args.paths[1]))
        return 0
    if len(args.paths) != 1:
        print(f"obs {args.action} takes exactly one run log",
              file=sys.stderr)
        return 2
    run = load_run(args.paths[0])
    if args.action == "report":
        print(format_report(run, max_curve_rows=args.max_curve_rows))
    else:
        print(format_summary(run))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("trainers:")
    for info in trainer_names():
        line = f"  {info.name:20s} config={info.config_class}"
        if info.penalty_parameter:
            line += f"  penalty={info.penalty_parameter}"
        if info.aliases:
            line += f"  aliases: {', '.join(info.aliases)}"
        print(line)
    print('  meta-IRM(S)  # sampled variant, e.g. "meta-IRM(5)"')
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "registry": _cmd_registry,
    "serve-score": _cmd_serve_score,
    "serve-run": _cmd_serve_run,
    "experiment": _cmd_experiment,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "scale-bench": _cmd_scale_bench,
    "verify": _cmd_verify,
    "tune": _cmd_tune,
    "tune-bench": _cmd_tune_bench,
    "obs": _cmd_obs,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
