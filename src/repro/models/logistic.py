"""Logistic regression head with closed-form derivatives.

The paper's predictor (Eq. 2) is a plain LR model over the GBDT leaf
encoding; meta-IRM and LightMIRM differentiate *through* an inner SGD step
on it, which requires Hessian-vector products.  For logistic regression all
of these have exact closed forms:

* loss            ``R(θ) = mean BCE + (l2/2)·||θ||²``
* gradient        ``∇R = Xᵀ(p − y)/n + l2·θ``
* HVP             ``H v = Xᵀ(w ⊙ X v)/n + l2·v`` with ``w = p(1 − p)``

so the MAML chain rule ``(I − αH)·g`` is computed without materialising the
Hessian — the same quantities PyTorch's double backward would produce.  The
implementation accepts both dense arrays and ``scipy.sparse`` CSR matrices
(the GBDT+LR design matrix is sparse multi-hot).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.numerics import binary_cross_entropy, sigmoid

__all__ = ["LogisticModel", "sigmoid", "binary_cross_entropy"]

Matrix = np.ndarray | sparse.spmatrix


class LogisticModel:
    """Fixed-dimension logistic regression with analytic derivatives.

    The model itself is stateless with respect to parameters: every method
    takes the parameter vector ``theta`` explicitly, which is what the
    meta-learning algorithms need (they evaluate losses and gradients at
    many hypothetical parameter vectors per iteration).

    Attributes:
        n_features: Dimension of ``theta``.
        l2: L2 regularisation strength added to loss/gradient/HVP.
    """

    def __init__(self, n_features: int, l2: float = 0.0):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_features = n_features
        self.l2 = l2

    def init_params(self, seed: int = 0, scale: float = 0.01) -> np.ndarray:
        """Random-normal initial parameters (paper: random initialisation)."""
        rng = np.random.default_rng(seed)
        return scale * rng.standard_normal(self.n_features)

    # ----------------------------------------------------------------- core

    def logits(self, theta: np.ndarray, features: Matrix) -> np.ndarray:
        """Linear scores ``X θ``."""
        self._check(theta, features)
        product = features @ theta
        return np.asarray(product).ravel()

    def predict_proba(self, theta: np.ndarray, features: Matrix) -> np.ndarray:
        """Default probabilities ``σ(X θ)`` (Eq. 2 of the paper)."""
        return sigmoid(self.logits(theta, features))

    def loss(self, theta: np.ndarray, features: Matrix,
             labels: np.ndarray) -> float:
        """Environment risk ``R(D; θ)``: mean BCE plus L2 (Eq. 4)."""
        labels = np.asarray(labels, dtype=np.float64).ravel()
        prob = self.predict_proba(theta, features)
        loss = binary_cross_entropy(labels, prob)
        if self.l2:
            loss += 0.5 * self.l2 * float(theta @ theta)
        return loss

    def gradient(self, theta: np.ndarray, features: Matrix,
                 labels: np.ndarray) -> np.ndarray:
        """Exact gradient ``∇_θ R(D; θ)``."""
        labels = np.asarray(labels, dtype=np.float64).ravel()
        residual = self.predict_proba(theta, features) - labels
        grad = self._rmatvec(features, residual) / labels.size
        if self.l2:
            grad = grad + self.l2 * theta
        return grad

    def loss_and_gradient(
        self, theta: np.ndarray, features: Matrix, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Loss and gradient sharing one forward pass."""
        labels = np.asarray(labels, dtype=np.float64).ravel()
        prob = self.predict_proba(theta, features)
        loss = binary_cross_entropy(labels, prob)
        grad = self._rmatvec(features, prob - labels) / labels.size
        if self.l2:
            loss += 0.5 * self.l2 * float(theta @ theta)
            grad = grad + self.l2 * theta
        return loss, grad

    def hessian_vector_product(
        self,
        theta: np.ndarray,
        features: Matrix,
        labels: np.ndarray,
        vector: np.ndarray,
    ) -> np.ndarray:
        """Exact ``H(θ) v`` without forming the Hessian.

        ``H = Xᵀ diag(p(1-p)) X / n + l2·I`` for the BCE objective; labels
        do not enter the Hessian but are accepted for interface symmetry
        with :meth:`gradient`.
        """
        labels = np.asarray(labels, dtype=np.float64).ravel()
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.n_features:
            raise ValueError(
                f"vector has {vector.shape[0]} entries, expected {self.n_features}"
            )
        prob = self.predict_proba(theta, features)
        weights = prob * (1.0 - prob)
        inner = np.asarray(features @ vector).ravel()
        hv = self._rmatvec(features, weights * inner) / labels.size
        if self.l2:
            hv = hv + self.l2 * vector
        return hv

    # ---------------------------------------------------------------- utils

    def _check(self, theta: np.ndarray, features: Matrix) -> None:
        theta = np.asarray(theta)
        if theta.shape != (self.n_features,):
            raise ValueError(
                f"theta has shape {theta.shape}, expected ({self.n_features},)"
            )
        if features.shape[1] != self.n_features:
            raise ValueError(
                f"features have {features.shape[1]} columns, "
                f"expected {self.n_features}"
            )

    @staticmethod
    def _rmatvec(features: Matrix, vector: np.ndarray) -> np.ndarray:
        """``Xᵀ v`` for dense or sparse X, always returning a 1-D array."""
        if sparse.issparse(features):
            return np.asarray(features.T @ vector).ravel()
        return features.T @ vector
