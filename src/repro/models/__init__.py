"""Prediction models: the logistic-regression head of GBDT+LR."""

from repro.models.logistic import LogisticModel, binary_cross_entropy, sigmoid

__all__ = ["LogisticModel", "binary_cross_entropy", "sigmoid"]
