"""Explainability: raw-feature attribution of the GBDT+LR head."""

from repro.explain.attribution import (
    attribution_by_role,
    head_feature_attribution,
    leaf_path_features,
    spurious_reliance,
)

__all__ = [
    "attribution_by_role",
    "head_feature_attribution",
    "leaf_path_features",
    "spurious_reliance",
]
