"""Explainability: attribute the LR head's weights back to raw features.

The paper picks "GBDT+LR" for its explainability and argues (RQ5) that the
IRM-trained head relies on *invariant* features while ERM's leans on the
spurious regional correlations.  This module makes that inspectable:

* every leaf indicator the LR head weighs corresponds to a root-to-leaf
  path in one tree, and that path tests a specific set of raw features;
* distributing each indicator's |weight| (optionally scaled by how often
  the leaf fires) over its path features yields a raw-feature attribution
  of the *head*, comparable across training methods on a shared extractor.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import CausalRole, LoanFeatureSchema
from repro.gbdt.tree import DecisionTree
from repro.pipeline.extractor import GBDTFeatureExtractor

__all__ = [
    "leaf_path_features",
    "head_feature_attribution",
    "attribution_by_role",
    "spurious_reliance",
]


def leaf_path_features(tree: DecisionTree) -> list[set[int]]:
    """Per-leaf sets of (tree-local) feature indices tested on the path.

    Args:
        tree: A fitted (or deserialised) decision tree.

    Returns:
        List indexed by dense leaf index; element ``l`` is the set of
        feature columns tested on the root-to-leaf-``l`` path.  The root
        leaf of a stump-less tree has an empty set.
    """
    if tree.n_nodes == 0:
        raise ValueError("tree is not fitted")
    nodes = tree._nodes
    path_features: list[set[int] | None] = [None] * len(nodes)
    path_features[0] = set()
    for node in nodes:
        if node.is_leaf:
            continue
        inherited = path_features[node.node_id]
        assert inherited is not None  # parents precede children by id
        child_set = inherited | {node.feature}
        path_features[node.left] = set(child_set)
        path_features[node.right] = set(child_set)
    result: list[set[int]] = [set() for _ in range(tree.n_leaves)]
    for node in nodes:
        if node.is_leaf:
            result[node.leaf_index] = path_features[node.node_id] or set()
    return result


def head_feature_attribution(
    extractor: GBDTFeatureExtractor,
    theta: np.ndarray,
    leaf_frequencies: np.ndarray | None = None,
) -> np.ndarray:
    """Distribute the head's |weights| over the raw features of leaf paths.

    Args:
        extractor: Fitted feature extractor (supplies trees + encoder).
        theta: LR head parameters over the leaf one-hot space.
        leaf_frequencies: Optional per-output-column firing frequencies
            (e.g. mean of the encoded design matrix); when given, each
            leaf's contribution is scaled by how often it actually fires.

    Returns:
        Array of length ``n_raw_features`` with non-negative attribution
        mass per raw feature (unnormalised).
    """
    model = extractor.model_
    encoder = extractor.encoder_
    if model is None or encoder is None:
        raise RuntimeError("extractor is not fitted")
    theta = np.asarray(theta, dtype=np.float64).ravel()
    if theta.size != encoder.n_output_features:
        raise ValueError(
            f"theta has {theta.size} entries, encoder expects "
            f"{encoder.n_output_features}"
        )
    if leaf_frequencies is not None:
        leaf_frequencies = np.asarray(leaf_frequencies, dtype=np.float64).ravel()
        if leaf_frequencies.size != theta.size:
            raise ValueError("leaf_frequencies must align with theta")

    n_raw = len(model.binner.bin_edges_)
    attribution = np.zeros(n_raw)
    column = 0
    for tree, cols in zip(model.trees_, model.tree_feature_subsets_):
        paths = leaf_path_features(tree)
        for leaf_index, local_features in enumerate(paths):
            weight = abs(theta[column])
            if leaf_frequencies is not None:
                weight *= leaf_frequencies[column]
            column += 1
            if not local_features or weight == 0.0:
                continue
            share = weight / len(local_features)
            for local in local_features:
                attribution[cols[local]] += share
    return attribution


def attribution_by_role(
    attribution: np.ndarray, schema: LoanFeatureSchema
) -> dict[str, float]:
    """Normalised attribution share per causal role of the schema."""
    attribution = np.asarray(attribution, dtype=np.float64)
    if attribution.size != schema.n_features:
        raise ValueError(
            f"attribution has {attribution.size} entries, schema has "
            f"{schema.n_features} features"
        )
    total = attribution.sum()
    if total == 0:
        return {role.value: 0.0 for role in CausalRole}
    return {
        role.value: float(
            attribution[schema.columns_with_role(role)].sum() / total
        )
        for role in CausalRole
    }


def spurious_reliance(
    extractor: GBDTFeatureExtractor,
    theta: np.ndarray,
    schema: LoanFeatureSchema,
) -> float:
    """Fraction of the head's attribution mass on spurious features.

    The RQ5 diagnostic: an invariant head should show a smaller value than
    an ERM head trained on the same extractor.
    """
    attribution = head_feature_attribution(extractor, theta)
    return attribution_by_role(attribution, schema)[CausalRole.SPURIOUS.value]
