"""Area under the ROC curve, computed from ranks.

The paper evaluates every method with AUC (overall discrimination) alongside
the KS statistic.  We implement the exact rank-based (Mann-Whitney) estimator,
which is what scikit-learn's ``roc_auc_score`` computes for binary labels, so
results are directly comparable with the standard credit-scoring toolchain.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.validation import check_binary_classification_inputs

__all__ = ["auc_score", "roc_curve"]


def auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Compute the area under the ROC curve.

    Uses the Mann-Whitney U formulation: the AUC equals the probability that
    a uniformly random positive instance is scored above a uniformly random
    negative instance, with ties counted as half.

    Args:
        y_true: Binary labels in {0, 1}; shape ``(n,)``.
        y_score: Real-valued scores, higher means more likely positive.

    Returns:
        AUC in ``[0, 1]``.

    Raises:
        ValueError: If inputs are malformed or only one class is present.
    """
    y_true, y_score = check_binary_classification_inputs(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError(
            "AUC is undefined when only one class is present "
            f"(positives={n_pos}, negatives={n_neg})"
        )
    ranks = _average_ranks(y_score)
    rank_sum_pos = ranks[y_true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Return 1-based ranks with ties assigned their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    # Walk runs of equal values and assign each run its average rank.
    boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [values.size]))
    for start, end in zip(starts, ends):
        ranks[order[start:end]] = 0.5 * (start + end - 1) + 1.0
    return ranks


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve (FPR, TPR, thresholds).

    Thresholds are the distinct score values in decreasing order; a point
    ``(fpr[i], tpr[i])`` is the operating point obtained by predicting
    positive whenever ``score >= thresholds[i]``.  A leading ``(0, 0)`` point
    with threshold ``+inf`` is prepended so the curve always starts at the
    origin.

    Args:
        y_true: Binary labels in {0, 1}.
        y_score: Real-valued scores.

    Returns:
        Tuple ``(fpr, tpr, thresholds)`` of equal-length float arrays.
    """
    y_true, y_score = check_binary_classification_inputs(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC curve requires both classes present")

    order = np.argsort(-y_score, kind="mergesort")
    sorted_scores = y_score[order]
    sorted_labels = y_true[order]

    # Cumulative counts at each position, then keep only the last index of
    # each distinct score so tied scores collapse to one operating point.
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    distinct = np.flatnonzero(np.diff(sorted_scores))
    keep = np.concatenate((distinct, [y_true.size - 1]))

    tpr = tps[keep] / n_pos
    fpr = fps[keep] / n_neg
    thresholds = sorted_scores[keep]

    fpr = np.concatenate(([0.0], fpr))
    tpr = np.concatenate(([0.0], tpr))
    thresholds = np.concatenate(([np.inf], thresholds))
    return fpr, tpr, thresholds
