"""Kolmogorov-Smirnov statistic for credit-risk model evaluation.

The KS statistic is the headline risk-ranking metric in the paper (Fig 1 and
all tables report KS).  For a binary classifier it is the maximum vertical
distance between the score CDF of the positive class and the score CDF of the
negative class, equivalently ``max(TPR - FPR)`` over all thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.auc import roc_curve
from repro.metrics.validation import check_binary_classification_inputs

__all__ = ["ks_score", "ks_curve", "two_sample_ks"]


def ks_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Compute the KS statistic ``max_t (TPR(t) - FPR(t))``.

    This is the *signed* credit-scoring convention: the score is assumed to
    rank defaulters above non-defaulters, and the statistic is the largest
    lead of the bad-rate CDF over the good-rate CDF.  A model that ranks
    *backwards* (higher scores for safer customers) scores ~0 rather than
    being rewarded for its inverted separation — which is what "risk-ranking
    ability" means operationally, and what makes the paper's worst-province
    comparisons meaningful (ERM's spurious-feature inversions in small
    provinces must show up as failures).  For the unsigned two-distribution
    distance use :func:`two_sample_ks`.

    Args:
        y_true: Binary labels in {0, 1}.
        y_score: Real-valued scores, higher means more likely positive.

    Returns:
        KS statistic in ``[0, 1]``; higher means stronger risk ranking.
        Exactly 0 when the score never ranks any defaulter first.
    """
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return float(np.max(tpr - fpr))


def ks_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(thresholds, tpr - fpr)`` for plotting the KS separation curve.

    The returned thresholds are in decreasing order, matching
    :func:`repro.metrics.auc.roc_curve`.
    """
    fpr, tpr, thresholds = roc_curve(y_true, y_score)
    return thresholds, tpr - fpr


def two_sample_ks(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample KS distance between empirical CDFs of two score samples.

    This is the classical definition referenced by the paper ("the largest
    distance between their two cumulative distribution functions").  It is
    used in tests to cross-check :func:`ks_score`: splitting scores by label
    and measuring the two-sample KS must agree with the ROC-based formula.

    Args:
        sample_a: First sample of real values.
        sample_b: Second sample of real values.

    Returns:
        Supremum distance between the two empirical CDFs, in ``[0, 1]``.
    """
    sample_a = np.asarray(sample_a, dtype=np.float64).ravel()
    sample_b = np.asarray(sample_b, dtype=np.float64).ravel()
    if sample_a.size == 0 or sample_b.size == 0:
        raise ValueError("both samples must be non-empty")
    pooled = np.concatenate((sample_a, sample_b))
    pooled = np.unique(pooled)
    cdf_a = np.searchsorted(np.sort(sample_a), pooled, side="right") / sample_a.size
    cdf_b = np.searchsorted(np.sort(sample_b), pooled, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))
