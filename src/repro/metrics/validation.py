"""Shared input validation for metric functions."""

from __future__ import annotations

import numpy as np

__all__ = ["check_binary_classification_inputs"]


def check_binary_classification_inputs(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalise (labels, scores) for binary metrics.

    Args:
        y_true: Array-like of binary labels; must contain only 0s and 1s.
        y_score: Array-like of finite real scores, same length as ``y_true``.

    Returns:
        Tuple of 1-D float64 arrays ``(y_true, y_score)``.

    Raises:
        ValueError: On shape mismatch, empty input, non-binary labels or
            non-finite scores.
    """
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.size == 0:
        raise ValueError("empty input: no samples to evaluate")
    if y_true.shape != y_score.shape:
        raise ValueError(
            f"shape mismatch: y_true has {y_true.shape}, y_score has {y_score.shape}"
        )
    unique = np.unique(y_true)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise ValueError(f"labels must be binary 0/1, got values {unique[:10]}")
    if not np.all(np.isfinite(y_score)):
        raise ValueError("scores must be finite (found NaN or inf)")
    return y_true, y_score
