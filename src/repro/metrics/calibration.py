"""Threshold-based operating metrics for the online evaluation (Fig 5).

The paper's online test reports, as the approval threshold moves, the false
positive rate (good customers refused) against the residual default ("bad
debt") rate among approved loans.  These are the two curves of Figure 5 and
the source of the headline "2.09% -> 0.73% bad debt" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.validation import check_binary_classification_inputs

__all__ = [
    "ConfusionCounts",
    "confusion_at_threshold",
    "false_positive_rate",
    "bad_debt_rate",
    "refusal_rate",
    "threshold_sweep",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion-matrix counts at a fixed decision threshold.

    Positive = predicted default = loan refused.
    """

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def n_refused(self) -> int:
        """Loans the model would refuse (predicted default)."""
        return self.true_positive + self.false_positive

    @property
    def n_approved(self) -> int:
        """Loans the model would approve."""
        return self.true_negative + self.false_negative


def confusion_at_threshold(
    y_true: np.ndarray, y_score: np.ndarray, threshold: float
) -> ConfusionCounts:
    """Count confusion-matrix entries predicting default when score >= threshold."""
    y_true, y_score = check_binary_classification_inputs(y_true, y_score)
    predicted = y_score >= threshold
    actual = y_true == 1.0
    return ConfusionCounts(
        true_positive=int(np.sum(predicted & actual)),
        false_positive=int(np.sum(predicted & ~actual)),
        true_negative=int(np.sum(~predicted & ~actual)),
        false_negative=int(np.sum(~predicted & actual)),
    )


def false_positive_rate(
    y_true: np.ndarray, y_score: np.ndarray, threshold: float
) -> float:
    """Fraction of non-defaulting customers refused at the threshold."""
    counts = confusion_at_threshold(y_true, y_score, threshold)
    n_good = counts.false_positive + counts.true_negative
    if n_good == 0:
        return float("nan")
    return counts.false_positive / n_good


def bad_debt_rate(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """Default rate among the loans the model approves at the threshold.

    This is the paper's "bad debt rate": defaults that slip through the
    filter, as a fraction of approved loans.  If the model refuses every
    application the rate is 0 by convention (no approved loans can default).
    """
    counts = confusion_at_threshold(y_true, y_score, threshold)
    if counts.n_approved == 0:
        return 0.0
    return counts.false_negative / counts.n_approved


def refusal_rate(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """Fraction of all applications refused at the threshold."""
    counts = confusion_at_threshold(y_true, y_score, threshold)
    return counts.n_refused / counts.total


def threshold_sweep(
    y_true: np.ndarray,
    y_score: np.ndarray,
    thresholds: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Sweep decision thresholds and collect the Fig 5 operating curves.

    Args:
        y_true: Binary default labels.
        y_score: Predicted default probabilities.
        thresholds: Thresholds to evaluate; defaults to 101 evenly spaced
            values in [0, 1].

    Returns:
        Dict with arrays ``thresholds``, ``false_positive_rate``,
        ``bad_debt_rate`` and ``refusal_rate``, index-aligned.
    """
    if thresholds is None:
        thresholds = np.linspace(0.0, 1.0, 101)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    fpr = np.array([false_positive_rate(y_true, y_score, t) for t in thresholds])
    bad = np.array([bad_debt_rate(y_true, y_score, t) for t in thresholds])
    refused = np.array([refusal_rate(y_true, y_score, t) for t in thresholds])
    return {
        "thresholds": thresholds,
        "false_positive_rate": fpr,
        "bad_debt_rate": bad,
        "refusal_rate": refused,
    }
