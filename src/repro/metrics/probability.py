"""Probability-quality metrics: Brier score, reliability bins, ECE.

The paper's fairness discussion centres on *calibration* ("false positive
rates across groups should be similar", citing Kleinberg/Pleiss): a score
is trustworthy when predicted probabilities match realised default rates in
every subpopulation.  These metrics complement the rank-based KS/AUC with
probability-level diagnostics, including a per-environment calibration-gap
report in the spirit of the paper's multi-group view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.metrics.validation import check_binary_classification_inputs

__all__ = [
    "brier_score",
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "calibration_gap_by_environment",
]


def brier_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean squared error of the predicted probabilities.

    Args:
        y_true: Binary labels.
        y_prob: Predicted probabilities in [0, 1].

    Returns:
        Brier score in [0, 1]; lower is better.
    """
    y_true, y_prob = check_binary_classification_inputs(y_true, y_prob)
    if np.any((y_prob < 0) | (y_prob > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    return float(np.mean((y_prob - y_true) ** 2))


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of the reliability diagram."""

    lower: float
    upper: float
    mean_predicted: float
    observed_rate: float
    count: int

    @property
    def gap(self) -> float:
        """|predicted − observed| within the bin."""
        return abs(self.mean_predicted - self.observed_rate)


def reliability_bins(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> list[ReliabilityBin]:
    """Equal-width reliability diagram bins over [0, 1].

    Empty bins are omitted, so the result may be shorter than ``n_bins``.
    """
    y_true, y_prob = check_binary_classification_inputs(y_true, y_prob)
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # Clip the top so probability 1.0 lands in the final bin.
    indices = np.clip(
        np.searchsorted(edges, y_prob, side="right") - 1, 0, n_bins - 1
    )
    bins = []
    for b in range(n_bins):
        mask = indices == b
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(
            ReliabilityBin(
                lower=float(edges[b]),
                upper=float(edges[b + 1]),
                mean_predicted=float(y_prob[mask].mean()),
                observed_rate=float(y_true[mask].mean()),
                count=count,
            )
        )
    return bins


def expected_calibration_error(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean |predicted − observed| over bins."""
    bins = reliability_bins(y_true, y_prob, n_bins=n_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return float(sum(b.count * b.gap for b in bins) / total)


def calibration_gap_by_environment(
    labels_by_env: Mapping[str, np.ndarray],
    probs_by_env: Mapping[str, np.ndarray],
    n_bins: int = 10,
) -> dict[str, float]:
    """Per-environment ECE — the multi-group calibration view.

    A fair (multi-calibrated) model keeps this roughly constant across
    environments; ERM's spurious reliance typically inflates it exactly in
    the underrepresented provinces.

    Args:
        labels_by_env: Environment -> binary labels.
        probs_by_env: Environment -> predicted probabilities.
        n_bins: Reliability bins.

    Returns:
        Environment -> ECE.
    """
    if set(labels_by_env) != set(probs_by_env):
        raise ValueError("labels and probabilities disagree on environments")
    return {
        name: expected_calibration_error(
            labels_by_env[name], probs_by_env[name], n_bins=n_bins
        )
        for name in sorted(labels_by_env)
    }
