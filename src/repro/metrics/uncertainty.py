"""Bootstrap uncertainty for the ranking metrics.

The worst-province KS is computed on a few hundred rows for the smallest
provinces, so point estimates carry material sampling noise (the reason
several of the paper's close orderings are not statistically resolvable —
see EXPERIMENTS.md).  This module quantifies that: nonparametric bootstrap
confidence intervals for KS and AUC, and a two-model comparison that
bootstraps the *difference* on shared resamples (paired bootstrap), which
is the right test for "does method A really beat method B here?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score
from repro.metrics.validation import check_binary_classification_inputs

__all__ = [
    "BootstrapInterval",
    "bootstrap_metric",
    "bootstrap_ks",
    "bootstrap_auc",
    "paired_bootstrap_difference",
]

Metric = Callable[[np.ndarray, np.ndarray], float]


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"@{self.confidence:.0%}"
        )


def _resample_indices(
    rng: np.random.Generator, labels: np.ndarray
) -> np.ndarray:
    """One bootstrap resample guaranteed to contain both classes.

    Resamples uniformly with replacement; draws are rejected (rarely, and
    only for very small samples) until both classes appear so the metric
    stays defined.
    """
    n = labels.size
    for _ in range(100):
        idx = rng.integers(0, n, size=n)
        picked = labels[idx]
        if 0.0 < picked.mean() < 1.0:
            return idx
    raise RuntimeError("could not draw a two-class bootstrap resample")


def bootstrap_metric(
    y_true: np.ndarray,
    y_score: np.ndarray,
    metric: Metric,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap interval for an arbitrary ranking metric.

    Args:
        y_true: Binary labels.
        y_score: Scores.
        metric: Callable ``metric(y_true, y_score) -> float``.
        n_resamples: Bootstrap replicates.
        confidence: Central interval mass.
        seed: RNG seed.

    Returns:
        A :class:`BootstrapInterval`.
    """
    y_true, y_score = check_binary_classification_inputs(y_true, y_score)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    rng = np.random.default_rng(seed)
    estimate = metric(y_true, y_score)
    replicates = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = _resample_indices(rng, y_true)
        replicates[b] = metric(y_true[idx], y_score[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(estimate),
        lower=float(np.quantile(replicates, alpha)),
        upper=float(np.quantile(replicates, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_ks(y_true, y_score, **kwargs) -> BootstrapInterval:
    """Bootstrap interval for the (signed) KS statistic."""
    return bootstrap_metric(y_true, y_score, ks_score, **kwargs)


def bootstrap_auc(y_true, y_score, **kwargs) -> BootstrapInterval:
    """Bootstrap interval for the AUC."""
    return bootstrap_metric(y_true, y_score, auc_score, **kwargs)


def paired_bootstrap_difference(
    y_true: np.ndarray,
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    metric: Metric = ks_score,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Bootstrap the metric difference ``metric(A) − metric(B)``.

    Both models are evaluated on the *same* resample (paired bootstrap),
    which removes the shared sampling noise and is far more powerful than
    comparing two independent intervals.  If the returned interval
    excludes 0, model A's advantage is resolvable at the given confidence.

    Args:
        y_true: Shared binary labels.
        scores_a: First model's scores.
        scores_b: Second model's scores (same rows).
        metric: Ranking metric to compare.
        n_resamples: Bootstrap replicates.
        confidence: Central interval mass.
        seed: RNG seed.

    Returns:
        Interval over the difference A − B.
    """
    y_true, scores_a = check_binary_classification_inputs(y_true, scores_a)
    _, scores_b = check_binary_classification_inputs(y_true, scores_b)
    rng = np.random.default_rng(seed)
    estimate = metric(y_true, scores_a) - metric(y_true, scores_b)
    replicates = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = _resample_indices(rng, y_true)
        replicates[b] = metric(y_true[idx], scores_a[idx]) - metric(
            y_true[idx], scores_b[idx]
        )
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(estimate),
        lower=float(np.quantile(replicates, alpha)),
        upper=float(np.quantile(replicates, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )
