"""Per-environment fairness aggregation: mKS / wKS / mAUC / wAUC.

The paper's central evaluation protocol (Section IV-A2) scores a model
separately in every environment (province) and reports:

* the *mean* KS and AUC over environments — overall performance, and
* the *worst* (minimum) KS and AUC — minimax fairness.

This module implements that protocol along with a structured report type
used throughout the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score

__all__ = [
    "EnvironmentScores",
    "FairnessReport",
    "evaluate_environments",
    "scorable_environments",
]

#: An environment needs at least this many samples of each class for KS/AUC
#: to be estimable with any stability; smaller environments are skipped with
#: a record of the skip in the report.
MIN_CLASS_COUNT = 2


@dataclass(frozen=True)
class EnvironmentScores:
    """KS and AUC for a single environment."""

    environment: str
    ks: float
    auc: float
    n_samples: int
    n_positive: int

    @property
    def default_rate(self) -> float:
        """Fraction of positive (defaulted) samples in the environment."""
        return self.n_positive / self.n_samples if self.n_samples else float("nan")


@dataclass(frozen=True)
class FairnessReport:
    """Aggregated per-environment evaluation of one model.

    Attributes:
        per_environment: Mapping of environment name to its scores.
        skipped: Environments excluded because a class was (nearly) absent.
    """

    per_environment: Mapping[str, EnvironmentScores]
    skipped: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.per_environment:
            raise ValueError("FairnessReport requires at least one scored environment")

    @property
    def mean_ks(self) -> float:
        """mKS: the mean KS statistic over environments."""
        return float(np.mean([s.ks for s in self.per_environment.values()]))

    @property
    def worst_ks(self) -> float:
        """wKS: the minimum KS statistic over environments (minimax fairness)."""
        return float(np.min([s.ks for s in self.per_environment.values()]))

    @property
    def mean_auc(self) -> float:
        """mAUC: the mean AUC over environments."""
        return float(np.mean([s.auc for s in self.per_environment.values()]))

    @property
    def worst_auc(self) -> float:
        """wAUC: the minimum AUC over environments."""
        return float(np.min([s.auc for s in self.per_environment.values()]))

    @property
    def worst_ks_environment(self) -> str:
        """Name of the environment attaining the worst KS."""
        return min(self.per_environment.values(), key=lambda s: s.ks).environment

    def ks_spread(self) -> float:
        """Max-minus-min KS across environments (the Fig 1 disparity)."""
        values = [s.ks for s in self.per_environment.values()]
        return float(np.max(values) - np.min(values))

    def summary(self) -> dict[str, float]:
        """Return the four headline metrics as a plain dict."""
        return {
            "mKS": self.mean_ks,
            "wKS": self.worst_ks,
            "mAUC": self.mean_auc,
            "wAUC": self.worst_auc,
        }


def scorable_environments(
    labels_by_env: Mapping[str, np.ndarray],
    min_class_count: int = MIN_CLASS_COUNT,
) -> list[str]:
    """Return environments with enough samples of each class to score."""
    usable = []
    for name, labels in labels_by_env.items():
        labels = np.asarray(labels)
        n_pos = int(labels.sum())
        n_neg = labels.size - n_pos
        if n_pos >= min_class_count and n_neg >= min_class_count:
            usable.append(name)
    return usable


def evaluate_environments(
    labels_by_env: Mapping[str, np.ndarray],
    scores_by_env: Mapping[str, np.ndarray],
    min_class_count: int = MIN_CLASS_COUNT,
) -> FairnessReport:
    """Score a model in every environment and aggregate into a report.

    Args:
        labels_by_env: Environment name -> binary labels.
        scores_by_env: Environment name -> predicted scores; must cover the
            same environments as ``labels_by_env``.
        min_class_count: Minimum per-class count for an environment to be
            scored; smaller environments are listed in ``report.skipped``.

    Returns:
        A :class:`FairnessReport` over all scorable environments.

    Raises:
        ValueError: If the key sets differ or nothing is scorable.
    """
    if set(labels_by_env) != set(scores_by_env):
        missing = set(labels_by_env) ^ set(scores_by_env)
        raise ValueError(f"labels and scores disagree on environments: {missing}")

    usable = set(scorable_environments(labels_by_env, min_class_count))
    skipped = tuple(sorted(set(labels_by_env) - usable))
    per_env: dict[str, EnvironmentScores] = {}
    for name in sorted(usable):
        labels = np.asarray(labels_by_env[name], dtype=np.float64)
        scores = np.asarray(scores_by_env[name], dtype=np.float64)
        per_env[name] = EnvironmentScores(
            environment=name,
            ks=ks_score(labels, scores),
            auc=auc_score(labels, scores),
            n_samples=labels.size,
            n_positive=int(labels.sum()),
        )
    if not per_env:
        raise ValueError("no environment had enough samples of both classes")
    return FairnessReport(per_environment=per_env, skipped=skipped)
