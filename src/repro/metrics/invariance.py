"""Coefficient-level invariance metrics.

End metrics (KS/AUC) can look fine while a model leans on a shortcut that
happens to hold in the evaluation data; these helpers score the learned
parameter vector *directly* against a known causal structure.  They are the
vocabulary of the :mod:`repro.verify` scorecard but are generic enough for
any linear head whose feature blocks have known causal roles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "weight_mass",
    "coefficient_recovery",
]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of the angle between two coefficient vectors.

    Returns 0.0 when either vector is all-zero (no direction to compare).
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0.0:
        return 0.0
    return float(a @ b / norm)


def weight_mass(theta: np.ndarray, idx: np.ndarray) -> float:
    """Fraction of the L1 parameter mass carried by the columns ``idx``.

    ``Σ_i∈idx |θ_i| / Σ_j |θ_j|`` in [0, 1]; 0.0 for an all-zero ``theta``.
    """
    theta = np.abs(np.asarray(theta, dtype=np.float64).ravel())
    total = float(theta.sum())
    if total == 0.0:
        return 0.0
    return float(theta[np.asarray(idx, dtype=np.intp)].sum() / total)


def coefficient_recovery(
    theta: np.ndarray,
    causal_idx: np.ndarray,
    spurious_idx: np.ndarray,
    w_causal: np.ndarray,
) -> dict[str, float]:
    """Score a learned linear head against known causal structure.

    Args:
        theta: Learned coefficient vector.
        causal_idx: Columns that causally drive the label.
        spurious_idx: Columns carrying the environment-dependent shortcut.
        w_causal: True invariant coefficients, aligned with ``causal_idx``.

    Returns:
        Dict with ``causal_cosine`` (alignment of the causal sub-vector with
        the truth), ``spurious_mass`` / ``causal_mass`` (L1 mass fractions),
        and ``spurious_to_causal`` (mean |spurious| over mean |causal|
        weight; ``inf`` if the causal block is all-zero).
    """
    theta = np.asarray(theta, dtype=np.float64).ravel()
    causal = theta[np.asarray(causal_idx, dtype=np.intp)]
    spurious = theta[np.asarray(spurious_idx, dtype=np.intp)]
    mean_causal = float(np.mean(np.abs(causal)))
    mean_spurious = float(np.mean(np.abs(spurious)))
    return {
        "causal_cosine": cosine_similarity(causal, w_causal),
        "causal_mass": weight_mass(theta, causal_idx),
        "spurious_mass": weight_mass(theta, spurious_idx),
        "spurious_to_causal": (
            mean_spurious / mean_causal if mean_causal > 0.0 else float("inf")
        ),
    }
