"""Evaluation metrics: AUC, KS, per-environment fairness, operating curves."""

from repro.metrics.auc import auc_score, roc_curve
from repro.metrics.calibration import (
    ConfusionCounts,
    bad_debt_rate,
    confusion_at_threshold,
    false_positive_rate,
    refusal_rate,
    threshold_sweep,
)
from repro.metrics.fairness import (
    EnvironmentScores,
    FairnessReport,
    evaluate_environments,
    scorable_environments,
)
from repro.metrics.invariance import (
    coefficient_recovery,
    cosine_similarity,
    weight_mass,
)
from repro.metrics.ks import ks_curve, ks_score, two_sample_ks
from repro.metrics.uncertainty import (
    BootstrapInterval,
    bootstrap_auc,
    bootstrap_ks,
    bootstrap_metric,
    paired_bootstrap_difference,
)
from repro.metrics.probability import (
    ReliabilityBin,
    brier_score,
    calibration_gap_by_environment,
    expected_calibration_error,
    reliability_bins,
)

__all__ = [
    "BootstrapInterval",
    "bootstrap_auc",
    "bootstrap_ks",
    "bootstrap_metric",
    "paired_bootstrap_difference",
    "ReliabilityBin",
    "brier_score",
    "calibration_gap_by_environment",
    "expected_calibration_error",
    "reliability_bins",
    "auc_score",
    "roc_curve",
    "ks_score",
    "ks_curve",
    "two_sample_ks",
    "coefficient_recovery",
    "cosine_similarity",
    "weight_mass",
    "EnvironmentScores",
    "FairnessReport",
    "evaluate_environments",
    "scorable_environments",
    "ConfusionCounts",
    "confusion_at_threshold",
    "false_positive_rate",
    "bad_debt_rate",
    "refusal_rate",
    "threshold_sweep",
]
