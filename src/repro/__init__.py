"""LightMIRM reproduction: trustworthy loan default prediction.

Full reproduction of "LightMIRM: Light Meta-learned Invariant Risk
Minimization for Trustworthy Loan Default Prediction" (ICDE 2023):
a synthetic auto-loan platform, a from-scratch histogram GBDT, the GBDT+LR
pipeline, meta-IRM (Algorithm 1), LightMIRM (Algorithm 2), five baselines,
and the complete experiment harness regenerating every table and figure.

Quickstart::

    from repro import (
        LightMIRMTrainer, LoanDefaultPipeline, generate_default_dataset,
        temporal_split,
    )

    split = temporal_split(generate_default_dataset(n_samples=20_000))
    pipeline = LoanDefaultPipeline(LightMIRMTrainer())
    pipeline.fit(split.train)
    print(pipeline.evaluate(split.test).summary())
"""

from repro.baselines import (
    ERMTrainer,
    FineTuneTrainer,
    GroupDROTrainer,
    UpSamplingTrainer,
    VRExTrainer,
)
from repro.core import (
    LightMIRMConfig,
    LightMIRMTrainer,
    MetaIRMConfig,
    MetaIRMTrainer,
    MetaLossReplayQueue,
)
from repro.data import (
    GeneratorConfig,
    LoanDataGenerator,
    LoanDataset,
    generate_default_dataset,
    iid_split,
    temporal_split,
)
from repro.gbdt import GBDTClassifier, GBDTParams, LeafIndexEncoder
from repro.metrics import FairnessReport, auc_score, evaluate_environments, ks_score
from repro.models import LogisticModel
from repro.pipeline import LoanDefaultPipeline
from repro.train import BaseTrainConfig, Trainer, TrainResult, make_trainer

__version__ = "1.0.0"

__all__ = [
    "ERMTrainer",
    "FineTuneTrainer",
    "GroupDROTrainer",
    "UpSamplingTrainer",
    "VRExTrainer",
    "LightMIRMConfig",
    "LightMIRMTrainer",
    "MetaIRMConfig",
    "MetaIRMTrainer",
    "MetaLossReplayQueue",
    "GeneratorConfig",
    "LoanDataGenerator",
    "LoanDataset",
    "generate_default_dataset",
    "iid_split",
    "temporal_split",
    "GBDTClassifier",
    "GBDTParams",
    "LeafIndexEncoder",
    "FairnessReport",
    "auc_score",
    "evaluate_environments",
    "ks_score",
    "LogisticModel",
    "LoanDefaultPipeline",
    "BaseTrainConfig",
    "Trainer",
    "TrainResult",
    "make_trainer",
    "__version__",
]
