"""Figure 1 — province-wise KS of an ERM-trained model.

The paper's motivating figure: a map of per-province KS for the production
(ERM) model, showing e.g. Xinjiang performing ~39% worse than Heilongjiang.
We regenerate the underlying numbers: per-province KS of an ERM-trained
GBDT+LR model on the 2020 test year, plus the relative spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext
from repro.train.registry import make_trainer

__all__ = ["ProvinceKS", "run_fig1", "format_fig1"]


@dataclass(frozen=True)
class ProvinceKS:
    """Per-province score of the ERM model (one map cell of Fig 1)."""

    province: str
    ks: float
    n_test: int


def run_fig1(context: ExperimentContext) -> list[ProvinceKS]:
    """Per-province KS of an ERM model, sorted best-to-worst."""
    result = context.fit_trainer(
        make_trainer("ERM", seed=context.settings.trainer_seeds[0])
    )
    report = context.evaluate_result(result)
    cells = [
        ProvinceKS(province=s.environment, ks=s.ks, n_test=s.n_samples)
        for s in report.per_environment.values()
    ]
    return sorted(cells, key=lambda c: -c.ks)


def relative_spread(cells: list[ProvinceKS]) -> float:
    """(best - worst) / best, the paper's "39.05% worse" style number."""
    best = max(c.ks for c in cells)
    worst = min(c.ks for c in cells)
    return (best - worst) / best if best else float("nan")


def format_fig1(cells: list[ProvinceKS]) -> str:
    """Render the Fig 1 map data as a table plus the headline spread."""
    rows = [
        {"province": c.province, "KS": c.ks, "n_test": c.n_test} for c in cells
    ]
    table = format_table(
        rows,
        columns=("province", "KS", "n_test"),
        title="Fig 1: Province-wise KS of the ERM model (darker = better)",
    )
    spread = relative_spread(cells)
    worst = cells[-1]
    best = cells[0]
    return (
        f"{table}\n\n"
        f"{worst.province} performs {spread:.1%} worse than {best.province} "
        f"(KS {worst.ks:.4f} vs {best.ks:.4f})"
    )
