"""Table III + Figure 7 — time cost of the operation steps.

Profiles the five operation steps of meta-IRM, meta-IRM(5) and LightMIRM
(loading data, transforming the format, inner optimization, calculating the
meta-losses, backward propagation) and the whole-epoch time.  The paper's
headline ratios on its ~30-environment workload: the meta-loss step of
LightMIRM is ~30x faster than complete meta-IRM and a whole epoch ~12x
faster; the complexity analysis (Section III-F) predicts the ratio grows
like M/2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext
from repro.timing import STEP_NAMES, StepTimer
from repro.train.base import Trainer

__all__ = ["StepTimings", "run_table3", "format_table3", "step_proportions"]

#: Epochs to profile; enough for stable per-step means.
PROFILE_EPOCHS = 10


@dataclass(frozen=True)
class StepTimings:
    """Mean per-epoch step timings of one method (one Table III column)."""

    method: str
    mean_step_seconds: dict[str, float]
    mean_epoch_seconds: float

    def step(self, name: str) -> float:
        return self.mean_step_seconds.get(name, 0.0)


def _profiled_trainers(seed: int, n_sampled: int) -> dict[str, Trainer]:
    return {
        "meta-IRM": MetaIRMTrainer(
            MetaIRMConfig(seed=seed, n_epochs=PROFILE_EPOCHS)
        ),
        f"meta-IRM({n_sampled})": MetaIRMTrainer(
            MetaIRMConfig(seed=seed, n_epochs=PROFILE_EPOCHS,
                          n_sampled_envs=n_sampled)
        ),
        "LightMIRM": LightMIRMTrainer(
            LightMIRMConfig(seed=seed, n_epochs=PROFILE_EPOCHS)
        ),
    }


def run_table3(
    context: ExperimentContext, n_sampled: int = 5
) -> list[StepTimings]:
    """Profile the three Table III methods on the shared context.

    Per-epoch step times are averaged over ``PROFILE_EPOCHS`` epochs.  The
    meta-loss step dominates complete meta-IRM and is where LightMIRM's
    speedup comes from.
    """
    seed = context.settings.trainer_seeds[0]
    timings = []
    for name, trainer in _profiled_trainers(seed, n_sampled).items():
        timer = StepTimer(enabled=True)
        context.fit_trainer(trainer, timer=timer)
        per_epoch = {
            step: timer.total_step_seconds(step) / PROFILE_EPOCHS
            for step in STEP_NAMES
        }
        timings.append(
            StepTimings(
                method=name,
                mean_step_seconds=per_epoch,
                mean_epoch_seconds=timer.mean_epoch_seconds,
            )
        )
    return timings


def step_proportions(timing: StepTimings) -> dict[str, float]:
    """Fraction of the epoch each step takes (the Fig 7 pie data)."""
    total = sum(timing.mean_step_seconds.values())
    if total == 0:
        return {name: 0.0 for name in timing.mean_step_seconds}
    return {
        name: seconds / total
        for name, seconds in timing.mean_step_seconds.items()
    }


def format_table3(timings: list[StepTimings]) -> str:
    """Render Table III (per-step seconds) and the Fig 7 proportions."""
    rows = []
    for step in STEP_NAMES:
        row: dict[str, object] = {"step": step}
        for t in timings:
            row[t.method] = t.step(step)
        rows.append(row)
    epoch_row: dict[str, object] = {"step": "the whole epoch"}
    for t in timings:
        epoch_row[t.method] = t.mean_epoch_seconds
    rows.append(epoch_row)
    methods = tuple(t.method for t in timings)
    table = format_table(
        rows,
        columns=("step",) + methods,
        title="Table III: per-epoch time cost of operation steps (seconds)",
        float_format="{:.4f}",
    )
    complete = next(t for t in timings if t.method == "meta-IRM")
    light = next(t for t in timings if t.method == "LightMIRM")
    meta_ratio = _ratio(
        complete.step("calculating_meta_losses"),
        light.step("calculating_meta_losses"),
    )
    epoch_ratio = _ratio(complete.mean_epoch_seconds, light.mean_epoch_seconds)
    lines = [table, ""]
    lines.append(
        f"meta-loss step speedup (meta-IRM / LightMIRM): {meta_ratio:.1f}x"
    )
    lines.append(f"whole-epoch speedup: {epoch_ratio:.1f}x")
    lines.append("")
    lines.append("Fig 7: proportion of each step in the total time")
    for t in timings:
        proportions = step_proportions(t)
        rendered = "  ".join(
            f"{name}={fraction:.1%}" for name, fraction in proportions.items()
        )
        lines.append(f"  {t.method:16s} {rendered}")
    return "\n".join(lines)


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else float("inf")
