"""Table VI — performance comparison under a random (i.i.d.) split.

Splitting randomly removes the temporal drift, isolating pure cross-
province fairness.  Paper shapes to reproduce: complete meta-IRM attains
the best mean metrics; LightMIRM attains the best worst-province KS while
staying within a whisker on the means — i.e. the replay approximation costs
essentially nothing when there is no distribution shift, and still buys
fairness.
"""

from __future__ import annotations

from repro.eval.reports import format_table, highlight_best
from repro.experiments.runner import ExperimentContext, MethodScores
from repro.experiments.table2_sampling import sampling_levels
from repro.train.registry import TrainerSpec

__all__ = ["run_table6", "format_table6"]

#: Baseline methods in the paper's Table VI row order (before the meta rows).
BASELINES = ("Up Sampling", "Group DRO", "V-REx")


def run_table6(context: ExperimentContext) -> list[MethodScores]:
    """Seed-averaged Table VI rows on an i.i.d. split context.

    Args:
        context: Must be built with ``ExperimentSettings(split="iid")``.
    """
    if context.settings.split != "iid":
        raise ValueError("Table VI requires an i.i.d.-split context")
    small_s = sampling_levels(len(context.train_environments))[-1]
    specs = [(name, TrainerSpec.of(name)) for name in BASELINES]
    specs.append(
        (
            f"meta-IRM ({small_s})",
            TrainerSpec.of("meta-IRM", n_sampled_envs=small_s),
        )
    )
    specs.append(("meta-IRM(complete)", TrainerSpec.of("meta-IRM")))
    specs.append(("LightMIRM", TrainerSpec.of("LightMIRM")))
    return context.score_methods(specs)


def format_table6(scores: list[MethodScores]) -> str:
    """Render the i.i.d. comparison."""
    rows = [s.as_row() for s in scores]
    table = format_table(
        rows,
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Table VI: performance with random splitting (i.i.d.)",
    )
    return (
        f"{table}\n\n"
        f"best mKS: {highlight_best(rows, 'mKS')}\n"
        f"best wKS: {highlight_best(rows, 'wKS')}"
    )
