"""Table VI — performance comparison under a random (i.i.d.) split.

Splitting randomly removes the temporal drift, isolating pure cross-
province fairness.  Paper shapes to reproduce: complete meta-IRM attains
the best mean metrics; LightMIRM attains the best worst-province KS while
staying within a whisker on the means — i.e. the replay approximation costs
essentially nothing when there is no distribution shift, and still buys
fairness.
"""

from __future__ import annotations

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.eval.reports import format_table, highlight_best
from repro.experiments.runner import ExperimentContext, MethodScores
from repro.experiments.table2_sampling import sampling_levels
from repro.train.registry import make_trainer

__all__ = ["run_table6", "format_table6"]

#: Baseline methods in the paper's Table VI row order (before the meta rows).
BASELINES = ("Up Sampling", "Group DRO", "V-REx")


def run_table6(context: ExperimentContext) -> list[MethodScores]:
    """Seed-averaged Table VI rows on an i.i.d. split context.

    Args:
        context: Must be built with ``ExperimentSettings(split="iid")``.
    """
    if context.settings.split != "iid":
        raise ValueError("Table VI requires an i.i.d.-split context")
    scores = [
        context.score_method(name, lambda seed, name=name: make_trainer(
            name, seed=seed))
        for name in BASELINES
    ]
    small_s = sampling_levels(len(context.train_environments))[-1]
    scores.append(
        context.score_method(
            f"meta-IRM ({small_s})",
            lambda seed: MetaIRMTrainer(
                MetaIRMConfig(seed=seed, n_sampled_envs=small_s)
            ),
        )
    )
    scores.append(
        context.score_method(
            "meta-IRM(complete)",
            lambda seed: MetaIRMTrainer(MetaIRMConfig(seed=seed)),
        )
    )
    scores.append(
        context.score_method(
            "LightMIRM",
            lambda seed: LightMIRMTrainer(LightMIRMConfig(seed=seed)),
        )
    )
    return scores


def format_table6(scores: list[MethodScores]) -> str:
    """Render the i.i.d. comparison."""
    rows = [s.as_row() for s in scores]
    table = format_table(
        rows,
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Table VI: performance with random splitting (i.i.d.)",
    )
    return (
        f"{table}\n\n"
        f"best mKS: {highlight_best(rows, 'mKS')}\n"
        f"best wKS: {highlight_best(rows, 'wKS')}"
    )
