"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment needs the same scaffolding: generate the synthetic platform
data, make the temporal (or i.i.d.) split, fit the shared GBDT feature
extractor once, and train/evaluate LR heads against the encoded
environments.  :class:`ExperimentContext` caches those stages so a benchmark
that regenerates several paper artefacts does the expensive work once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData, LoanDataset
from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.data.splits import TrainTestSplit, iid_split, temporal_split
from repro.metrics.fairness import FairnessReport, evaluate_environments
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.timing import StepTimer
from repro.train.base import EpochCallback, Trainer, TrainResult

__all__ = ["ExperimentSettings", "ExperimentContext", "MethodScores"]

#: A factory mapping a trainer seed to a fresh Trainer instance.
TrainerFactory = Callable[[int], Trainer]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    Attributes:
        n_samples: Synthetic platform size.  The 40k default keeps the whole
            benchmark suite in minutes while preserving every qualitative
            shape; raise toward ``GeneratorConfig.paper_scale()`` to match
            the paper's data volume.
        data_seed: Seed of the synthetic platform.
        trainer_seeds: Training is repeated for each seed and metrics are
            averaged, absorbing sampling noise in the stochastic trainers.
        split: "temporal" (paper's main protocol) or "iid" (Table VI).
        generator_overrides: Extra :class:`GeneratorConfig` fields, e.g.
            ``{"registry": extended_registry()}`` for Table II/III.
    """

    n_samples: int = 40_000
    data_seed: int = 7
    trainer_seeds: tuple[int, ...] = (0, 1, 2)
    split: str = "temporal"
    generator_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.split not in ("temporal", "iid"):
            raise ValueError("split must be 'temporal' or 'iid'")
        if not self.trainer_seeds:
            raise ValueError("need at least one trainer seed")


@dataclass(frozen=True)
class MethodScores:
    """Seed-averaged evaluation of one method."""

    method: str
    mean_ks: float
    worst_ks: float
    mean_auc: float
    worst_auc: float
    worst_environment: str

    def as_row(self) -> dict[str, object]:
        """Row dict in the papers' column naming."""
        return {
            "method": self.method,
            "mKS": self.mean_ks,
            "wKS": self.worst_ks,
            "mAUC": self.mean_auc,
            "wAUC": self.worst_auc,
        }


class ExperimentContext:
    """Caches data generation, splitting and GBDT encoding for experiments.

    Args:
        settings: Experiment knobs (defaults reproduce the paper setup).
        tracer: Optional run tracer; every :meth:`fit_trainer` call is
            traced, so an experiment sweep leaves one log with a ``fit``
            span per trained head.
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        tracer: Tracer | None = None,
    ):
        self.settings = settings or ExperimentSettings()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @cached_property
    def generator_config(self) -> GeneratorConfig:
        return replace(
            GeneratorConfig(
                n_samples=self.settings.n_samples, seed=self.settings.data_seed
            ),
            **self.settings.generator_overrides,
        )

    @cached_property
    def dataset(self) -> LoanDataset:
        return LoanDataGenerator(self.generator_config).generate()

    @cached_property
    def split(self) -> TrainTestSplit:
        if self.settings.split == "temporal":
            return temporal_split(self.dataset)
        return iid_split(self.dataset, seed=self.settings.data_seed)

    @cached_property
    def extractor(self) -> GBDTFeatureExtractor:
        return GBDTFeatureExtractor().fit(self.split.train)

    @cached_property
    def train_environments(self) -> list[EnvironmentData]:
        return self.extractor.encode_environments(self.split.train)

    @cached_property
    def test_environments(self) -> list[EnvironmentData]:
        return self.extractor.encode_environments(self.split.test)

    # ------------------------------------------------------------- training

    def fit_trainer(
        self,
        trainer: Trainer,
        callback: EpochCallback | None = None,
        timer: StepTimer | None = None,
    ) -> TrainResult:
        """Train one LR head on the encoded training environments."""
        return trainer.fit(self.train_environments, callback=callback,
                           timer=timer, tracer=self.tracer)

    def evaluate_result(
        self,
        result: TrainResult,
        test_environments: Sequence[EnvironmentData] | None = None,
    ) -> FairnessReport:
        """Per-province report of a trained head on the test environments."""
        environments = list(test_environments or self.test_environments)
        labels = {e.name: e.labels for e in environments}
        scores = {
            e.name: result.predict_proba_env(e.name, e.features)
            for e in environments
        }
        return evaluate_environments(labels, scores)

    def score_method(
        self, method: str, factory: TrainerFactory
    ) -> MethodScores:
        """Train over all trainer seeds and average the four headline metrics."""
        reports = [
            self.evaluate_result(self.fit_trainer(factory(seed)))
            for seed in self.settings.trainer_seeds
        ]
        worst_envs = [r.worst_ks_environment for r in reports]
        modal_worst = max(set(worst_envs), key=worst_envs.count)
        return MethodScores(
            method=method,
            mean_ks=float(np.mean([r.mean_ks for r in reports])),
            worst_ks=float(np.mean([r.worst_ks for r in reports])),
            mean_auc=float(np.mean([r.mean_auc for r in reports])),
            worst_auc=float(np.mean([r.worst_auc for r in reports])),
            worst_environment=modal_worst,
        )

    def scores_by_environment(self, result: TrainResult,
                              dataset: LoanDataset) -> dict[str, np.ndarray]:
        """Model scores grouped by province for an arbitrary dataset slice."""
        encoded = self.extractor.transform(dataset)
        scores = result.predict_proba_grouped(encoded, dataset.provinces)
        return {
            name: scores[dataset.provinces == name]
            for name in dataset.province_names()
        }
