"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment needs the same scaffolding: generate the synthetic platform
data, make the temporal (or i.i.d.) split, fit the shared GBDT feature
extractor once, and train/evaluate LR heads against the encoded
environments.  :class:`ExperimentContext` caches those stages so a benchmark
that regenerates several paper artefacts does the expensive work once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import EnvironmentData, LoanDataset
from repro.data.generator import GeneratorConfig, LoanDataGenerator
from repro.data.splits import TrainTestSplit, iid_split, temporal_split
from repro.metrics.fairness import FairnessReport, evaluate_environments
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import ParallelEngine, spawn_task_seeds
from repro.parallel.shared import pack_train_test
from repro.pipeline.extractor import GBDTFeatureExtractor
from repro.timing import StepTimer
from repro.train.base import EpochCallback, Trainer, TrainResult
from repro.train.registry import TrainerSpec

__all__ = [
    "ExperimentSettings",
    "ExperimentContext",
    "MethodScores",
    "evaluate_result_on",
]

#: A factory mapping a trainer seed to a fresh Trainer instance.
TrainerFactory = Callable[[int], Trainer]


def evaluate_result_on(
    result: TrainResult, environments: Sequence[EnvironmentData]
) -> FairnessReport:
    """Per-province fairness report of a trained head on given environments.

    Module-level so parallel workers can reuse the exact evaluation code
    the serial path runs — bit-identical scores are an invariant the
    equivalence tests pin down.
    """
    environments = list(environments)
    labels = {e.name: e.labels for e in environments}
    scores = {
        e.name: result.predict_proba_env(e.name, e.features)
        for e in environments
    }
    return evaluate_environments(labels, scores)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    Attributes:
        n_samples: Synthetic platform size.  The 40k default keeps the whole
            benchmark suite in minutes while preserving every qualitative
            shape; raise toward ``GeneratorConfig.paper_scale()`` to match
            the paper's data volume.
        data_seed: Seed of the synthetic platform.
        trainer_seeds: Training is repeated for each seed and metrics are
            averaged, absorbing sampling noise in the stochastic trainers.
        split: "temporal" (paper's main protocol) or "iid" (Table VI).
        generator_overrides: Extra :class:`GeneratorConfig` fields, e.g.
            ``{"registry": extended_registry()}`` for Table II/III.
        n_jobs: Worker processes for the trainer×seed fan-out.  ``1``
            (default) runs serially; any value produces bit-identical
            :class:`MethodScores`, because seeds attach to tasks rather
            than workers.
    """

    n_samples: int = 40_000
    data_seed: int = 7
    trainer_seeds: tuple[int, ...] = (0, 1, 2)
    split: str = "temporal"
    generator_overrides: dict = field(default_factory=dict)
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.split not in ("temporal", "iid"):
            raise ValueError("split must be 'temporal' or 'iid'")
        if not self.trainer_seeds:
            raise ValueError("need at least one trainer seed")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")

    def derived_trainer_seeds(self) -> tuple[int, ...]:
        """Actual per-repeat RNG seeds, one ``SeedSequence`` child each.

        ``trainer_seeds`` are treated as entropy labels, not raw RNG
        seeds: feeding small consecutive integers (0, 1, 2) straight
        into generators yields correlated streams, and hand-offsetting
        them was ad hoc.  Spawning children of a root seeded by
        ``(data_seed, *trainer_seeds)`` gives pairwise-independent
        streams that depend only on the settings — so serial and
        parallel runs, whatever the scheduling, train from identical
        seeds.
        """
        return tuple(
            spawn_task_seeds(
                (self.data_seed, *self.trainer_seeds),
                len(self.trainer_seeds),
            )
        )


@dataclass(frozen=True)
class MethodScores:
    """Seed-averaged evaluation of one method."""

    method: str
    mean_ks: float
    worst_ks: float
    mean_auc: float
    worst_auc: float
    worst_environment: str

    def as_row(self) -> dict[str, object]:
        """Row dict in the papers' column naming."""
        return {
            "method": self.method,
            "mKS": self.mean_ks,
            "wKS": self.worst_ks,
            "mAUC": self.mean_auc,
            "wAUC": self.worst_auc,
        }


class ExperimentContext:
    """Caches data generation, splitting and GBDT encoding for experiments.

    Args:
        settings: Experiment knobs (defaults reproduce the paper setup).
        tracer: Optional run tracer; every :meth:`fit_trainer` call is
            traced, so an experiment sweep leaves one log with a ``fit``
            span per trained head.
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        tracer: Tracer | None = None,
    ):
        self.settings = settings or ExperimentSettings()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @cached_property
    def generator_config(self) -> GeneratorConfig:
        return replace(
            GeneratorConfig(
                n_samples=self.settings.n_samples, seed=self.settings.data_seed
            ),
            **self.settings.generator_overrides,
        )

    @cached_property
    def dataset(self) -> LoanDataset:
        return LoanDataGenerator(self.generator_config).generate()

    @cached_property
    def split(self) -> TrainTestSplit:
        if self.settings.split == "temporal":
            return temporal_split(self.dataset)
        return iid_split(self.dataset, seed=self.settings.data_seed)

    @cached_property
    def extractor(self) -> GBDTFeatureExtractor:
        return GBDTFeatureExtractor().fit(self.split.train)

    @cached_property
    def train_environments(self) -> list[EnvironmentData]:
        return self.extractor.encode_environments(self.split.train)

    @cached_property
    def test_environments(self) -> list[EnvironmentData]:
        return self.extractor.encode_environments(self.split.test)

    # ------------------------------------------------------------- training

    def fit_trainer(
        self,
        trainer: Trainer,
        callback: EpochCallback | None = None,
        timer: StepTimer | None = None,
    ) -> TrainResult:
        """Train one LR head on the encoded training environments."""
        return trainer.fit(self.train_environments, callback=callback,
                           timer=timer, tracer=self.tracer)

    def evaluate_result(
        self,
        result: TrainResult,
        test_environments: Sequence[EnvironmentData] | None = None,
    ) -> FairnessReport:
        """Per-province report of a trained head on the test environments."""
        return evaluate_result_on(
            result, test_environments or self.test_environments
        )

    @staticmethod
    def _aggregate(method: str,
                   reports: Sequence[FairnessReport]) -> MethodScores:
        """Seed-average the four headline metrics of one method."""
        worst_envs = [r.worst_ks_environment for r in reports]
        modal_worst = max(set(worst_envs), key=worst_envs.count)
        return MethodScores(
            method=method,
            mean_ks=float(np.mean([r.mean_ks for r in reports])),
            worst_ks=float(np.mean([r.worst_ks for r in reports])),
            mean_auc=float(np.mean([r.mean_auc for r in reports])),
            worst_auc=float(np.mean([r.worst_auc for r in reports])),
            worst_environment=modal_worst,
        )

    def score_method(
        self,
        method: str,
        factory: TrainerFactory | TrainerSpec,
        n_jobs: int | None = None,
    ) -> MethodScores:
        """Train over all trainer seeds and average the four headline metrics.

        Args:
            method: Display name for the scores row.
            factory: A :class:`~repro.train.registry.TrainerSpec` (works
                serially and in parallel) or any ``seed -> Trainer``
                callable (serial only).
            n_jobs: Overrides ``settings.n_jobs`` when given.
        """
        return self.score_methods([(method, factory)], n_jobs=n_jobs)[0]

    def score_methods(
        self,
        methods: Sequence[tuple[str, TrainerFactory | TrainerSpec]],
        n_jobs: int | None = None,
    ) -> list[MethodScores]:
        """Score several methods, fanning the trainer×seed grid over workers.

        The full grid — every (method, seed) pair — is one task list, so
        a Table I sweep keeps all workers busy even when a single method
        has fewer seeds than workers.  Workers receive the encoded
        environments through one shared-memory pack (attached by the pool
        initializer, never pickled per task) and per-task seeds derived
        up front by :meth:`ExperimentSettings.derived_trainer_seeds`, so
        results are bit-identical to the serial path.  With an enabled
        tracer, each worker traces into a buffer and the records are
        merged back here, in task order.

        Args:
            methods: ``(display name, spec-or-factory)`` pairs.  Plain
                callables force the serial path (closures don't pickle).
            n_jobs: Overrides ``settings.n_jobs`` when given.

        Returns:
            One :class:`MethodScores` per input pair, in input order.
        """
        methods = list(methods)
        jobs = self.settings.n_jobs if n_jobs is None else int(n_jobs)
        if jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        seeds = self.settings.derived_trainer_seeds()
        picklable = all(
            isinstance(factory, TrainerSpec) for _, factory in methods
        )
        if jobs == 1 or not picklable:
            return [
                self._aggregate(
                    method,
                    [
                        self.evaluate_result(self.fit_trainer(factory(seed)))
                        for seed in seeds
                    ],
                )
                for method, factory in methods
            ]
        return self._score_methods_parallel(methods, seeds, jobs)

    def _score_methods_parallel(
        self,
        methods: Sequence[tuple[str, TrainerSpec]],
        seeds: Sequence[int],
        jobs: int,
    ) -> list[MethodScores]:
        from repro.parallel.worker import (
            FitTask,
            init_experiment_worker,
            run_fit_task,
        )

        traced = self.tracer.enabled
        tasks = [
            FitTask(method=method, spec=spec, seed=seed, traced=traced)
            for method, spec in methods
            for seed in seeds
        ]
        pack = pack_train_test(self.train_environments,
                               self.test_environments)
        try:
            with self.tracer.span("score_methods", n_jobs=jobs,
                                  n_tasks=len(tasks)):
                outcomes = ParallelEngine(n_jobs=jobs).map(
                    run_fit_task,
                    tasks,
                    initializer=init_experiment_worker,
                    initargs=(pack.spec,),
                )
                for index, (task, outcome) in enumerate(
                    zip(tasks, outcomes)
                ):
                    if outcome.records is not None:
                        self.tracer.merge_child_records(
                            outcome.records,
                            child_start_unix=outcome.start_unix,
                            method=task.method,
                            trainer_seed=task.seed,
                            task=index,
                        )
        finally:
            pack.dispose()
        reports = [outcome.report for outcome in outcomes]
        per_method = len(seeds)
        return [
            self._aggregate(
                method, reports[i * per_method:(i + 1) * per_method]
            )
            for i, (method, _) in enumerate(methods)
        ]

    def scores_by_environment(self, result: TrainResult,
                              dataset: LoanDataset) -> dict[str, np.ndarray]:
        """Model scores grouped by province for an arbitrary dataset slice."""
        encoded = self.extractor.transform(dataset)
        scores = result.predict_proba_grouped(encoded, dataset.provinces)
        return {
            name: scores[dataset.provinces == name]
            for name in dataset.province_names()
        }
