"""Figure 4 — the distribution of vehicle types in different years.

The paper plots the vehicle-type mix in 2016 vs 2020 to demonstrate concept
drift in the customer base.  We regenerate the same marginals from the
synthetic platform and check that the year-over-year drift is material.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LoanDataset
from repro.data.schema import VEHICLE_TYPES
from repro.eval.reports import format_table

__all__ = ["run_fig4", "format_fig4", "mix_shift_l1"]


def run_fig4(
    dataset: LoanDataset, years: tuple[int, ...] = (2016, 2020)
) -> dict[int, dict[str, float]]:
    """Observed vehicle-type shares per requested year.

    Args:
        dataset: Full multi-year dataset.
        years: Years to tabulate (the paper shows 2016 and 2020, eliding
            the in-between years "for space").

    Returns:
        Year -> {vehicle type -> share of that year's records}.
    """
    indicator_cols = dataset.schema.vehicle_indicator_columns()
    result: dict[int, dict[str, float]] = {}
    for year in years:
        mask = dataset.years == year
        if not np.any(mask):
            raise ValueError(f"no records in year {year}")
        shares = dataset.features[np.flatnonzero(mask)][:, indicator_cols].mean(axis=0)
        result[year] = dict(zip(VEHICLE_TYPES, shares.tolist()))
    return result


def mix_shift_l1(mixes: dict[int, dict[str, float]]) -> float:
    """Total variation distance between the first and last year's mixes."""
    years = sorted(mixes)
    first, last = mixes[years[0]], mixes[years[-1]]
    return 0.5 * sum(abs(first[v] - last[v]) for v in VEHICLE_TYPES)


def format_fig4(mixes: dict[int, dict[str, float]]) -> str:
    """Render the per-year vehicle mix table."""
    rows = []
    for year in sorted(mixes):
        row: dict[str, object] = {"year": year}
        row.update(mixes[year])
        rows.append(row)
    table = format_table(
        rows,
        columns=("year",) + VEHICLE_TYPES,
        title="Fig 4: Distribution of vehicle types by year",
    )
    return f"{table}\n\nTV distance first->last year: {mix_shift_l1(mixes):.4f}"
