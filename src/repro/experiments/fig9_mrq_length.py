"""Figure 9 — the impact of the MRQ length L.

Sweeps L from 1 to 9 and reports mKS and wKS.  Paper observations to hold:
L = 1 (which degrades LightMIRM into one-sample meta-IRM without replay) is
clearly the worst; performance peaks at a moderate length (paper: mKS peaks
near L = 7, wKS near L = 5) and is stable around the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext
from repro.train.registry import TrainerSpec

__all__ = ["MRQLengthResult", "run_fig9", "format_fig9"]

LENGTHS = tuple(range(1, 10))


@dataclass(frozen=True)
class MRQLengthResult:
    """Seed-averaged metrics for one queue length."""

    length: int
    mean_ks: float
    worst_ks: float


def run_fig9(
    context: ExperimentContext, lengths: tuple[int, ...] = LENGTHS
) -> list[MRQLengthResult]:
    """Sweep the MRQ length with every other hyper-parameter fixed."""
    scores = context.score_methods(
        [
            (
                f"LightMIRM(L={length})",
                TrainerSpec.of("LightMIRM", queue_length=length),
            )
            for length in lengths
        ]
    )
    return [
        MRQLengthResult(
            length=length, mean_ks=s.mean_ks, worst_ks=s.worst_ks
        )
        for length, s in zip(lengths, scores)
    ]


def format_fig9(results: list[MRQLengthResult]) -> str:
    """Render the two Fig 9 panels (mKS and wKS vs L)."""
    rows = [
        {"L": r.length, "mKS": r.mean_ks, "wKS": r.worst_ks} for r in results
    ]
    table = format_table(
        rows,
        columns=("L", "mKS", "wKS"),
        title="Fig 9: impact of the MRQ length",
    )
    best_mean = max(results, key=lambda r: r.mean_ks)
    best_worst = max(results, key=lambda r: r.worst_ks)
    shortest = next(r for r in results if r.length == min(r.length for r in results))
    return (
        f"{table}\n\n"
        f"mKS peaks at L={best_mean.length}; wKS peaks at L={best_worst.length}; "
        f"L={shortest.length} (no replay) scores mKS={shortest.mean_ks:.4f}, "
        f"wKS={shortest.worst_ks:.4f}"
    )
