"""Table I — main performance comparison of all seven methods.

Regenerates the paper's headline table: mKS / wKS / mAUC / wAUC of ERM,
ERM + fine-tuning, Up Sampling, Group DRO, V-REx, meta-IRM and LightMIRM
under the temporal split (train 2016-2019, test 2020).

Paper shape to reproduce: LightMIRM attains the best worst-province metrics
while staying at the top on the mean metrics; ERM is competitive on the mean
but clearly worst on wKS; Group DRO trails on the mean metrics.
"""

from __future__ import annotations

from repro.eval.reports import format_table, highlight_best
from repro.experiments.runner import ExperimentContext, MethodScores
from repro.train.registry import TrainerSpec

__all__ = ["TABLE1_METHODS", "run_table1", "format_table1"]

#: Methods in the paper's row order.
TABLE1_METHODS = (
    "ERM",
    "ERM + fine-tuning",
    "Up Sampling",
    "Group DRO",
    "V-REx",
    "meta-IRM",
    "LightMIRM",
)


def run_table1(
    context: ExperimentContext,
    methods: tuple[str, ...] = TABLE1_METHODS,
) -> list[MethodScores]:
    """Train and evaluate every Table I method on the shared context.

    The whole method×seed grid goes through ``score_methods`` as
    declarative specs, so ``ExperimentSettings(n_jobs=N)`` parallelises
    the entire table at once.
    """
    return context.score_methods(
        [(name, TrainerSpec.of(name)) for name in methods]
    )


def format_table1(scores: list[MethodScores]) -> str:
    """Render the Table I rows plus the best-method callouts."""
    rows = [s.as_row() for s in scores]
    table = format_table(
        rows,
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Table I: Performance comparison (temporal split, 2020 test)",
    )
    lines = [
        table,
        "",
        f"best wKS : {highlight_best(rows, 'wKS')}",
        f"best mKS : {highlight_best(rows, 'mKS')}",
        f"best mAUC: {highlight_best(rows, 'mAUC')}",
        f"best wAUC: {highlight_best(rows, 'wAUC')}",
    ]
    return "\n".join(lines)
