"""Table V — performance on Guangdong-2020 as out-of-distribution data.

Guangdong's volume halves in 2020 (Fig 10), so the paper treats its 2020
records as OOD and compares per-method KS/AUC there.  Shape to reproduce:
LightMIRM attains the best KS (invariant features resist the shift), with
ERM competitive on AUC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.reports import format_table, highlight_best
from repro.experiments.runner import ExperimentContext
from repro.metrics.auc import auc_score
from repro.metrics.ks import ks_score
from repro.train.registry import make_trainer

__all__ = ["TABLE5_METHODS", "ProvinceMethodScore", "run_table5", "format_table5"]

#: Methods in the paper's Table V row order.
TABLE5_METHODS = (
    "ERM",
    "Up Sampling",
    "Group DRO",
    "V-REx",
    "meta-IRM",
    "LightMIRM",
)


@dataclass(frozen=True)
class ProvinceMethodScore:
    """KS/AUC of one method on one province's test slice."""

    method: str
    ks: float
    auc: float


def run_table5(
    context: ExperimentContext,
    province: str = "Guangdong",
    methods: tuple[str, ...] = TABLE5_METHODS,
) -> list[ProvinceMethodScore]:
    """Per-method KS/AUC on the province's 2020 data, seed-averaged."""
    test_slice = context.split.test.filter_province(province)
    if test_slice.n_samples == 0:
        raise ValueError(f"no 2020 test data for {province!r}")
    scores = []
    for name in methods:
        ks_vals, auc_vals = [], []
        for seed in context.settings.trainer_seeds:
            result = context.fit_trainer(make_trainer(name, seed=seed))
            by_env = context.scores_by_environment(result, test_slice)
            model_scores = by_env[province]
            ks_vals.append(ks_score(test_slice.labels, model_scores))
            auc_vals.append(auc_score(test_slice.labels, model_scores))
        scores.append(
            ProvinceMethodScore(
                method=name,
                ks=float(np.mean(ks_vals)),
                auc=float(np.mean(auc_vals)),
            )
        )
    return scores


def format_table5(scores: list[ProvinceMethodScore],
                  province: str = "Guangdong") -> str:
    """Render the Table V comparison."""
    rows = [{"method": s.method, "KS": s.ks, "AUC": s.auc} for s in scores]
    table = format_table(
        rows,
        columns=("method", "KS", "AUC"),
        title=f"Table V: performance on {province} (2020, OOD)",
    )
    return (
        f"{table}\n\n"
        f"best KS : {highlight_best(rows, 'KS')}\n"
        f"best AUC: {highlight_best(rows, 'AUC')}"
    )
