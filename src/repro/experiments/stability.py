"""Stability study: do the headline shapes hold across platform seeds?

Single-seed synthetic results can flip close orderings, so this experiment
regenerates the Table I comparison on several independently-sampled
platforms and reports mean ± std per method, plus how often each
qualitative claim held.  It backs the robustness notes in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext, ExperimentSettings
from repro.experiments.table1_main import run_table1
from repro.train.registry import available_trainers

__all__ = ["StabilityRow", "StabilityStudy", "run_stability", "format_stability"]

#: The qualitative claims checked on every platform seed.
CLAIMS = (
    "erm_worst_wks",          # ERM has the lowest worst-province KS
    "light_beats_erm_wks",    # LightMIRM wKS > ERM wKS
    "light_mean_holds",       # LightMIRM mKS >= ERM mKS - 0.01
    "irm_family_top3_wks",    # meta-IRM or LightMIRM in the top-3 by wKS
)


@dataclass(frozen=True)
class StabilityRow:
    """Mean ± std of one method over the platform seeds."""

    method: str
    mean_ks: float
    mean_ks_std: float
    worst_ks: float
    worst_ks_std: float


@dataclass(frozen=True)
class StabilityStudy:
    """Aggregated multi-seed study."""

    rows: tuple[StabilityRow, ...]
    claim_rates: dict[str, float]
    n_seeds: int


def run_stability(
    data_seeds: Sequence[int] = (7, 11, 23),
    n_samples: int = 40_000,
    trainer_seeds: tuple[int, ...] = (0, 1, 2),
    methods: tuple[str, ...] = ("ERM", "Group DRO", "V-REx", "meta-IRM",
                                "LightMIRM"),
    n_jobs: int = 1,
) -> StabilityStudy:
    """Run the Table I comparison on several platform seeds and aggregate.

    Args:
        data_seeds: Independent synthetic-platform seeds.
        n_samples: Platform size per seed.  The 40k default matches the
            main benchmarks; below ~30k the worst-province KS noise
            (smallest provinces get <100 test rows) swamps the method
            differences.
        trainer_seeds: Training seeds averaged within each platform.
        methods: Methods to compare (must be registry names).
        n_jobs: Worker processes for each platform's method×seed grid
            (the platforms themselves run sequentially — each needs its
            own generated dataset and fitted extractor).  Results are
            bit-identical to ``n_jobs=1``.

    Returns:
        A :class:`StabilityStudy` with per-method statistics and the
        fraction of seeds on which each qualitative claim held.
    """
    unknown = set(methods) - set(available_trainers())
    if unknown:
        raise KeyError(f"unknown methods: {sorted(unknown)}")
    per_seed: list[dict[str, tuple[float, float]]] = []
    claim_hits = {claim: 0 for claim in CLAIMS}

    for data_seed in data_seeds:
        context = ExperimentContext(
            ExperimentSettings(
                n_samples=n_samples,
                data_seed=data_seed,
                trainer_seeds=trainer_seeds,
                n_jobs=n_jobs,
            )
        )
        scores = run_table1(context, methods=methods)
        by_name = {s.method: s for s in scores}
        per_seed.append(
            {s.method: (s.mean_ks, s.worst_ks) for s in scores}
        )

        erm = by_name["ERM"]
        light = by_name["LightMIRM"]
        if erm.worst_ks == min(s.worst_ks for s in scores):
            claim_hits["erm_worst_wks"] += 1
        if light.worst_ks > erm.worst_ks:
            claim_hits["light_beats_erm_wks"] += 1
        if light.mean_ks >= erm.mean_ks - 0.01:
            claim_hits["light_mean_holds"] += 1
        top3 = {
            s.method
            for s in sorted(scores, key=lambda s: -s.worst_ks)[:3]
        }
        if {"meta-IRM", "LightMIRM"} & top3:
            claim_hits["irm_family_top3_wks"] += 1

    n = len(list(data_seeds))
    rows = []
    for method in methods:
        means = np.array([seed_scores[method][0] for seed_scores in per_seed])
        worsts = np.array([seed_scores[method][1] for seed_scores in per_seed])
        rows.append(
            StabilityRow(
                method=method,
                mean_ks=float(means.mean()),
                mean_ks_std=float(means.std()),
                worst_ks=float(worsts.mean()),
                worst_ks_std=float(worsts.std()),
            )
        )
    return StabilityStudy(
        rows=tuple(rows),
        claim_rates={claim: hits / n for claim, hits in claim_hits.items()},
        n_seeds=n,
    )


def format_stability(study: StabilityStudy) -> str:
    """Render the multi-seed study."""
    rows = [
        {
            "method": r.method,
            "mKS": f"{r.mean_ks:.4f}±{r.mean_ks_std:.4f}",
            "wKS": f"{r.worst_ks:.4f}±{r.worst_ks_std:.4f}",
        }
        for r in study.rows
    ]
    table = format_table(
        rows,
        columns=("method", "mKS", "wKS"),
        title=f"Stability over {study.n_seeds} platform seeds (mean±std)",
    )
    lines = [table, "", "claim hold-rates:"]
    for claim, rate in study.claim_rates.items():
        lines.append(f"  {claim:24s} {rate:.0%}")
    return "\n".join(lines)
