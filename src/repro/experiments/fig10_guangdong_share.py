"""Figure 10 — the ratio of Guangdong transactions to the total, 2016-2020.

The paper uses Guangdong's volume collapse in 2020 (its share halves) as the
covariate-shift case study; Table V then treats Guangdong-2020 as OOD data.
"""

from __future__ import annotations

from repro.data.dataset import LoanDataset
from repro.eval.reports import format_series

__all__ = ["run_fig10", "format_fig10", "share_drop_ratio"]


def run_fig10(
    dataset: LoanDataset, province: str = "Guangdong"
) -> dict[int, float]:
    """Per-year share of the given province in total volume."""
    shares = dataset.province_share_by_year()
    out = {}
    for year in sorted(shares):
        if province not in shares[year]:
            raise KeyError(f"{province!r} absent in year {year}")
        out[year] = shares[year][province]
    return out


def share_drop_ratio(shares: dict[int, float]) -> float:
    """2020 share relative to the 2016-2019 mean (paper: about one half)."""
    pre = [v for y, v in shares.items() if y < 2020]
    if not pre or 2020 not in shares:
        raise ValueError("need 2016-2019 and 2020 shares")
    return shares[2020] / (sum(pre) / len(pre))


def format_fig10(shares: dict[int, float]) -> str:
    """Render the share series plus the drop ratio."""
    series = format_series(
        "Fig 10: Guangdong share of transactions",
        xs=sorted(shares),
        ys=[shares[y] for y in sorted(shares)],
        x_label="year",
        y_label="share",
    )
    return f"{series}\n\n2020 / (2016-19 mean) = {share_drop_ratio(shares):.2f}"
