"""Figure 5 + the online comparison (Section IV-C1).

Replays the 2020 application stream through a LightMIRM-trained companion
model: sweeping the refusal threshold yields the false-positive-rate and
bad-debt-rate curves of Fig 5, and the operating point at threshold 0.5
gives the headline bad-debt reduction (paper: 2.09% -> 0.73%, a 63% cut by
refusing only a small share of loans).
"""

from __future__ import annotations

import numpy as np

from repro.eval.online import OnlineReplayResult, replay_online_test
from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext
from repro.train.registry import make_trainer

__all__ = ["run_fig5", "format_fig5"]


def run_fig5(
    context: ExperimentContext,
    method: str = "LightMIRM",
    operating_threshold: float = 0.5,
) -> OnlineReplayResult:
    """Train the companion model and replay the 2020 stream through it."""
    result = context.fit_trainer(
        make_trainer(method, seed=context.settings.trainer_seeds[0])
    )
    test = context.split.test
    scores = result.predict_proba(context.extractor.transform(test))
    return replay_online_test(
        test.labels, scores, operating_threshold=operating_threshold
    )


def format_fig5(replay: OnlineReplayResult) -> str:
    """Render the curve samples plus the headline operating point."""
    curves = replay.curves
    # Sample a readable subset of the sweep for the text rendering.
    idx = np.linspace(0, curves["thresholds"].size - 1, 11).astype(int)
    rows = [
        {
            "threshold": float(curves["thresholds"][i]),
            "false_positive_rate": float(curves["false_positive_rate"][i]),
            "bad_debt_rate": float(curves["bad_debt_rate"][i]),
            "refusal_rate": float(curves["refusal_rate"][i]),
        }
        for i in idx
    ]
    table = format_table(
        rows,
        columns=("threshold", "false_positive_rate", "bad_debt_rate",
                 "refusal_rate"),
        title="Fig 5: online replay - FPR and bad-debt rate vs threshold",
    )
    return (
        f"{table}\n\n"
        f"baseline bad-debt rate : {replay.baseline_bad_debt_rate:.4f}\n"
        f"companion bad-debt rate: {replay.companion_bad_debt_rate:.4f} "
        f"(threshold {replay.operating_threshold})\n"
        f"reduction              : {replay.reduction_fraction:.1%} "
        f"while refusing {replay.refusal_at_threshold:.1%} of applications"
    )
