"""Experiment harness: one module per table/figure of the paper.

Index (see DESIGN.md for the full mapping):

==========  =====================================================
Artefact    Module
==========  =====================================================
Fig 1       :mod:`repro.experiments.fig1_province_map`
Fig 4       :mod:`repro.experiments.fig4_vehicle_mix`
Fig 5       :mod:`repro.experiments.fig5_online`
Table I     :mod:`repro.experiments.table1_main`
Table II    :mod:`repro.experiments.table2_sampling` (+ Figs 6, 8)
Table III   :mod:`repro.experiments.table3_timing` (+ Fig 7)
Fig 9       :mod:`repro.experiments.fig9_mrq_length`
Table IV    :mod:`repro.experiments.table4_gamma`
Fig 10      :mod:`repro.experiments.fig10_guangdong_share`
Table V     :mod:`repro.experiments.table5_guangdong`
Fig 11      :mod:`repro.experiments.fig11_hubei`
Table VI    :mod:`repro.experiments.table6_iid`
(extra)     :mod:`repro.experiments.stability` — multi-seed shapes
==========  =====================================================
"""

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentSettings,
    MethodScores,
)

__all__ = ["ExperimentContext", "ExperimentSettings", "MethodScores"]
