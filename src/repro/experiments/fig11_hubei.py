"""Figure 11 — performance on Hubei province in 2020, by half-year.

Hubei's 2020-H1 data carries the COVID concept shift (customer patterns
changed, then rolled back in H2).  The paper compares per-method KS in the
two halves.  Shapes to reproduce: ERM collapses in H1 but recovers in H2
(it fits the stable patterns); the IRM-family methods are far more stable
across the two halves, with LightMIRM best in H1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.ks import ks_score
from repro.train.registry import make_trainer

__all__ = ["FIG11_METHODS", "HalfYearScores", "run_fig11", "format_fig11"]

FIG11_METHODS = (
    "ERM",
    "Up Sampling",
    "Group DRO",
    "V-REx",
    "meta-IRM",
    "LightMIRM",
)


@dataclass(frozen=True)
class HalfYearScores:
    """KS of one method on a province's two half-years."""

    method: str
    ks_first_half: float
    ks_second_half: float

    @property
    def stability_gap(self) -> float:
        """Absolute H1-H2 difference; small = robust to the shock."""
        return abs(self.ks_first_half - self.ks_second_half)


def run_fig11(
    context: ExperimentContext,
    province: str = "Hubei",
    methods: tuple[str, ...] = FIG11_METHODS,
) -> list[HalfYearScores]:
    """Per-method KS on the province's 2020 H1 and H2, seed-averaged."""
    test = context.split.test.filter_province(province)
    h1 = test.filter_half(1)
    h2 = test.filter_half(2)
    if h1.n_samples == 0 or h2.n_samples == 0:
        raise ValueError(f"missing half-year data for {province!r}")
    scores = []
    for name in methods:
        ks1, ks2 = [], []
        for seed in context.settings.trainer_seeds:
            result = context.fit_trainer(make_trainer(name, seed=seed))
            s1 = context.scores_by_environment(result, h1)[province]
            s2 = context.scores_by_environment(result, h2)[province]
            ks1.append(ks_score(h1.labels, s1))
            ks2.append(ks_score(h2.labels, s2))
        scores.append(
            HalfYearScores(
                method=name,
                ks_first_half=float(np.mean(ks1)),
                ks_second_half=float(np.mean(ks2)),
            )
        )
    return scores


def format_fig11(scores: list[HalfYearScores], province: str = "Hubei") -> str:
    """Render the Fig 11 bars plus the stability comparison."""
    rows = [
        {
            "method": s.method,
            "KS 2020-H1": s.ks_first_half,
            "KS 2020-H2": s.ks_second_half,
            "gap": s.stability_gap,
        }
        for s in scores
    ]
    table = format_table(
        rows,
        columns=("method", "KS 2020-H1", "KS 2020-H2", "gap"),
        title=f"Fig 11: performance on {province} in 2020 by half-year",
    )
    best_h1 = max(scores, key=lambda s: s.ks_first_half)
    erm = next(s for s in scores if s.method == "ERM")
    return (
        f"{table}\n\n"
        f"best H1 KS: {best_h1.method} ({best_h1.ks_first_half:.4f}); "
        f"ERM H1->H2 swing: {erm.ks_first_half:.4f} -> {erm.ks_second_half:.4f}"
    )
