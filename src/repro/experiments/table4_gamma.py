"""Table IV — the impact of the MRQ decay weight gamma.

Sweeps gamma over {0.1, 0.3, 0.5, 0.7, 0.9, 1.0} with the queue length
fixed.  Paper observations to hold: gamma = 1 (no decay, equal weight on
stale losses) is the worst setting on nearly every metric; no single
gamma < 1 wins everywhere, the optimum sits in the mid-to-high range.
"""

from __future__ import annotations

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext, MethodScores
from repro.train.registry import TrainerSpec

__all__ = ["GAMMAS", "run_table4", "format_table4"]

GAMMAS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def run_table4(
    context: ExperimentContext, gammas: tuple[float, ...] = GAMMAS
) -> list[MethodScores]:
    """Seed-averaged metrics for each gamma."""
    return context.score_methods(
        [
            (f"gamma={gamma}", TrainerSpec.of("LightMIRM", gamma=gamma))
            for gamma in gammas
        ]
    )


def format_table4(scores: list[MethodScores]) -> str:
    """Render the gamma ablation."""
    rows = [s.as_row() for s in scores]
    table = format_table(
        rows,
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Table IV: impact of the MRQ weight gamma",
    )
    no_decay = rows[-1]
    decayed = rows[:-1]
    beats = sum(
        1
        for metric in ("mKS", "wKS", "mAUC", "wAUC")
        if any(r[metric] > no_decay[metric] for r in decayed)
    )
    return (
        f"{table}\n\n"
        f"gamma=1 (no decay) is beaten by some gamma<1 on {beats}/4 metrics"
    )
