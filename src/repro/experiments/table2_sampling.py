"""Table II + Figures 6 and 8 — LightMIRM vs meta-IRM sampling variants.

The paper's central efficiency/quality trade-off study: complete meta-IRM,
meta-IRM with sampled meta-loss environments (S = 20, 10, 5) and LightMIRM
(L = 5), compared on the four headline metrics (Table II) and on the
evolution of the test KS during training (Figs 6 and 8).

Run with the extended 26-province registry so the S values match the paper;
with the default 12-province registry the harness adapts S to {8, 4, 2}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_irm import MetaIRMTrainer
from repro.eval.reports import format_table
from repro.eval.tracking import KSTrackingCallback
from repro.experiments.runner import ExperimentContext, MethodScores
from repro.models.logistic import LogisticModel
from repro.train.base import Trainer
from repro.train.registry import TrainerSpec

__all__ = [
    "sampling_levels",
    "run_table2",
    "run_training_curves",
    "format_table2",
    "format_curves",
]

#: Epoch budget shared by every variant so the curves are comparable.
CURVE_EPOCHS = 120


def sampling_levels(n_environments: int) -> tuple[int, ...]:
    """The meta-IRM sampling sizes S to compare.

    Paper values {20, 10, 5} need M > 20 environments; for smaller M we
    keep the same geometric coverage of (M - 1): roughly 2/3, 1/3 and 1/6.
    """
    if n_environments > 21:
        return (20, 10, 5)
    others = n_environments - 1
    levels = sorted(
        {max(1, round(others * f)) for f in (2 / 3, 1 / 3, 1 / 6)}, reverse=True
    )
    return tuple(levels)


def _variant_specs(n_environments: int) -> list[tuple[str, TrainerSpec]]:
    """All Table II rows as declarative (name, spec) pairs."""
    specs: list[tuple[str, TrainerSpec]] = [
        ("meta-IRM", TrainerSpec.of("meta-IRM")),
    ]
    for s in sampling_levels(n_environments):
        specs.append(
            (f"meta-IRM({s})", TrainerSpec.of("meta-IRM", n_sampled_envs=s))
        )
    specs.append(("LightMIRM", TrainerSpec.of("LightMIRM")))
    return specs


def run_table2(context: ExperimentContext) -> list[MethodScores]:
    """Seed-averaged Table II rows."""
    return context.score_methods(
        _variant_specs(len(context.train_environments))
    )


@dataclass(frozen=True)
class TrainingCurve:
    """Test-KS evolution of one variant (a Fig 6 / Fig 8 series)."""

    method: str
    epochs: list[int]
    test_ks: list[float]

    def final(self) -> float:
        return self.test_ks[-1]

    def best(self) -> float:
        return max(self.test_ks)


def run_training_curves(
    context: ExperimentContext,
    every: int = 5,
    n_epochs: int = CURVE_EPOCHS,
) -> list[TrainingCurve]:
    """Track test KS per epoch for every variant (Fig 6 / Fig 8 series).

    All variants run the same number of epochs here (unlike Table II, which
    uses each method's tuned budget) so the curves share an x-axis.
    """
    n_envs = len(context.train_environments)
    seed = context.settings.trainer_seeds[0]
    curves = []
    variants: dict[str, Trainer] = {
        "meta-IRM": MetaIRMTrainer(MetaIRMConfig(seed=seed, n_epochs=n_epochs)),
    }
    for s in sampling_levels(n_envs):
        variants[f"meta-IRM({s})"] = MetaIRMTrainer(
            MetaIRMConfig(seed=seed, n_sampled_envs=s, n_epochs=n_epochs)
        )
    variants["LightMIRM"] = LightMIRMTrainer(
        LightMIRMConfig(seed=seed, n_epochs=n_epochs)
    )
    n_features = context.train_environments[0].features.shape[1]
    for name, trainer in variants.items():
        callback = KSTrackingCallback(
            LogisticModel(n_features, l2=trainer.config.l2),
            context.test_environments,
            statistic="mean",
            every=every,
        )
        context.fit_trainer(trainer, callback=callback)
        epochs = [e for e, _ in callback.curve]
        values = [v for _, v in callback.curve]
        curves.append(TrainingCurve(method=name, epochs=epochs, test_ks=values))
    return curves


def format_table2(scores: list[MethodScores]) -> str:
    """Render the Table II comparison."""
    rows = [s.as_row() for s in scores]
    return format_table(
        rows,
        columns=("method", "mKS", "wKS", "mAUC", "wAUC"),
        title="Table II: meta-IRM sampling variants vs LightMIRM",
    )


def format_curves(curves: list[TrainingCurve]) -> str:
    """Render the Fig 6 / Fig 8 curves as aligned text series."""
    lines = ["Fig 6/8: test mean-KS during training"]
    for curve in curves:
        points = "  ".join(
            f"{e}:{v:.4f}" for e, v in zip(curve.epochs, curve.test_ks)
        )
        lines.append(f"  {curve.method:16s} {points}")
        lines.append(
            f"  {'':16s} best={curve.best():.4f} final={curve.final():.4f}"
        )
    return "\n".join(lines)
