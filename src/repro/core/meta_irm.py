"""Meta-IRM (Algorithm 1): MAML-based invariant risk minimisation.

Each outer iteration:

1. **Inner loop** (per environment m): evaluate the environment risk and
   take one gradient step, ``θ̄_m = θ − α ∇R^m(θ)``.
2. **Meta-losses**: ``R_meta(θ̄_m) = Σ_{m'≠m} R^{m'}(D_{m'}; θ̄_m)`` — the
   O(M²) step LightMIRM later removes.  The meta-IRM(S) variants of
   Table II approximate the sum over a random sample of S environments.
3. **Outer update**: ``θ ← θ − β ∇_θ(Σ_m R_meta(θ̄_m) + λ σ)`` with σ the
   std-dev of the meta-losses, differentiated exactly through the inner
   step via Hessian-vector products.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MetaIRMConfig
from repro.core.meta_grad import backprop_through_inner_step, sigma_and_weights
from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import EpochCallback, Trainer, TrainingHistory

__all__ = ["MetaIRMTrainer"]


class MetaIRMTrainer(Trainer):
    """Trainer implementing Algorithm 1 (complete or sampled meta-IRM)."""

    def __init__(self, config: MetaIRMConfig | None = None):
        config = config or MetaIRMConfig()
        super().__init__(config)
        self.config: MetaIRMConfig = config
        if config.n_sampled_envs is None:
            self.name = "meta-IRM"
        else:
            self.name = f"meta-IRM({config.n_sampled_envs})"

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        n_envs = len(environments)
        rng = np.random.default_rng(cfg.seed)

        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            with timer.step("loading_data"):
                env_order = list(range(n_envs))
                epoch_envs = self._epoch_environments(environments)
            with timer.step("transforming_format"):
                pass  # format transform happens once in the pipeline

            inner_grads: list[np.ndarray] = []
            adapted: list[np.ndarray] = []
            env_losses: dict[str, float] = {}
            meta_losses = np.zeros(n_envs)
            # Gradient of each meta-loss w.r.t. the adapted parameters.
            meta_grads_at_adapted: list[np.ndarray] = []

            for m in env_order:
                env = epoch_envs[m]
                with timer.step("inner_optimization"):
                    loss_m, grad_m = model.loss_and_gradient(
                        theta, env.features, env.labels
                    )
                    theta_bar = theta - cfg.inner_lr * grad_m
                env_losses[env.name] = loss_m
                inner_grads.append(grad_m)
                adapted.append(theta_bar)

                with timer.step("calculating_meta_losses"):
                    others = self._meta_environments(m, n_envs, rng)
                    meta_loss = 0.0
                    meta_grad = np.zeros_like(theta)
                    for m_prime in others:
                        other = epoch_envs[m_prime]
                        loss_mp, grad_mp = model.loss_and_gradient(
                            theta_bar, other.features, other.labels
                        )
                        meta_loss += loss_mp
                        meta_grad += grad_mp
                    # Sampled variants estimate the full (M-1)-environment
                    # sum from S draws; the (M-1)/S factor keeps the
                    # estimator unbiased so that S controls only the
                    # variance of the meta-loss, not the step size.
                    scale = (n_envs - 1) / len(others)
                    meta_losses[m] = scale * meta_loss
                    meta_grads_at_adapted.append(scale * meta_grad)

            with timer.step("backward_propagation"):
                sigma, weights = sigma_and_weights(
                    meta_losses, cfg.lambda_penalty
                )
                outer_grad = np.zeros_like(theta)
                for m in env_order:
                    chained = backprop_through_inner_step(
                        model,
                        theta,
                        epoch_envs[m],
                        meta_grads_at_adapted[m],
                        cfg.inner_lr,
                        first_order=cfg.first_order,
                    )
                    outer_grad += weights[m] * chained
                theta = self._optimizer.step(theta, outer_grad)
            timer.end_epoch()

            objective = float(meta_losses.sum() + cfg.lambda_penalty * sigma)
            extra = {}
            if self._tracer.enabled:
                extra = {
                    "penalty": float(cfg.lambda_penalty * sigma),
                    "meta_loss_total": float(meta_losses.sum()),
                    "meta_losses": {
                        environments[m].name: float(meta_losses[m])
                        for m in env_order
                    },
                    "grad_norm": float(np.linalg.norm(outer_grad)),
                }
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        return theta

    def _meta_environments(
        self, m: int, n_envs: int, rng: np.random.Generator
    ) -> list[int]:
        """Environments entering ``R_meta(θ̄_m)``: all others, or a sample."""
        others = [i for i in range(n_envs) if i != m]
        s = self.config.n_sampled_envs
        if s is None or s >= len(others):
            return others
        chosen = rng.choice(len(others), size=s, replace=False)
        return [others[i] for i in chosen]
