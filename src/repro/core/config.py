"""Hyper-parameter dataclasses for the meta-IRM family."""

from __future__ import annotations

from dataclasses import dataclass

from repro.train.base import BaseTrainConfig

__all__ = ["MetaIRMConfig", "LightMIRMConfig"]


@dataclass(frozen=True)
class MetaIRMConfig(BaseTrainConfig):
    """Algorithm 1 hyper-parameters.

    Attributes:
        inner_lr: Inner-loop step size α (Eq. 5).
        lambda_penalty: Weight λ of the σ (std-dev) auxiliary loss (Eq. 6).
        n_sampled_envs: When set, approximate each meta-loss over a random
            sample of this many other environments instead of all M-1 —
            the meta-IRM(S) variants of Table II (S in {5, 10, 20}).
            ``None`` runs complete meta-IRM.
        first_order: Drop the Hessian term of the MAML chain rule (ablation;
            the paper's algorithm is second-order).
    """

    n_epochs: int = 80
    learning_rate: float = 0.02
    inner_lr: float = 0.1
    lambda_penalty: float = 3.0
    n_sampled_envs: int | None = None
    first_order: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inner_lr <= 0:
            raise ValueError("inner_lr must be positive")
        if self.lambda_penalty < 0:
            raise ValueError("lambda_penalty must be non-negative")
        if self.n_sampled_envs is not None and self.n_sampled_envs < 1:
            raise ValueError("n_sampled_envs must be >= 1 when set")


@dataclass(frozen=True)
class LightMIRMConfig(BaseTrainConfig):
    """Algorithm 2 hyper-parameters.

    Attributes:
        inner_lr: Inner-loop step size α.
        lambda_penalty: Weight λ of the σ auxiliary loss.
        queue_length: MRQ length L (paper default 5; Fig 9 sweeps 1..9).
        gamma: MRQ decay coefficient γ (paper default 0.9; Table IV sweeps).
        first_order: Drop the Hessian term (ablation).
    """

    n_epochs: int = 150
    learning_rate: float = 0.2
    inner_lr: float = 0.1
    lambda_penalty: float = 3.0
    queue_length: int = 5
    gamma: float = 0.9
    first_order: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inner_lr <= 0:
            raise ValueError("inner_lr must be positive")
        if self.lambda_penalty < 0:
            raise ValueError("lambda_penalty must be non-negative")
        if self.queue_length < 1:
            raise ValueError("queue_length must be >= 1")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
