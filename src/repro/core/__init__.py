"""The paper's contribution: meta-IRM and LightMIRM trainers."""

from repro.core.config import LightMIRMConfig, MetaIRMConfig
from repro.core.lightmirm import LightMIRMTrainer
from repro.core.meta_grad import (
    backprop_through_inner_step,
    sigma_and_weights,
    sigma_of,
)
from repro.core.meta_irm import MetaIRMTrainer
from repro.core.mrq import MetaLossReplayQueue

__all__ = [
    "LightMIRMConfig",
    "MetaIRMConfig",
    "LightMIRMTrainer",
    "MetaIRMTrainer",
    "MetaLossReplayQueue",
    "backprop_through_inner_step",
    "sigma_and_weights",
    "sigma_of",
]
