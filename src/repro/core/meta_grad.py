"""The MAML chain rule and σ-penalty gradient shared by Algorithms 1 and 2.

Both meta-IRM and LightMIRM perform the outer update

    θ ← θ − β ∇_θ ( Σ_m R_meta(θ̄_m) + λ σ )           (Eq. 6)

where ``θ̄_m = θ − α ∇R^m(θ)``.  Differentiating a function ``L(θ̄_m)`` of
the adapted parameters back to ``θ`` gives the MAML chain rule

    dL/dθ = (I − α H_m(θ)) · ∇_{θ̄} L(θ̄_m)
          = ∇_{θ̄} L(θ̄_m) − α · H_m(θ) · ∇_{θ̄} L(θ̄_m)

which we evaluate with one Hessian-vector product on the inner environment
(no Hessian is materialised).  The σ penalty contributes through

    ∂σ/∂R_meta(θ̄_m) = (R_meta(θ̄_m) − mean) / (M σ)

so the total outer gradient is a weighted sum of per-environment chain-rule
gradients with weights ``1 + λ · ∂σ/∂R_m``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel

__all__ = [
    "backprop_through_inner_step",
    "sigma_and_weights",
    "sigma_of",
]


def backprop_through_inner_step(
    model: LogisticModel,
    theta: np.ndarray,
    inner_env: EnvironmentData,
    outer_gradient_at_adapted: np.ndarray,
    inner_lr: float,
    first_order: bool = False,
) -> np.ndarray:
    """Apply ``(I − α H_m(θ))`` to an outer-loss gradient.

    Args:
        model: The LR model providing the HVP.
        theta: Parameters *before* the inner step (where the Hessian of the
            inner environment is evaluated).
        inner_env: Environment ``m`` whose loss defined the inner step.
        outer_gradient_at_adapted: ``∇_{θ̄} L(θ̄_m)`` — gradient of whatever
            outer loss, evaluated at the adapted parameters.
        inner_lr: Inner step size α.
        first_order: If True, skip the curvature term (FOMAML ablation),
            returning the outer gradient unchanged.

    Returns:
        ``dL/dθ`` as a new array.
    """
    if first_order:
        return outer_gradient_at_adapted.copy()
    hvp = model.hessian_vector_product(
        theta, inner_env.features, inner_env.labels, outer_gradient_at_adapted
    )
    return outer_gradient_at_adapted - inner_lr * hvp


def sigma_of(meta_losses: np.ndarray) -> float:
    """Population standard deviation of the meta-losses (Eq. 7)."""
    meta_losses = np.asarray(meta_losses, dtype=np.float64)
    if meta_losses.size == 0:
        raise ValueError("need at least one meta-loss")
    return float(np.std(meta_losses))


def sigma_and_weights(
    meta_losses: np.ndarray, lambda_penalty: float
) -> tuple[float, np.ndarray]:
    """σ and the per-environment outer-gradient weights ``1 + λ ∂σ/∂R_m``.

    When σ is (numerically) zero the penalty's subgradient is taken as zero,
    so the weights collapse to all-ones.

    Args:
        meta_losses: Array of ``R_meta(θ̄_m)`` values, one per environment.
        lambda_penalty: Penalty strength λ.

    Returns:
        Tuple ``(sigma, weights)`` with ``weights.shape == meta_losses.shape``.
    """
    meta_losses = np.asarray(meta_losses, dtype=np.float64)
    sigma = sigma_of(meta_losses)
    n = meta_losses.size
    if sigma < 1e-12 or lambda_penalty == 0.0:
        return sigma, np.ones(n)
    dsigma = (meta_losses - meta_losses.mean()) / (n * sigma)
    return sigma, 1.0 + lambda_penalty * dsigma
