"""Meta-loss Replaying Queue (MRQ) — Eq. 8 and 9 of the paper.

LightMIRM keeps one fixed-length queue ``H_m`` per environment.  Each outer
iteration pushes the freshly computed loss of the sampled environment
``R^{s_m}(D_{s_m}; θ̄_m)`` into the back of the queue (older entries shift
forward and the oldest falls off), and the approximate meta-loss is the
decay-weighted sum

    R_meta(θ̄_m) = Σ_{i=1..L} γ^{L-i} · H_m[i]            (Eq. 9)

with the most recent entry weighted ``γ⁰ = 1``.  Only that newest entry is a
function of the current parameters; the replayed history is treated as
constant — which is exactly why LightMIRM's backward pass is O(1) per
environment ("only the last element in the queue has gradients").
"""

from __future__ import annotations

import numpy as np

__all__ = ["MetaLossReplayQueue"]


class MetaLossReplayQueue:
    """Fixed-length FIFO of recent meta-losses with decayed aggregation.

    Elements are initialised to zero (Algorithm 2, line 1), so during the
    first ``L - 1`` iterations the replayed portion under-counts — the same
    warm-up the paper's algorithm has.

    Attributes:
        length: Queue capacity ``L``.
        gamma: Decay coefficient ``γ`` in (0, 1]; ``γ = 1`` weights all
            entries equally (the worst row of Table IV).
    """

    def __init__(self, length: int, gamma: float):
        if length < 1:
            raise ValueError("queue length must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.length = length
        self.gamma = gamma
        self._values = np.zeros(length)
        self._n_pushed = 0

    @property
    def values(self) -> np.ndarray:
        """Current queue contents, oldest first (read-only copy)."""
        return self._values.copy()

    @property
    def n_pushed(self) -> int:
        """Total number of pushes so far (for warm-up diagnostics)."""
        return self._n_pushed

    @property
    def is_warm(self) -> bool:
        """True once every slot holds a real (pushed) loss."""
        return self._n_pushed >= self.length

    @property
    def occupancy(self) -> float:
        """Fraction of slots holding real (pushed) losses, in [0, 1].

        Below 1.0 the queue is still warming up and the decayed sum
        under-counts the meta-loss — the observability layer charts this
        per epoch so warm-up effects are visible in run logs.
        """
        return min(self._n_pushed, self.length) / self.length

    def decay_mass(self) -> float:
        """Total Eq. 9 weight carried by the occupied (pushed) slots.

        The newest entry weighs ``γ⁰ = 1`` and each older real entry one
        power of ``γ`` more, so a warm queue reports the full geometric
        mass ``Σ_{i=0}^{L-1} γ^i`` and an empty one reports 0.
        """
        occupied = min(self._n_pushed, self.length)
        if occupied == 0:
            return 0.0
        return float(
            np.sum(self.gamma ** np.arange(occupied, dtype=np.float64))
        )

    def push(self, loss: float) -> None:
        """Shift the queue forward and place ``loss`` at the back (Eq. 8)."""
        if not np.isfinite(loss):
            raise ValueError(f"refusing to store non-finite loss {loss}")
        self._values[:-1] = self._values[1:]
        self._values[-1] = loss
        self._n_pushed += 1

    def decayed_sum(self) -> float:
        """Approximate meta-loss ``Σ γ^{L-i} H_m[i]`` (Eq. 9)."""
        weights = self.gamma ** np.arange(self.length - 1, -1, -1, dtype=np.float64)
        return float(weights @ self._values)

    def replay_component(self) -> float:
        """Decayed sum of the *historical* entries only (no newest entry).

        Splitting Eq. 9 as ``replay + newest`` mirrors the gradient
        structure: this part is constant w.r.t. the current parameters.
        """
        if self.length == 1:
            return 0.0
        weights = self.gamma ** np.arange(self.length - 1, 0, -1, dtype=np.float64)
        return float(weights @ self._values[:-1])

    def newest(self) -> float:
        """The newest (gradient-carrying) entry."""
        return float(self._values[-1])

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"MetaLossReplayQueue(L={self.length}, gamma={self.gamma}, "
            f"values={np.array2string(self._values, precision=4)})"
        )
