"""LightMIRM (Algorithm 2): linear-time meta-IRM.

The paper's contribution.  Per outer iteration and per environment m:

1. Inner step as in meta-IRM: ``θ̄_m = θ − α ∇R^m(θ)``.
2. **Environment sampling** — draw ONE other environment ``s_m ≠ m`` and
   compute only ``R^{s_m}(D_{s_m}; θ̄_m)`` (line 8-9 of Algorithm 2).
3. **Meta-loss replaying** — push that loss into the environment's MRQ and
   read the approximate meta-loss as the decayed queue sum (Eq. 9):
   ``R_meta(θ̄_m) = Σ_i γ^{L-i} H_m[i]``.
4. Outer update identical in form to meta-IRM, but since only the newest
   queue entry depends on the current parameters, the backward pass costs a
   single gradient + HVP per environment ("only the last element in the
   queue has gradients") — O(4M) total vs meta-IRM's O(2M²).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LightMIRMConfig
from repro.core.meta_grad import backprop_through_inner_step, sigma_and_weights
from repro.core.mrq import MetaLossReplayQueue
from repro.data.dataset import EnvironmentData
from repro.models.logistic import LogisticModel
from repro.timing import StepTimer
from repro.train.base import EpochCallback, Trainer, TrainingHistory

__all__ = ["LightMIRMTrainer"]


class LightMIRMTrainer(Trainer):
    """Trainer implementing Algorithm 2."""

    name = "LightMIRM"

    def __init__(self, config: LightMIRMConfig | None = None):
        config = config or LightMIRMConfig()
        super().__init__(config)
        self.config: LightMIRMConfig = config
        #: Exposed after fit() for inspection/tests: one queue per env.
        self.queues_: list[MetaLossReplayQueue] | None = None

    def _run(
        self,
        environments: list[EnvironmentData],
        model: LogisticModel,
        theta: np.ndarray,
        history: TrainingHistory,
        callback: EpochCallback | None,
        timer: StepTimer,
    ) -> np.ndarray:
        cfg = self.config
        n_envs = len(environments)
        rng = np.random.default_rng(cfg.seed)
        # Algorithm 2 line 1: initialise every H_m with zeros.
        queues = [
            MetaLossReplayQueue(cfg.queue_length, cfg.gamma)
            for _ in range(n_envs)
        ]
        self.queues_ = queues

        trace = self._tracer.enabled
        for epoch in range(cfg.n_epochs):
            timer.begin_epoch()
            with timer.step("loading_data"):
                env_order = list(range(n_envs))
                epoch_envs = self._epoch_environments(environments)
            with timer.step("transforming_format"):
                pass  # format transform happens once in the pipeline

            env_losses: dict[str, float] = {}
            meta_losses = np.zeros(n_envs)
            sampled_grads_at_adapted: list[np.ndarray] = []
            adapted_unused: list[np.ndarray] = []
            sampled_names: list[str] = []

            for m in env_order:
                env = epoch_envs[m]
                with timer.step("inner_optimization"):
                    loss_m, grad_m = model.loss_and_gradient(
                        theta, env.features, env.labels
                    )
                    theta_bar = theta - cfg.inner_lr * grad_m
                env_losses[env.name] = loss_m
                adapted_unused.append(theta_bar)

                with timer.step("calculating_meta_losses"):
                    s_m = self._sample_other(m, n_envs, rng)
                    sampled = epoch_envs[s_m]
                    loss_s, grad_s = model.loss_and_gradient(
                        theta_bar, sampled.features, sampled.labels
                    )
                    queues[m].push(loss_s)
                    meta_losses[m] = queues[m].decayed_sum()
                    sampled_grads_at_adapted.append(grad_s)
                if trace:
                    sampled_names.append(environments[s_m].name)

            with timer.step("backward_propagation"):
                sigma, weights = sigma_and_weights(
                    meta_losses, cfg.lambda_penalty
                )
                outer_grad = np.zeros_like(theta)
                for m in env_order:
                    # d R_meta / dθ: the newest queue entry has decay weight
                    # γ^{L-L} = 1; the replayed history is constant.
                    chained = backprop_through_inner_step(
                        model,
                        theta,
                        epoch_envs[m],
                        sampled_grads_at_adapted[m],
                        cfg.inner_lr,
                        first_order=cfg.first_order,
                    )
                    outer_grad += weights[m] * chained
                theta = self._optimizer.step(theta, outer_grad)
            timer.end_epoch()

            objective = float(meta_losses.sum() + cfg.lambda_penalty * sigma)
            extra = {}
            if trace:
                extra = {
                    "penalty": float(cfg.lambda_penalty * sigma),
                    "meta_loss_total": float(meta_losses.sum()),
                    "meta_losses": {
                        environments[m].name: float(meta_losses[m])
                        for m in env_order
                    },
                    "sampled_envs": sampled_names,
                    "mrq_occupancy": float(
                        sum(q.occupancy for q in queues) / n_envs
                    ),
                    "mrq_decay_mass": float(
                        sum(q.decay_mass() for q in queues) / n_envs
                    ),
                    "grad_norm": float(np.linalg.norm(outer_grad)),
                }
            self._record(history, objective, env_losses, epoch, theta,
                         callback, **extra)
        return theta

    @staticmethod
    def _sample_other(m: int, n_envs: int, rng: np.random.Generator) -> int:
        """Uniformly sample an environment index different from ``m``."""
        if n_envs < 2:
            raise ValueError("LightMIRM needs at least two environments")
        s = int(rng.integers(0, n_envs - 1))
        return s if s < m else s + 1
