"""Unified observability layer: tracing, metrics, kernel profiling.

Four pieces, all zero-dependency (stdlib + numpy) and disabled-by-default:

* :mod:`repro.obs.tracer` — :class:`Tracer` producing hierarchical spans
  and point events; the disabled tracer is a null object threaded through
  every training loop at near-zero cost.
* :mod:`repro.obs.runlog` — the documented JSONL schema, writer/reader
  and run manifest (config, seed, git describe, dataset fingerprint).
* :mod:`repro.obs.metrics` — counters/gauges/histograms shared with the
  serving telemetry.
* :mod:`repro.obs.profile` — aggregate profiling hooks inside the GBDT
  hot paths (histogram build, leaf encode, boosting rounds), with opt-in
  tracemalloc allocation tracking.
* :mod:`repro.obs.live` — the live telemetry plane for the serving
  stack: shared-memory metrics slabs, cross-process aggregation, online
  quality monitors, health alerts and Prometheus/JSON exposition.

``repro obs report|summary|diff`` renders a run log offline — per-step
Table III timings and convergence curves without re-running training —
and ``repro obs top`` renders the live plane while serving.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import KernelProfiler, profiled
from repro.obs.report import (
    format_diff,
    format_report,
    format_summary,
    health_lines,
    load_run,
    timing_tables,
)
from repro.obs.runlog import (
    ALERT_EVENT,
    HEALTH_TRANSITION_EVENT,
    LIFECYCLE_SPAN,
    LIFECYCLE_STAGE_EVENT,
    SCHEMA_VERSION,
    RunLog,
    RunLogReader,
    RunLogWriter,
    SchemaError,
    dataset_fingerprint,
    run_manifest_fields,
    validate_record,
)
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KernelProfiler",
    "profiled",
    "format_diff",
    "format_report",
    "format_summary",
    "health_lines",
    "load_run",
    "timing_tables",
    "ALERT_EVENT",
    "HEALTH_TRANSITION_EVENT",
    "LIFECYCLE_SPAN",
    "LIFECYCLE_STAGE_EVENT",
    "SCHEMA_VERSION",
    "RunLog",
    "RunLogReader",
    "RunLogWriter",
    "SchemaError",
    "dataset_fingerprint",
    "run_manifest_fields",
    "validate_record",
    "NULL_TRACER",
    "Tracer",
]
