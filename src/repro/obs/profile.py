"""Lightweight profiling hooks for the GBDT hot paths.

The GBDT kernels (histogram builds, leaf encoding, boosting rounds) run
thousands of times per fit; a tracer span per call would dominate the log.
Instead the hot paths check a module-level *active profiler* — ``None`` by
default, so the disabled cost is one attribute load and an ``is None``
test — and, when one is active, accumulate per-section aggregates:
call count, wall seconds, rows processed and histogram cells touched.

Memory tracking is opt-in: ``profiled(trace_malloc=True)`` brackets the
region with :mod:`tracemalloc` and reports the allocation high-water mark
(tracemalloc slows allocation-heavy code noticeably, hence the gate).

Usage::

    with profiled() as prof:
        model.fit(features, labels)
    print(prof.snapshot())
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["SectionStats", "KernelProfiler", "active", "profiled"]


@dataclass
class SectionStats:
    """Aggregated cost of one profiled kernel section."""

    calls: int = 0
    seconds: float = 0.0
    rows: int = 0
    cells: int = 0

    @property
    def rows_per_second(self) -> float:
        return self.rows / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "rows": self.rows,
            "cells": self.cells,
            "rows_per_s": self.rows_per_second,
        }


class KernelProfiler:
    """Accumulates per-section kernel statistics while active."""

    def __init__(self) -> None:
        self.sections: dict[str, SectionStats] = {}
        self.alloc_peak_bytes: int | None = None

    @contextmanager
    def section(self, name: str, rows: int = 0, cells: int = 0):
        """Time one kernel invocation and account its volume."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stats = self.sections.get(name)
            if stats is None:
                stats = self.sections[name] = SectionStats()
            stats.calls += 1
            stats.seconds += elapsed
            stats.rows += rows
            stats.cells += cells

    def snapshot(self) -> dict:
        """JSON-compatible profile state."""
        payload: dict = {
            "sections": {
                name: stats.as_dict()
                for name, stats in sorted(self.sections.items())
            },
        }
        if self.alloc_peak_bytes is not None:
            payload["alloc_peak_bytes"] = self.alloc_peak_bytes
        return payload


#: The currently active profiler (module-level so hot paths avoid any
#: object plumbing); ``None`` means profiling is off.
_ACTIVE: KernelProfiler | None = None


def active() -> KernelProfiler | None:
    """The active profiler, or None — the hot-path gate."""
    return _ACTIVE


@contextmanager
def profiled(profiler: KernelProfiler | None = None,
             trace_malloc: bool = False):
    """Activate a profiler for the enclosed region.

    Args:
        profiler: Reuse an existing profiler (accumulating across
            regions); a fresh one is created when omitted.
        trace_malloc: Also record the allocation high-water mark via
            :mod:`tracemalloc` (measurable slowdown; off by default).
            When tracemalloc was already tracing, the peak is *not*
            reset or stopped — the pre-existing session wins.

    Yields:
        The active :class:`KernelProfiler`.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a kernel profiler is already active")
    profiler = profiler or KernelProfiler()
    started_tracing = False
    if trace_malloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = None
        if started_tracing:
            _, peak = tracemalloc.get_traced_memory()
            profiler.alloc_peak_bytes = int(peak)
            tracemalloc.stop()
