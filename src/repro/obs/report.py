"""Rendering run logs: step-timing tables, convergence curves, run diffs.

The read side of the observability layer.  Everything here works from a
validated :class:`~repro.obs.runlog.RunLog` alone — no re-training, no
live objects — which is the point: a traced ``repro train`` leaves behind
enough to reconstruct the paper's Table III per-step timings and the
Fig 8-style convergence curves offline (``repro obs report run.jsonl``).

When one log contains several fits (``repro verify --trace``, experiment
sweeps), step spans are attributed to their owning trainer by walking the
span parent chain to the enclosing ``fit`` span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reports import format_table
from repro.obs.runlog import (
    ALERT_EVENT,
    HEALTH_TRANSITION_EVENT,
    TUNE_CACHE_EVENT,
    TUNE_ENCODE_SPAN,
    RunLog,
    RunLogReader,
)
from repro.timing import STEP_NAMES

__all__ = [
    "TimingTable",
    "load_run",
    "timing_tables",
    "health_lines",
    "tune_cache_lines",
    "format_report",
    "format_summary",
    "format_diff",
]

#: Label used when a record cannot be attributed to a specific fit.
_UNATTRIBUTED = "(run)"


def load_run(path) -> RunLog:
    """Read + validate a run log (thin alias of :meth:`RunLogReader.read`)."""
    return RunLogReader.read(path)


@dataclass(frozen=True)
class TimingTable:
    """Per-step timing of one trainer's fit — one Table III column.

    Attributes:
        label: Trainer name (or :data:`_UNATTRIBUTED`).
        n_epochs: Epoch events attributed to the fit.
        mean_step_seconds: Mean per-epoch seconds per canonical step.
        mean_epoch_seconds: Mean whole-epoch wall time.
    """

    label: str
    n_epochs: int
    mean_step_seconds: dict[str, float]
    mean_epoch_seconds: float


def _span_index(run: RunLog) -> dict[int, dict]:
    return {record["id"]: record for record in run.spans()}


def _owning_fit_label(span_id, index: dict[int, dict]) -> str:
    """Trainer of the nearest enclosing ``fit`` span, else unattributed."""
    seen = set()
    while span_id is not None and span_id not in seen:
        seen.add(span_id)
        record = index.get(span_id)
        if record is None:
            break
        if record["name"] == "fit":
            return str(record["fields"].get("trainer", _UNATTRIBUTED))
        span_id = record["parent"]
    return _UNATTRIBUTED


def timing_tables(run: RunLog) -> list[TimingTable]:
    """Reconstruct per-trainer Table III step timings from the log.

    Per-step means divide the accumulated ``step:<name>`` span durations
    by the number of ``epoch`` events of the same fit; whole-epoch times
    average the ``epoch_time`` events.  Fits appear in first-seen order.
    """
    index = _span_index(run)

    step_totals: dict[str, dict[str, float]] = {}
    order: list[str] = []

    def bucket(label: str) -> dict[str, float]:
        if label not in step_totals:
            step_totals[label] = {}
            order.append(label)
        return step_totals[label]

    for span in run.spans():
        if not span["name"].startswith("step:"):
            continue
        label = _owning_fit_label(span["parent"], index)
        totals = bucket(label)
        step = span["name"][len("step:"):]
        totals[step] = totals.get(step, 0.0) + span["dur_s"]

    epochs: dict[str, int] = {}
    for event in run.events("epoch"):
        label = str(event["fields"].get("trainer", _UNATTRIBUTED))
        bucket(label)
        epochs[label] = epochs.get(label, 0) + 1

    epoch_times: dict[str, list[float]] = {}
    for event in run.events("epoch_time"):
        label = _owning_fit_label(event["span"], index)
        epoch_times.setdefault(label, []).append(
            float(event["fields"]["seconds"])
        )

    tables = []
    for label in order:
        n_epochs = epochs.get(label, 0)
        totals = step_totals[label]
        mean_steps = {
            step: totals.get(step, 0.0) / (n_epochs or 1)
            for step in STEP_NAMES
        }
        times = epoch_times.get(label, [])
        tables.append(
            TimingTable(
                label=label,
                n_epochs=n_epochs,
                mean_step_seconds=mean_steps,
                mean_epoch_seconds=(sum(times) / len(times)) if times else 0.0,
            )
        )
    return tables


def _format_timing(tables: list[TimingTable]) -> str:
    rows = []
    for step in STEP_NAMES:
        row: dict[str, object] = {"step": step}
        for table in tables:
            row[table.label] = table.mean_step_seconds.get(step, 0.0)
        rows.append(row)
    epoch_row: dict[str, object] = {"step": "the whole epoch"}
    for table in tables:
        epoch_row[table.label] = table.mean_epoch_seconds
    rows.append(epoch_row)
    return format_table(
        rows,
        columns=("step",) + tuple(t.label for t in tables),
        title="Per-epoch time cost of operation steps (seconds, Table III "
              "format)",
        float_format="{:.4f}",
    )


def _downsample(points: list[tuple[int, float]],
                max_rows: int) -> list[tuple[int, float]]:
    """Evenly thin a curve to at most ``max_rows`` points (endpoints kept)."""
    if max_rows <= 0 or len(points) <= max_rows:
        return points
    stride = (len(points) - 1) / (max_rows - 1)
    picked = {round(i * stride) for i in range(max_rows)}
    return [p for i, p in enumerate(points) if i in picked]


#: Epoch-event fields rendered as convergence curves, in column order.
_CURVE_FIELDS = ("objective", "penalty", "meta_loss_total", "grad_norm",
                 "tracked")


def _trainer_curves(run: RunLog, trainer: str) -> dict[str, dict[int, float]]:
    curves: dict[str, dict[int, float]] = {}
    for event in run.events("epoch"):
        fields = event["fields"]
        if str(fields.get("trainer", _UNATTRIBUTED)) != trainer:
            continue
        if "epoch" not in fields:
            continue
        epoch = int(fields["epoch"])
        for name in _CURVE_FIELDS:
            if name in fields and isinstance(fields[name], (int, float)):
                curves.setdefault(name, {})[epoch] = float(fields[name])
    return curves


def _format_curves(run: RunLog, trainer: str, max_rows: int) -> str | None:
    curves = _trainer_curves(run, trainer)
    if not curves:
        return None
    columns = [name for name in _CURVE_FIELDS if name in curves]
    epochs = sorted({e for curve in curves.values() for e in curve})
    points = _downsample([(e, 0.0) for e in epochs], max_rows)
    rows = []
    for epoch, _ in points:
        row: dict[str, object] = {"epoch": epoch}
        for name in columns:
            value = curves[name].get(epoch)
            row[name] = value if value is not None else float("nan")
        rows.append(row)
    return format_table(
        rows,
        columns=("epoch",) + tuple(columns),
        title=f"Convergence of {trainer} "
              f"({len(epochs)} epochs, {len(rows)} shown)",
        float_format="{:.6f}",
    )


def _manifest_lines(run: RunLog) -> list[str]:
    manifest = run.manifest
    if manifest is None:
        return ["(no manifest record)"]
    lines = [f"run {manifest['run_id']} (schema v{manifest['schema']})"]
    fields = manifest["fields"]
    for key in ("command", "method", "seed", "git", "data"):
        if key in fields and fields[key] is not None:
            lines.append(f"  {key:8s} {fields[key]}")
    dataset = fields.get("dataset")
    if isinstance(dataset, dict):
        lines.append(
            f"  dataset  {dataset.get('n_samples')} rows x "
            f"{dataset.get('n_features')} features "
            f"(sha256 {dataset.get('sha256')})"
        )
    return lines


def _format_unix(unix: float) -> str:
    import datetime

    return datetime.datetime.fromtimestamp(
        unix, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%SZ")


def health_lines(run: RunLog) -> list[str]:
    """Summarize ``alert``/``health_transition`` events from a serving run.

    Empty when the log holds neither (training logs stay unchanged);
    otherwise counts per monitor/severity, the first/last alert
    timestamps, a per-province breakdown where alerts carried one, and
    the health-state transition path.
    """
    alerts = run.events(ALERT_EVENT)
    transitions = run.events(HEALTH_TRANSITION_EVENT)
    if not alerts and not transitions:
        return []
    lines = [f"health: {len(alerts)} alerts, "
             f"{len(transitions)} state transitions"]
    if alerts:
        stamps = [float(e["fields"]["unix"]) for e in alerts]
        lines.append(f"  first alert  {_format_unix(min(stamps))}   "
                     f"last {_format_unix(max(stamps))}")
        by_monitor: dict[tuple[str, str], int] = {}
        by_province: dict[str, int] = {}
        for event in alerts:
            fields = event["fields"]
            key = (str(fields["monitor"]), str(fields["severity"]))
            by_monitor[key] = by_monitor.get(key, 0) + 1
            if fields.get("province") is not None:
                province = str(fields["province"])
                by_province[province] = by_province.get(province, 0) + 1
        for (monitor, severity), count in sorted(by_monitor.items()):
            worst = max(
                float(e["fields"]["value"]) for e in alerts
                if e["fields"]["monitor"] == monitor
                and e["fields"]["severity"] == severity
            )
            lines.append(f"  {monitor:14s} {severity:8s} x{count}  "
                         f"worst value {worst:.4f}")
        if by_province:
            rendered = "  ".join(
                f"{name}={count}"
                for name, count in sorted(by_province.items(),
                                          key=lambda kv: -kv[1])
            )
            lines.append(f"  provinces: {rendered}")
    if transitions:
        path = [str(transitions[0]["fields"]["from_state"])]
        path += [str(e["fields"]["to_state"]) for e in transitions]
        lines.append(f"  states: {' -> '.join(path)}")
    return lines


def tune_cache_lines(run: RunLog) -> list[str]:
    """Summarize a joint search's extractor-encoding cache from its log.

    Empty when the log holds no ``tune_cache`` events (head-only and
    non-tuning logs stay unchanged); otherwise hit/miss/eviction counts,
    resident-pack bytes published, and the encode seconds spent vs saved
    — reconstructed purely from the event stream, mirroring how the
    cache itself accounts (each hit saves one encode of its
    fingerprint's measured cost).
    """
    events = run.events(TUNE_CACHE_EVENT)
    if not events:
        return []
    counts: dict[str, int] = {}
    encode_cost: dict[str, float] = {}
    published_bytes = 0
    for event in events:
        fields = event["fields"]
        action = str(fields["action"])
        counts[action] = counts.get(action, 0) + 1
        if action == "publish":
            published_bytes += int(fields.get("nbytes", 0))
            encode_cost[str(fields["fingerprint"])] = float(
                fields.get("encode_seconds", 0.0)
            )
    hits = counts.get("hit", 0)
    misses = counts.get("miss", 0)
    lookups = hits + misses
    saved = sum(
        encode_cost.get(str(e["fields"]["fingerprint"]), 0.0)
        for e in events
        if e["fields"]["action"] == "hit"
    )
    spent = sum(encode_cost.values())
    lines = [
        f"tune cache: {hits} hits, {misses} misses"
        + (f" (hit rate {hits / lookups:.0%})" if lookups else "")
    ]
    lines.append(
        f"  encodings published {counts.get('publish', 0)} "
        f"({published_bytes / 1e6:.1f} MB), evicted {counts.get('evict', 0)}"
    )
    lines.append(
        f"  encode seconds spent {spent:.2f}, saved by reuse {saved:.2f}"
    )
    encode_spans = run.spans(TUNE_ENCODE_SPAN)
    if encode_spans:
        wall = sum(float(s["dur_s"]) for s in encode_spans)
        lines.append(
            f"  encode batches {len(encode_spans)} "
            f"({wall:.2f}s wall over the engine)"
        )
    return lines


def format_report(run: RunLog, max_curve_rows: int = 20) -> str:
    """Full rendering: manifest, Table III timings, convergence curves."""
    sections = ["\n".join(_manifest_lines(run))]
    tables = timing_tables(run)
    if tables:
        sections.append(_format_timing(tables))
        for table in tables:
            curves = _format_curves(run, table.label, max_curve_rows)
            if curves is not None:
                sections.append(curves)
    else:
        sections.append("(no training events in this log)")
    profiles = run.events("gbdt_profile")
    if profiles:
        lines = ["GBDT kernel profile:"]
        for section, stats in sorted(
            profiles[-1]["fields"].get("sections", {}).items()
        ):
            lines.append(
                f"  {section:18s} calls={stats['calls']:<7d} "
                f"{stats['seconds']:.4f}s  "
                f"{stats['rows_per_s']:,.0f} rows/s"
            )
        peak = profiles[-1]["fields"].get("alloc_peak_bytes")
        if peak is not None:
            lines.append(f"  alloc high-water  {peak / 1e6:.1f} MB")
        sections.append("\n".join(lines))
    snapshots = run.metrics_snapshots()
    if snapshots:
        counters = snapshots[-1]["fields"].get("counters", {})
        if counters:
            rendered = "  ".join(f"{k}={v}" for k, v in counters.items())
            sections.append(f"counters: {rendered}")
    cache = tune_cache_lines(run)
    if cache:
        sections.append("\n".join(cache))
    health = health_lines(run)
    if health:
        sections.append("\n".join(health))
    return "\n\n".join(sections)


def format_summary(run: RunLog) -> str:
    """Headline numbers of one run, a few lines per fit."""
    lines = _manifest_lines(run)
    lines.append(f"records  {len(run)} "
                 f"({len(run.spans())} spans, {len(run.events())} events)")
    for table in timing_tables(run):
        dominant = max(
            table.mean_step_seconds,
            key=lambda s: table.mean_step_seconds[s],
            default=None,
        )
        objective = [
            float(e["fields"]["objective"])
            for e in run.events("epoch")
            if str(e["fields"].get("trainer")) == table.label
            and "objective" in e["fields"]
        ]
        parts = [f"{table.label}: {table.n_epochs} epochs"]
        if table.mean_epoch_seconds:
            parts.append(f"{table.mean_epoch_seconds * 1e3:.2f} ms/epoch")
        if dominant and table.mean_step_seconds[dominant] > 0:
            parts.append(f"dominant step {dominant}")
        if objective:
            parts.append(
                f"objective {objective[0]:.4f} -> {objective[-1]:.4f}"
            )
        lines.append("  ".join(parts))
    lines.extend(tune_cache_lines(run))
    lines.extend(health_lines(run))
    return "\n".join(lines)


def format_diff(run_a: RunLog, run_b: RunLog,
                label_a: str = "A", label_b: str = "B") -> str:
    """Compare two runs: per-step timing ratios and final objectives.

    Fits are matched by trainer label; steps present in only one run show
    the other side as zero.
    """
    tables_a = {t.label: t for t in timing_tables(run_a)}
    tables_b = {t.label: t for t in timing_tables(run_b)}
    shared = [label for label in tables_a if label in tables_b]
    only_a = [label for label in tables_a if label not in tables_b]
    only_b = [label for label in tables_b if label not in tables_a]

    sections = []
    for label in shared:
        a, b = tables_a[label], tables_b[label]
        rows = []
        for step in STEP_NAMES + ("the whole epoch",):
            if step == "the whole epoch":
                va, vb = a.mean_epoch_seconds, b.mean_epoch_seconds
            else:
                va = a.mean_step_seconds.get(step, 0.0)
                vb = b.mean_step_seconds.get(step, 0.0)
            rows.append({
                "step": step,
                label_a: va,
                label_b: vb,
                "B/A": vb / va if va else float("inf") if vb else 1.0,
            })
        sections.append(format_table(
            rows,
            columns=("step", label_a, label_b, "B/A"),
            title=f"{label}: per-epoch step seconds ({label_a} vs {label_b})",
            float_format="{:.4f}",
        ))

        final = []
        for side, run in ((label_a, run_a), (label_b, run_b)):
            objective = [
                float(e["fields"]["objective"])
                for e in run.events("epoch")
                if str(e["fields"].get("trainer")) == label
                and "objective" in e["fields"]
            ]
            if objective:
                final.append(f"{side} final objective {objective[-1]:.6f}")
        if final:
            sections.append("  ".join(final))

    if only_a:
        sections.append(f"only in {label_a}: {', '.join(only_a)}")
    if only_b:
        sections.append(f"only in {label_b}: {', '.join(only_b)}")
    if not sections:
        sections.append("(no fits found in either run)")
    return "\n\n".join(sections)
