"""Shared metric primitives: counters, gauges and bucket histograms.

One implementation serves every instrumentation surface in the repo:
:class:`~repro.serve.telemetry.LatencyHistogram` is a thin subclass of
:class:`Histogram` (latency buckets + the ``docs/serving.md`` snapshot
naming), and :class:`MetricsRegistry` is the named-metric container the
tracer dumps into a run log.  Everything here is plain Python + numpy,
cheap enough to update on hot paths, and renders to JSON-compatible
``snapshot()`` dicts.
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += n


class Gauge:
    """Last-written value of some instantaneous quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact count/sum and bucketed percentiles.

    The value distribution is summarised by per-bucket counts: observation
    ``v`` lands in the first bucket whose upper bound is ``>= v`` (bounds
    are inclusive), values above the last bound land in a +Inf overflow
    bucket, and values below the first bound land in bucket 0.  Count and
    sum are exact; percentiles are conservative upper bounds (the true
    value is at most the returned bucket bound).

    Args:
        buckets: Increasing upper bounds of the finite buckets.
    """

    def __init__(self, buckets: tuple[float, ...]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and increasing")
        self.bounds = bounds
        self.counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.total = 0.0

    @property
    def count(self) -> int:
        """Total number of observations."""
        return int(self.counts.sum())

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not np.isfinite(value):
            raise ValueError(f"refusing to record non-finite value {value}")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Exact mean of the observations (0 when empty)."""
        n = self.count
        return self.total / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket bound covering the q-th percentile (0 < q <= 100).

        Bucketed percentiles are conservative: the true value is at most
        the returned bound (+Inf overflow reports the last finite bound).
        """
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        n = self.count
        if n == 0:
            return 0.0
        rank = int(np.ceil(q / 100.0 * n))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self.bounds[min(bucket, len(self.bounds) - 1)]

    def bucket_counts(self) -> dict[str, int]:
        """JSON-compatible per-bucket counts keyed ``le_<bound>``."""
        return {
            f"le_{bound:g}": int(c)
            for bound, c in zip(self.bounds, self.counts)
        } | {"overflow": int(self.counts[-1])}

    def snapshot(self) -> dict:
        """JSON-compatible histogram state."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": self.bucket_counts(),
        }


#: Default buckets for unit-scale quantities (losses, norms, fractions).
DEFAULT_VALUE_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
    100.0,
)


class MetricsRegistry:
    """Named counters/gauges/histograms with one JSON snapshot.

    Metrics are created on first access (``registry.counter("x").inc()``)
    so instrumentation sites never need set-up code.  A metric name maps
    to exactly one kind; re-requesting it as a different kind raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, own: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already exists as a {kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, self._counters)
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, self._gauges)
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_VALUE_BUCKETS
    ) -> Histogram:
        """Get or create the named histogram (buckets fixed on creation)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, self._histograms)
            metric = self._histograms[name] = Histogram(buckets)
        return metric

    def snapshot(self) -> dict:
        """JSON-compatible state of every registered metric."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }
