"""Live telemetry plane: slabs, aggregation, monitors, health, exposition.

``repro.obs`` (PR 4) is post-hoc — logs read after the run.  This
subpackage is the *live* half for the multi-worker serving stack:
per-worker shared-memory metrics slabs with seqlock torn-free parent
reads (:mod:`~repro.obs.live.slab`), online quality monitors
(:mod:`~repro.obs.live.monitors`), a declarative health state machine
emitting schema-v2 alerts (:mod:`~repro.obs.live.health`), and
stdlib-only Prometheus/JSON exposition plus the ``repro obs top``
terminal view (:mod:`~repro.obs.live.export`,
:mod:`~repro.obs.live.top`).

Deliberately serve-agnostic: nothing here imports ``repro.serve``;
:class:`~repro.serve.frontend.ScoringFrontend` and the CLI do the
wiring.  ``docs/observability.md`` documents the slab layout, snapshot
shapes and alert schema.
"""

from repro.obs.live.export import (
    MetricsExporter,
    SnapshotFileWriter,
    render_prometheus,
)
from repro.obs.live.health import (
    DEFAULT_SERVING_RULES,
    HealthMonitor,
    HealthRule,
)
from repro.obs.live.monitors import (
    CalibrationMonitor,
    SLOConfig,
    SLOTracker,
    ScoreDriftMonitor,
)
from repro.obs.live.slab import (
    SERVING_SLAB_LAYOUT,
    MetricsAggregator,
    MetricsSlab,
    SlabLayout,
    SlabWriter,
    telemetry_to_row,
)
from repro.obs.live.top import (
    fetch_snapshot,
    read_snapshot_file,
    render_top,
    run_top,
)

__all__ = [
    "SlabLayout",
    "MetricsSlab",
    "SlabWriter",
    "MetricsAggregator",
    "SERVING_SLAB_LAYOUT",
    "telemetry_to_row",
    "ScoreDriftMonitor",
    "CalibrationMonitor",
    "SLOTracker",
    "SLOConfig",
    "HealthRule",
    "HealthMonitor",
    "DEFAULT_SERVING_RULES",
    "MetricsExporter",
    "SnapshotFileWriter",
    "render_prometheus",
    "render_top",
    "fetch_snapshot",
    "read_snapshot_file",
    "run_top",
]
