"""Online quality monitors: score drift, calibration drift, SLO burn rate.

The post-hoc observability layer (PR 4) answers "what happened"; these
monitors answer "is the model still good *right now*", one update per
resolved request.  Three signal families, all windowed so stale traffic
ages out instead of diluting fresh degradation:

* :class:`ScoreDriftMonitor` — per-province score-distribution PSI over
  tumbling windows, wrapping :class:`repro.monitor.StreamingPSI` with a
  baseline frozen from reference scores.  The paper's whole trust story
  is per-province invariance; a province whose score distribution walks
  away from the baseline is the earliest observable symptom.
* :class:`CalibrationMonitor` — rolling score-mean (and, when labels
  arrive, observed default rate) per window; a score-mean shift flags
  drift even when the shape-sensitive PSI stays quiet.
* :class:`SLOTracker` — multi-window burn rates for admission, shed and
  latency objectives: ``burn = bad_fraction / error_budget``, so burn
  1.0 consumes the budget exactly at the sustainable rate and burn 10
  exhausts it 10× too fast (the standard fast/slow paging pair).

Everything here is plain-python O(1)-per-update state fed from the
front-end collector thread; nothing imports ``repro.serve`` (the serve
layer wires itself to these, not the other way round).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.monitor.streaming import StreamingPSI

__all__ = [
    "ScoreDriftMonitor",
    "CalibrationMonitor",
    "SLOTracker",
    "SLOConfig",
]


class ScoreDriftMonitor:
    """Tumbling-window per-province PSI over *score* distributions.

    The baseline is the score distribution on a reference window (e.g.
    the holdout the champion was gated on), frozen once into quantile
    bins; each province accumulates its own monitoring counts and rolls
    over after ``window_rows`` scores, keeping the last *completed*
    window's PSI as the reported value (a half-filled window is noise).

    Scores are buffered per key and handed to :class:`StreamingPSI` in
    vectorised chunks: a 1-element ``update`` per resolved request costs
    ~16 µs of numpy dispatch, which at front-end throughput blows the
    live plane's <2% overhead budget; buffered, the same accounting is
    ~0.3 µs/row.  All mutation (``observe``/``flush``) must stay on one
    thread — the front-end's collector — while ``psi``/``worst``/
    ``snapshot`` only *read* and may run from exposition threads.

    Args:
        baseline_scores: 1-D reference scores the bins are frozen from.
        window_rows: Scores per tumbling window, per province.
        n_bins: Quantile bins (forwarded to :class:`StreamingPSI`).
        chunk_rows: Buffered scores per key before a vectorised update
            (windows therefore roll with up to this much slack).
    """

    GLOBAL = "__all__"

    def __init__(self, baseline_scores: np.ndarray, window_rows: int = 500,
                 n_bins: int = 10, chunk_rows: int = 64):
        baseline = np.asarray(baseline_scores, dtype=np.float64).reshape(-1, 1)
        if baseline.shape[0] < n_bins:
            raise ValueError("need at least n_bins baseline scores")
        if window_rows < 1:
            raise ValueError("window_rows must be >= 1")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._baseline = baseline
        self._n_bins = n_bins
        self.window_rows = window_rows
        self.chunk_rows = chunk_rows
        self._streams: dict[str, StreamingPSI] = {}
        self._buffers: dict[str, list[float]] = {}
        self._streamed: dict[str, int] = {}   # rows in stream since reset
        self._completed_psi: dict[str, float] = {}
        self._windows_completed: dict[str, int] = {}

    def _stream_for(self, province: str) -> StreamingPSI:
        stream = self._streams.get(province)
        if stream is None:
            stream = StreamingPSI.from_baseline(
                self._baseline, n_bins=self._n_bins, names=["score"]
            )
            self._streams[province] = stream
        return stream

    def observe(self, score: float, province: str | None = None) -> None:
        """Feed one resolved score (also accumulated into the global key)."""
        keys = (self.GLOBAL,) if province is None else (self.GLOBAL, province)
        for key in keys:
            buffer = self._buffers.get(key)
            if buffer is None:
                buffer = self._buffers[key] = []
            buffer.append(score)
            # Flush on a full chunk, or exactly at a window boundary so
            # windows still complete at precisely ``window_rows`` rows.
            if (len(buffer) >= self.chunk_rows
                    or self._streamed.get(key, 0) + len(buffer)
                    >= self.window_rows):
                self._flush_key(key)

    def _flush_key(self, key: str) -> None:
        buffer = self._buffers.get(key)
        if not buffer:
            return
        stream = self._stream_for(key)
        stream.update(np.asarray(buffer, dtype=np.float64).reshape(-1, 1))
        buffer.clear()
        if stream.n_rows_seen >= self.window_rows:
            self._completed_psi[key] = stream.max_psi()
            self._windows_completed[key] = (
                self._windows_completed.get(key, 0) + 1
            )
            stream.reset()
            self._streamed[key] = 0
        else:
            self._streamed[key] = stream.n_rows_seen

    def flush(self) -> None:
        """Push buffered scores into the streams (writer thread only)."""
        for key in list(self._buffers):
            self._flush_key(key)

    def psi(self, province: str | None = None) -> float:
        """Last completed-window PSI for a province (0.0 before any)."""
        key = self.GLOBAL if province is None else province
        return self._completed_psi.get(key, 0.0)

    def worst(self) -> tuple[str | None, float]:
        """``(province, psi)`` of the worst completed window (None, 0.0)."""
        completed = dict(self._completed_psi)  # copy: observer thread writes
        per_province = {k: v for k, v in completed.items()
                        if k != self.GLOBAL}
        if not per_province:
            return None, completed.get(self.GLOBAL, 0.0)
        worst_key = max(per_province, key=per_province.get)
        return worst_key, per_province[worst_key]

    def snapshot(self) -> dict:
        """JSON-compatible monitor state for exposition and the run log."""
        completed = dict(self._completed_psi)
        streams = dict(self._streams)
        worst_province, worst_psi = self.worst()
        return {
            "window_rows": self.window_rows,
            "global_psi": completed.get(self.GLOBAL, 0.0),
            "worst_province": worst_province,
            "worst_psi": worst_psi,
            "provinces": {
                k: {"psi": v,
                    "windows_completed": self._windows_completed.get(k, 0),
                    "pending_rows": (
                        (streams[k].n_rows_seen if k in streams else 0)
                        + len(self._buffers.get(k, ()))
                    )}
                for k, v in sorted(completed.items())
                if k != self.GLOBAL
            },
        }


class CalibrationMonitor:
    """Rolling score-mean and default-rate drift vs a fixed reference.

    Tracks the mean predicted score over a sliding window of the last
    ``window_rows`` resolutions and reports its absolute shift from the
    reference mean (the training/holdout score mean the model shipped
    with).  When ground-truth labels arrive (delayed, as loan outcomes
    are), ``observe(score, label=...)`` additionally tracks the observed
    default rate, giving mean(score) − mean(label) as a live calibration
    gap.

    Args:
        reference_mean: Expected score mean under no drift.
        window_rows: Sliding-window length in resolutions.
    """

    def __init__(self, reference_mean: float, window_rows: int = 1000):
        if window_rows < 1:
            raise ValueError("window_rows must be >= 1")
        self.reference_mean = float(reference_mean)
        self.window_rows = window_rows
        self._scores: deque[float] = deque(maxlen=window_rows)
        self._score_sum = 0.0
        self._labels: deque[float] = deque(maxlen=window_rows)
        self._label_sum = 0.0

    def observe(self, score: float, label: float | None = None) -> None:
        """Feed one resolved score (and its eventual label, if known)."""
        if len(self._scores) == self._scores.maxlen:
            self._score_sum -= self._scores[0]
        self._scores.append(float(score))
        self._score_sum += float(score)
        if label is not None:
            if len(self._labels) == self._labels.maxlen:
                self._label_sum -= self._labels[0]
            self._labels.append(float(label))
            self._label_sum += float(label)

    @property
    def n_seen(self) -> int:
        return len(self._scores)

    def score_mean(self) -> float:
        """Mean score over the current window (reference before any data)."""
        if not self._scores:
            return self.reference_mean
        return self._score_sum / len(self._scores)

    def mean_shift(self) -> float:
        """Absolute shift of the windowed score mean from the reference."""
        return abs(self.score_mean() - self.reference_mean)

    def calibration_gap(self) -> float | None:
        """mean(score) − mean(label) over labelled rows (None if unlabelled)."""
        if not self._labels:
            return None
        return self.score_mean() - self._label_sum / len(self._labels)

    def snapshot(self) -> dict:
        """JSON-compatible monitor state."""
        return {
            "reference_mean": self.reference_mean,
            "window_rows": self.window_rows,
            "n_seen": self.n_seen,
            "score_mean": self.score_mean(),
            "mean_shift": self.mean_shift(),
            "calibration_gap": self.calibration_gap(),
            "n_labelled": len(self._labels),
        }


@dataclass(frozen=True)
class SLOConfig:
    """One service-level objective: a name, a budget, and windows.

    Attributes:
        name: Objective identifier (e.g. ``"availability"``).
        error_budget: Allowed bad fraction (e.g. 0.01 = 99% objective).
        windows_s: Burn-rate window lengths in seconds, shortest first
            (the classic fast/slow multi-window pair).
    """

    name: str
    error_budget: float
    windows_s: tuple[float, ...] = (60.0, 600.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must be in (0, 1)")
        if not self.windows_s:
            raise ValueError("at least one burn-rate window required")


@dataclass
class _Window:
    """Ring of (timestamp, good, bad) samples for one objective."""

    samples: deque = field(default_factory=deque)
    good: int = 0
    bad: int = 0


class SLOTracker:
    """Multi-window burn rates for counted good/bad events.

    ``observe(name, good=…, bad=…, now=…)`` feeds outcome counts; a
    burn rate per configured window is ``(bad / total) / error_budget``
    over the events inside that window.  Timestamps are caller-supplied
    (the collector thread's clock), which keeps the tracker trivially
    testable and monotonic under one writer.

    Args:
        configs: Objectives to track; names must be unique.
    """

    def __init__(self, configs: list[SLOConfig] | tuple[SLOConfig, ...]):
        names = [c.name for c in configs]
        if len(names) != len(set(names)):
            raise ValueError("SLO names must be unique")
        if not configs:
            raise ValueError("at least one SLOConfig required")
        self.configs = {c.name: c for c in configs}
        self._windows: dict[str, _Window] = {name: _Window()
                                             for name in self.configs}
        # Written by the collector thread, read by exposition threads.
        self._lock = threading.Lock()

    def observe(self, name: str, good: int = 0, bad: int = 0,
                now: float = 0.0) -> None:
        """Add outcome counts for one objective at time ``now``."""
        with self._lock:
            window = self._windows[name]
            if good or bad:
                window.samples.append((float(now), int(good), int(bad)))
                window.good += int(good)
                window.bad += int(bad)
            self._evict(name, now)

    def _evict(self, name: str, now: float) -> None:
        horizon = now - max(self.configs[name].windows_s)
        window = self._windows[name]
        while window.samples and window.samples[0][0] < horizon:
            _, good, bad = window.samples.popleft()
            window.good -= good
            window.bad -= bad

    def burn_rates(self, name: str, now: float = 0.0) -> dict[str, float]:
        """Burn rate per configured window, keyed ``"<seconds:g>s"``."""
        config = self.configs[name]
        with self._lock:
            self._evict(name, now)
            samples = list(self._windows[name].samples)
        out: dict[str, float] = {}
        for span in config.windows_s:
            good = bad = 0
            horizon = now - span
            for t, g, b in reversed(samples):
                if t < horizon:
                    break
                good += g
                bad += b
            total = good + bad
            rate = 0.0 if total == 0 else (bad / total) / config.error_budget
            out[f"{span:g}s"] = rate
        return out

    def worst_burn(self, now: float = 0.0) -> tuple[str | None, float]:
        """``(objective, burn)`` of the hottest window across objectives."""
        worst_name, worst = None, 0.0
        for name in self.configs:
            for burn in self.burn_rates(name, now=now).values():
                if burn > worst:
                    worst_name, worst = name, burn
        return worst_name, worst

    def snapshot(self, now: float = 0.0) -> dict:
        """JSON-compatible burn-rate state across every objective."""
        return {
            name: {
                "error_budget": config.error_budget,
                "events_tracked": (self._windows[name].good
                                   + self._windows[name].bad),
                "bad_tracked": self._windows[name].bad,
                "burn_rates": self.burn_rates(name, now=now),
            }
            for name, config in sorted(self.configs.items())
        }
