"""``repro obs top``: a refreshing terminal view of the live plane.

One screen, redrawn every interval, answering the operator's first five
questions: how fast (rows/s, p50/p99), how loaded (pending, shed,
refused), who's alive (per-worker heartbeat ages), how drifted
(per-province score PSI, DriftGuard feature PSI) and how healthy (state
+ active breaches + burn rates).

The data comes from either exposition surface:

* ``--url http://host:port`` — fetches ``/snapshot`` from a running
  :class:`~repro.obs.live.export.MetricsExporter`;
* ``--file path`` — tails the last line of a
  :class:`~repro.obs.live.export.SnapshotFileWriter` file (headless CI,
  or post-mortem replay of a soak).

Rendering is a pure function of the snapshot dict (tested directly);
the loop around it is ANSI home-and-clear, stdlib only.
"""

from __future__ import annotations

import json
import pathlib
import time
import urllib.request

__all__ = ["render_top", "fetch_snapshot", "read_snapshot_file", "run_top"]


def fetch_snapshot(url: str, timeout_s: float = 2.0) -> dict:
    """GET the JSON snapshot from a running exporter.

    Args:
        url: Exporter base URL or full ``/snapshot`` URL.
        timeout_s: Socket timeout.
    """
    if not url.rstrip("/").endswith("/snapshot"):
        url = url.rstrip("/") + "/snapshot"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def read_snapshot_file(path) -> dict:
    """The last complete JSON line of a snapshot file."""
    lines = pathlib.Path(path).read_text(encoding="utf-8").strip().splitlines()
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue  # torn final line mid-write; take the previous one
    raise ValueError(f"no complete snapshot line in {path}")


def _ms(seconds) -> str:
    if seconds is None:
        return "--"
    return f"{float(seconds) * 1e3:.2f}ms"


def render_top(snapshot: dict, width: int = 72) -> str:
    """Render one snapshot dict as the fixed-layout top screen."""
    lines: list[str] = []
    rule = "─" * width
    health = snapshot.get("health", {})
    state = health.get("state", "unknown")
    unix = snapshot.get("unix")
    stamp = (time.strftime("%H:%M:%S", time.localtime(unix))
             if unix else "--:--:--")
    lines.append(f"repro serve · {stamp} · health: {state.upper()}")
    breaches = health.get("active_breaches", {})
    if breaches:
        rendered = ", ".join(f"{k}:{v}" for k, v in sorted(breaches.items()))
        lines.append(f"  breaches: {rendered}")
    lines.append(rule)

    workers = snapshot.get("workers", {})
    counters = workers.get("counters", {})
    frontend = snapshot.get("frontend", {})
    latency = frontend.get("request_latency", {})
    batch = workers.get("histograms", {}).get("batch_latency", {})
    rows = counters.get("rows_scored", 0)
    busy = workers.get("gauges", {}).get("busy_seconds", 0.0)
    throughput = rows / busy if busy else 0.0
    lines.append(
        f"throughput {throughput:10.0f} rows/s    "
        f"rows {rows:>10}    batches {counters.get('batches', 0):>8}"
    )
    lines.append(
        f"request p50 {_ms(latency.get('p50_s')):>9}    "
        f"p99 {_ms(latency.get('p99_s')):>9}    "
        f"batch p99 {_ms(batch.get('p99')):>9}"
    )
    lines.append(
        f"admitted {frontend.get('admitted', 0):>10}    "
        f"shed {frontend.get('shed', 0):>8}    "
        f"refused {frontend.get('refused', 0):>6}    "
        f"errors {frontend.get('errors', 0):>5}"
    )
    hits = counters.get("cache_hits", 0)
    misses = counters.get("cache_misses", 0)
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.1%}" if lookups else "--"
    lines.append(
        f"cache hit rate {hit_rate:>7}    "
        f"fallbacks {counters.get('fallbacks', 0):>6}    "
        f"pending {snapshot.get('pending', 0):>6}"
    )
    lines.append(rule)

    liveness = snapshot.get("liveness", {})
    if liveness:
        cells = []
        for worker_id, entry in sorted(liveness.items(),
                                       key=lambda kv: int(kv[0])):
            if not entry.get("reporting"):
                cells.append(f"w{worker_id}:down")
            elif entry.get("stale"):
                cells.append(f"w{worker_id}:stale({entry['age_s']:.0f}s)")
            else:
                cells.append(f"w{worker_id}:ok")
        lines.append("workers  " + "  ".join(cells))
        lines.append(rule)

    monitors = snapshot.get("monitors", {})
    drift = monitors.get("score_drift", {})
    guard = snapshot.get("drift_guard", {})
    lines.append(
        f"score PSI {drift.get('global_psi', 0.0):7.4f}    "
        f"worst {drift.get('worst_province') or '--'} "
        f"{drift.get('worst_psi', 0.0):7.4f}    "
        f"feature PSI {guard.get('max_psi', 0.0):7.4f}"
    )
    calibration = monitors.get("calibration", {})
    if calibration:
        gap = calibration.get("calibration_gap")
        lines.append(
            f"score mean {calibration.get('score_mean', 0.0):7.4f}    "
            f"shift {calibration.get('mean_shift', 0.0):7.4f}    "
            f"calib gap {gap if gap is None else format(gap, '7.4f')}"
        )
    slo = monitors.get("slo", {})
    for objective, entry in sorted(slo.items()):
        burns = "  ".join(
            f"{window}={burn:6.2f}x"
            for window, burn in sorted(entry.get("burn_rates", {}).items())
        )
        lines.append(f"burn {objective:<14} {burns}")
    return "\n".join(lines)


def run_top(
    url: str | None = None,
    file: str | None = None,
    interval_s: float = 2.0,
    iterations: int | None = None,
    out=None,
) -> int:
    """The refresh loop behind ``repro obs top``.

    Args:
        url: Exporter base URL (mutually exclusive with ``file``).
        file: Snapshot file to tail instead.
        interval_s: Redraw period.
        iterations: Stop after this many redraws (None = until ^C).
        out: Writable stream (defaults to stdout).

    Returns:
        Process exit code (0 on clean exit / ^C).
    """
    import sys

    out = out or sys.stdout
    if (url is None) == (file is None):
        raise ValueError("pass exactly one of url/file")
    n = 0
    try:
        while iterations is None or n < iterations:
            try:
                snapshot = (fetch_snapshot(url) if url is not None
                            else read_snapshot_file(file))
                screen = render_top(snapshot)
            except (OSError, ValueError) as exc:
                screen = f"(no snapshot yet: {exc})"
            out.write("\x1b[H\x1b[2J" + screen + "\n")
            out.flush()
            n += 1
            if iterations is not None and n >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
